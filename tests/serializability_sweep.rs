//! The heavyweight correctness sweep: every workload under every HTM
//! system, multiple seeds. Each run's final memory is checked by the
//! workload's serializability invariant — a lost update, phantom
//! speculative write, or broken commit order anywhere in the protocol
//! fails the sweep.

use chats::core::{HtmSystem, PolicyConfig};
use chats::workloads::{registry, run_workload, RunConfig};

fn sweep(system: HtmSystem, seeds: &[u64]) {
    // `extended()` adds the paper-excluded bayes kernel: excluded from
    // figures, but correctness must hold for it too.
    for w in registry::extended() {
        for &seed in seeds {
            let cfg = RunConfig::quick_test().with_seed(seed);
            run_workload(w.as_ref(), PolicyConfig::for_system(system), &cfg)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}

#[test]
fn baseline_sweep() {
    sweep(HtmSystem::Baseline, &[1, 2, 3]);
}

#[test]
fn naive_rs_sweep() {
    sweep(HtmSystem::NaiveRs, &[1, 2, 3]);
}

#[test]
fn chats_sweep() {
    sweep(HtmSystem::Chats, &[1, 2, 3]);
}

#[test]
fn power_sweep() {
    sweep(HtmSystem::Power, &[1, 2, 3]);
}

#[test]
fn pchats_sweep() {
    sweep(HtmSystem::Pchats, &[1, 2, 3]);
}

#[test]
fn levc_sweep() {
    sweep(HtmSystem::LevcBeIdealized, &[1, 2, 3]);
}

/// The paper-scale machine (16 cores, Table I geometry) must also pass
/// every checker — this is the configuration all figures are produced on.
#[test]
fn paper_scale_chats_and_baseline() {
    for sys in [HtmSystem::Baseline, HtmSystem::Chats, HtmSystem::Pchats] {
        for w in registry::all() {
            let cfg = RunConfig::paper();
            run_workload(w.as_ref(), PolicyConfig::for_system(sys), &cfg)
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }
}
