//! Choreographed protocol scenarios from the paper's correctness
//! discussion (§III), each built as a small hand-written TxVM program so
//! the exact interleaving the paper describes actually occurs.

use chats::prelude::*;

/// Builds a machine with `n` cores under `system`.
fn machine(n: usize, system: HtmSystem) -> Machine {
    let mut sys = SystemConfig::default();
    sys.core.cores = n;
    Machine::new(sys, PolicyConfig::for_system(system), Tuning::default(), 42)
}

/// A producer that writes `value` to `addr`, then lingers `linger` cycles
/// inside the transaction before committing.
fn producer(addr: u64, value: u64, linger: u64) -> Program {
    let (a, v) = (Reg(0), Reg(1));
    let mut b = ProgramBuilder::new();
    b.tx_begin();
    b.imm(a, addr).imm(v, value);
    b.store(a, v);
    b.pause(linger);
    b.tx_end();
    b.halt();
    b.build()
}

/// A consumer that (after `delay`) reads `src` transactionally and stores
/// what it saw to `dst`.
fn consumer(src: u64, dst: u64, delay: u64) -> Program {
    let (a, v) = (Reg(0), Reg(1));
    let mut b = ProgramBuilder::new();
    b.pause(delay);
    b.tx_begin();
    b.imm(a, src);
    b.load(v, a);
    b.imm(a, dst);
    b.store(a, v);
    b.tx_end();
    b.halt();
    b.build()
}

/// §III-A "Multiple consumers": T1 and T2 both receive speculative copies
/// of the same block from T0; their commits serialize after T0 and they
/// observe T0's value.
#[test]
fn multiple_consumers_serialize_after_producer() {
    let mut m = machine(3, HtmSystem::Chats);
    m.load_thread(0, Vm::new(producer(0, 99, 600), 1));
    m.load_thread(1, Vm::new(consumer(0, 512, 150), 2));
    m.load_thread(2, Vm::new(consumer(0, 1024, 200), 3));
    let s = m.run(1_000_000).unwrap();
    assert_eq!(m.inspect_word(Addr(0)), 99);
    assert_eq!(m.inspect_word(Addr(512)), 99, "T1 must observe T0's value");
    assert_eq!(m.inspect_word(Addr(1024)), 99, "T2 must observe T0's value");
    assert!(s.forwardings >= 2, "both consumers got speculative copies");
    assert_eq!(s.commits, 3);
}

/// §III-A "Cascading aborts": the producer overwrites the forwarded value
/// before committing, so every consumer's validation mismatches and the
/// abort propagates without any explicit message.
#[test]
fn producer_overwrite_cascades_through_validation() {
    // Producer writes 7, lingers (forwarding window), then writes 8.
    let (a, v) = (Reg(0), Reg(1));
    let mut b = ProgramBuilder::new();
    b.tx_begin();
    b.imm(a, 0).imm(v, 7);
    b.store(a, v);
    b.pause(500); // consumers consume 7 in this window
    b.imm(v, 8);
    b.store(a, v); // invalidates every speculation on this line
    b.pause(300);
    b.tx_end();
    b.halt();
    let prod = b.build();

    let mut m = machine(2, HtmSystem::Chats);
    m.load_thread(0, Vm::new(prod, 1));
    m.load_thread(1, Vm::new(consumer(0, 512, 150), 2));
    let s = m.run(1_000_000).unwrap();
    assert_eq!(m.inspect_word(Addr(0)), 8);
    assert_eq!(
        m.inspect_word(Addr(512)),
        8,
        "consumer must re-execute and observe the final value"
    );
    assert!(
        s.aborts_by(AbortCause::ValidationMismatch) >= 1,
        "the stale 7 must be caught by value validation"
    );
}

/// §III-C ABA: the consumer speculates value A; other writers change the
/// location to B and back to A before validation. Value-based validation
/// accepts — and that is *correct*, because the consumer's commit
/// serializes at a point where the location holds A.
#[test]
fn aba_speculation_is_accepted_and_correct() {
    // T0 writes A=5 and lingers (forwards 5 to the consumer).
    // T1 (consumer) reads the line, then lingers long inside its tx.
    // T2 writes B=6 then A=5 again, non-transactionally timed after T0
    // commits but before T1 validates at commit.
    let (a, v) = (Reg(0), Reg(1));

    let mut b2 = ProgramBuilder::new();
    b2.pause(900);
    b2.tx_begin();
    b2.imm(a, 0).imm(v, 6);
    b2.store(a, v);
    b2.tx_end();
    b2.tx_begin();
    b2.imm(v, 5);
    b2.store(a, v);
    b2.tx_end();
    b2.halt();

    let mut b1 = ProgramBuilder::new();
    b1.pause(150);
    b1.tx_begin();
    b1.imm(a, 0);
    b1.load(v, a); // speculates 5
    b1.pause(2500); // long enough for T2's B-then-A dance
    b1.imm(a, 512);
    b1.store(a, v);
    b1.tx_end();
    b1.halt();

    let mut m = machine(3, HtmSystem::Chats);
    m.load_thread(0, Vm::new(producer(0, 5, 500), 1));
    m.load_thread(1, Vm::new(b1.build(), 2));
    m.load_thread(2, Vm::new(b2.build(), 3));
    m.run(1_000_000).unwrap();
    // Whatever the interleaving, serializability demands the consumer's
    // output equals the value of the line at its serialization point, and
    // the line only ever holds 5 or 6.
    let out = m.inspect_word(Addr(512));
    assert!(
        out == 5 || out == 6,
        "consumer observed a phantom value {out}"
    );
    assert_eq!(m.inspect_word(Addr(0)), 5, "final value is A again");
}

/// §III "chains of any length": four transactions chained through three
/// different lines all commit, each observing its predecessor's value.
#[test]
fn long_chain_commits_in_dependency_order() {
    // T0 writes line 0 (value 10) and lingers.
    // T1 reads line 0, writes line 8 (value seen + 1), lingers.
    // T2 reads line 8, writes line 16, lingers.
    // T3 reads line 16, records it.
    fn link(src: u64, dst: u64, delay: u64, linger: u64) -> Program {
        let (a, v) = (Reg(0), Reg(1));
        let mut b = ProgramBuilder::new();
        b.pause(delay);
        b.tx_begin();
        b.imm(a, src);
        b.load(v, a);
        b.addi(v, v, 1);
        b.imm(a, dst);
        b.store(a, v);
        b.pause(linger);
        b.tx_end();
        b.halt();
        b.build()
    }

    let mut m = machine(4, HtmSystem::Chats);
    m.load_thread(0, Vm::new(producer(0, 10, 900), 1));
    m.load_thread(1, Vm::new(link(0, 64, 120, 700), 2));
    m.load_thread(2, Vm::new(link(64, 128, 260, 500), 3));
    m.load_thread(3, Vm::new(link(128, 192, 400, 0), 4));
    let s = m.run(1_000_000).unwrap();
    assert_eq!(m.inspect_word(Addr(0)), 10);
    assert_eq!(m.inspect_word(Addr(64)), 11, "T1 chained on T0");
    assert_eq!(m.inspect_word(Addr(128)), 12, "T2 chained on T1");
    assert_eq!(m.inspect_word(Addr(192)), 13, "T3 chained on T2");
    assert_eq!(s.commits, 4);
}

/// §IV-A: a conflicting *non-transactional* access always wins — the
/// transaction aborts and the plain store lands.
#[test]
fn non_transactional_access_always_wins() {
    // T0: transactionally writes line 0 and lingers a long time.
    let (a, v) = (Reg(0), Reg(1));
    let mut b0 = ProgramBuilder::new();
    b0.tx_begin();
    b0.imm(a, 0).imm(v, 1);
    b0.store(a, v);
    b0.pause(800);
    b0.tx_end();
    b0.halt();

    // T1: plain (non-transactional) store to the same line mid-window.
    let mut b1 = ProgramBuilder::new();
    b1.pause(200);
    b1.imm(a, 0).imm(v, 2);
    b1.store(a, v);
    b1.halt();

    let mut m = machine(2, HtmSystem::Chats);
    m.load_thread(0, Vm::new(b0.build(), 1));
    m.load_thread(1, Vm::new(b1.build(), 2));
    let s = m.run(1_000_000).unwrap();
    assert!(
        s.aborts_by(AbortCause::Conflict) >= 1,
        "the transaction must lose to the plain store"
    );
    // T0 retries after the plain store and its write lands last.
    assert_eq!(m.inspect_word(Addr(0)), 1);
    assert_eq!(
        s.forwardings, 0,
        "never forward to non-transactional requesters"
    );
}

/// The same chain scenarios must also hold under PCHATS and produce the
/// same final memory as CHATS (power is a priority policy, not a
/// semantics change).
#[test]
fn pchats_matches_chats_semantics_on_chains() {
    for sys in [HtmSystem::Chats, HtmSystem::Pchats, HtmSystem::NaiveRs] {
        let mut m = machine(3, sys);
        m.load_thread(0, Vm::new(producer(0, 99, 600), 1));
        m.load_thread(1, Vm::new(consumer(0, 512, 150), 2));
        m.load_thread(2, Vm::new(consumer(0, 1024, 200), 3));
        m.run(1_000_000).unwrap();
        assert_eq!(m.inspect_word(Addr(0)), 99, "{sys:?}");
        assert_eq!(m.inspect_word(Addr(512)), 99, "{sys:?}");
        assert_eq!(m.inspect_word(Addr(1024)), 99, "{sys:?}");
    }
}
