//! Derive macros for the vendored `serde` shim.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against
//! the shim's `to_value` / `from_value` contract by walking the raw
//! `proc_macro::TokenStream` — no `syn`/`quote`, so the whole derive
//! pipeline builds offline. Supported shapes are exactly the ones the
//! workspace derives on: non-generic named structs, tuple structs
//! (single-field tuples are transparent newtypes), unit structs, and
//! enums with unit / tuple / named-field variants. Anything else gets a
//! `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim's `Serialize` (lowering to `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives the shim's `Deserialize` (rebuilding from `serde::Value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, ser: bool) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => {
            if ser {
                gen_serialize(&item)
            } else {
                gen_deserialize(&item)
            }
        }
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let keyword = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // #[attr]
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1; // pub(crate) and friends
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            other => return Err(format!("unsupported item prefix: {other:?}")),
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type {name}; write the impl by hand"
        ));
    }
    let kind = if keyword == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(split_top_commas(g.stream()).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream())?)
            }
            other => return Err(format!("unsupported struct body for {name}: {other:?}")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unsupported enum body for {name}: {other:?}")),
        }
    };
    Ok(Item { name, kind })
}

/// Splits a token stream on top-level commas, dropping empty chunks.
fn split_top_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                if !current.is_empty() {
                    chunks.push(std::mem::take(&mut current));
                }
            }
            _ => current.push(t),
        }
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// First identifier of a field chunk after attributes and visibility.
fn leading_ident(chunk: &[TokenTree]) -> Result<(String, usize), String> {
    let mut j = 0;
    loop {
        match chunk.get(j) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => j += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                j += 1;
                if matches!(chunk.get(j), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    j += 1;
                }
            }
            Some(TokenTree::Ident(id)) => return Ok((id.to_string(), j)),
            other => return Err(format!("expected identifier, got {other:?}")),
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    split_top_commas(stream)
        .iter()
        .map(|chunk| leading_ident(chunk).map(|(name, _)| name))
        .collect()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    split_top_commas(stream)
        .iter()
        .map(|chunk| {
            let (name, j) = leading_ident(chunk)?;
            let fields = match chunk.get(j + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantFields::Tuple(split_top_commas(g.stream()).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantFields::Named(parse_named_fields(g.stream())?)
                }
                _ => VariantFields::Unit, // unit variant or `= discriminant`
            };
            Ok(Variant { name, fields })
        })
        .collect()
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Kind::NamedStruct(fields) => {
            let mut s = String::from("let mut m = ::std::collections::BTreeMap::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert(::std::string::String::from({f:?}), \
                     ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Map(m)");
            s
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?})),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut m = ::std::collections::BTreeMap::new();\n\
                             m.insert(::std::string::String::from({vn:?}), {inner});\n\
                             ::serde::Value::Map(m)\n}}\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut inner = String::from(
                            "let mut fm = ::std::collections::BTreeMap::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "fm.insert(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             {inner}\
                             let mut m = ::std::collections::BTreeMap::new();\n\
                             m.insert(::std::string::String::from({vn:?}), ::serde::Value::Map(fm));\n\
                             ::serde::Value::Map(m)\n}}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => format!(
            "match v {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), \
             other => ::std::result::Result::Err(format!(\"expected null for {name}, got {{other:?}}\")) }}"
        ),
        Kind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
        ),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&seq[{k}])?"))
                .collect();
            format!(
                "let seq = v.as_seq().ok_or_else(|| format!(\"expected sequence for {name}, got {{v:?}}\"))?;\n\
                 if seq.len() != {n} {{\n\
                 return ::std::result::Result::Err(format!(\"expected {n} fields for {name}, got {{}}\", seq.len()));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Kind::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(m.get({f:?})\
                         .ok_or_else(|| ::std::string::String::from(\"{name}: missing field {f}\"))?)?"
                    )
                })
                .collect();
            format!(
                "let m = v.as_map().ok_or_else(|| format!(\"expected map for {name}, got {{v:?}}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {items} }})",
                items = items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => unit_arms.push_str(&format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let build = if *n == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?))"
                            )
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!("::serde::Deserialize::from_value(&seq[{k}])?")
                                })
                                .collect();
                            format!(
                                "{{ let seq = inner.as_seq().ok_or_else(|| format!(\"expected sequence for {name}::{vn}\"))?;\n\
                                 if seq.len() != {n} {{ return ::std::result::Result::Err(format!(\"expected {n} fields for {name}::{vn}\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({items})) }}",
                                items = items.join(", ")
                            )
                        };
                        data_arms.push_str(&format!("{vn:?} => {build},\n"));
                    }
                    VariantFields::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(fm.get({f:?})\
                                     .ok_or_else(|| ::std::string::String::from(\"{name}::{vn}: missing field {f}\"))?)?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "{vn:?} => {{ let fm = inner.as_map()\
                             .ok_or_else(|| format!(\"expected map for {name}::{vn}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{ {items} }}) }},\n",
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(format!(\"unknown {name} variant {{other:?}}\")),\n\
                 }},\n\
                 ::serde::Value::Map(m) => {{\n\
                 let (tag, inner) = m.iter().next()\
                 .ok_or_else(|| ::std::string::String::from(\"empty variant map for {name}\"))?;\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                 {data_arms}\
                 other => ::std::result::Result::Err(format!(\"unknown {name} variant {{other:?}}\")),\n\
                 }}\n\
                 }},\n\
                 other => ::std::result::Result::Err(format!(\"expected variant for {name}, got {{other:?}}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::std::string::String> {{\n{body}\n}}\n}}\n"
    )
}
