#![warn(missing_docs)]

//! Vendored offline stand-in for the `serde` facade.
//!
//! The real `serde` lives on crates.io; this workspace must build with
//! **zero network access** (see DESIGN.md "Offline builds"), so the
//! optional `serde` features of the `chats-*` crates resolve to this
//! in-tree shim instead. It keeps the call-site surface the workspace
//! uses — `#[derive(Serialize, Deserialize)]` — but implements a much
//! smaller contract: types convert to and from a self-describing
//! [`Value`] tree, which renders to and parses from JSON.
//!
//! This is **not** wire-compatible with the real serde data model. It
//! exists so configuration and statistics types can opt into structured
//! dumps without pulling ~6 crates from the network. If the repo ever
//! needs real serde, the `[workspace.dependencies]` entry is the single
//! place to repoint.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// A self-describing value: the common shape every `Serialize` type
/// lowers to and every `Deserialize` type is rebuilt from.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer (the workspace's dominant scalar).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// A string-keyed map with deterministic iteration order.
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// The map contents, if this is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence contents, if this is a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, converting from `I64`/`U64`.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a signed integer, converting from `I64`/`U64`.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a float, converting from the integer variants.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The boolean contents, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    /// Parses JSON text into a value tree (the inverse of
    /// [`Value::to_json`]): strict single-document parsing with a
    /// byte-offset error message on malformed input.
    ///
    /// Numbers parse as `U64` when non-negative and integral, `I64` when
    /// negative and integral, `F64` otherwise — matching what
    /// [`Value::to_json`] emits for each variant.
    ///
    /// # Errors
    ///
    /// Returns a description with the byte offset of the first syntax
    /// error, or of trailing garbage after the document.
    pub fn from_json(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Seq(items) => {
                out.push('[');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    it.write_json(out);
                }
                out.push(']');
            }
            Value::Map(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// Recursive-descent JSON reader over raw bytes (ASCII structure; string
/// contents pass through as UTF-8).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("expected {word:?} at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!(
                "unexpected character {:?} at byte {}",
                b as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn seq(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn map(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale so UTF-8 passes through intact.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    format!("truncated \\u escape at byte {}", self.pos)
                                })?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|_| {
                                format!("bad \\u escape {hex:?} at byte {}", self.pos)
                            })?;
                            // Surrogates (emitted only for astral chars by
                            // other writers) are replaced, not rejected.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !fractional {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, describing the first mismatch on failure.
    ///
    /// # Errors
    ///
    /// Returns a human-readable path/shape mismatch description.
    fn from_value(v: &Value) -> Result<Self, String>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                let raw = v.as_u64().ok_or_else(|| format!(
                    "expected unsigned integer, got {v:?}"
                ))?;
                <$t>::try_from(raw).map_err(|_| format!(
                    "{raw} out of range for {}", stringify!($t)
                ))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                let raw = v.as_i64().ok_or_else(|| format!(
                    "expected signed integer, got {v:?}"
                ))?;
                <$t>::try_from(raw).map_err(|_| format!(
                    "{raw} out of range for {}", stringify!($t)
                ))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, String> {
        let raw = v
            .as_u64()
            .ok_or_else(|| format!("expected unsigned integer, got {v:?}"))?;
        usize::try_from(raw).map_err(|_| format!("{raw} out of range for usize"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_bool()
            .ok_or_else(|| format!("expected bool, got {v:?}"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_f64()
            .ok_or_else(|| format!("expected number, got {v:?}"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("expected string, got {v:?}"))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_seq()
            .ok_or_else(|| format!("expected sequence, got {v:?}"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, String> {
        let seq = v
            .as_seq()
            .ok_or_else(|| format!("expected sequence, got {v:?}"))?;
        if seq.len() != N {
            return Err(format!("expected {N}-element array, got {}", seq.len()));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(seq) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

/// Map keys renderable as strings (JSON maps are string-keyed).
pub trait MapKey: Sized + Ord {
    /// The string form of the key.
    fn to_key(&self) -> String;
    /// Parses the key back.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed key.
    fn from_key(s: &str) -> Result<Self, String>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, String> {
        Ok(s.to_string())
    }
}

macro_rules! impl_numeric_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, String> {
                s.parse().map_err(|_| format!("bad numeric key {s:?}"))
            }
        }
    )*};
}
impl_numeric_key!(u8, u16, u32, u64, usize, i32, i64);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_map()
            .ok_or_else(|| format!("expected map, got {v:?}"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()), Ok(v));
        let a = [7u64, 8];
        assert_eq!(<[u64; 2]>::from_value(&a.to_value()), Ok(a));
        let mut m = BTreeMap::new();
        m.insert(3u32, 9u64);
        assert_eq!(BTreeMap::<u32, u64>::from_value(&m.to_value()), Ok(m));
    }

    #[test]
    fn json_rendering_escapes() {
        let v = Value::Str("a\"b\n".into());
        assert_eq!(v.to_json(), "\"a\\\"b\\n\"");
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), Value::U64(1));
        assert_eq!(Value::Map(m).to_json(), "{\"k\":1}");
    }

    #[test]
    fn shape_mismatches_are_reported() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(<[u64; 3]>::from_value(&vec![1u64].to_value()).is_err());
    }

    #[test]
    fn json_parses_scalars() {
        assert_eq!(Value::from_json("null"), Ok(Value::Null));
        assert_eq!(Value::from_json(" true "), Ok(Value::Bool(true)));
        assert_eq!(Value::from_json("42"), Ok(Value::U64(42)));
        assert_eq!(Value::from_json("-7"), Ok(Value::I64(-7)));
        assert_eq!(Value::from_json("2.5"), Ok(Value::F64(2.5)));
        assert_eq!(Value::from_json("\"hi\""), Ok(Value::Str("hi".into())));
    }

    #[test]
    fn json_parses_containers_and_escapes() {
        let v = Value::from_json(r#"{"a":[1,2],"b":{"c":"x\ny"},"d":null}"#).unwrap();
        let m = v.as_map().unwrap();
        assert_eq!(m["a"], Value::Seq(vec![Value::U64(1), Value::U64(2)]));
        assert_eq!(m["b"].as_map().unwrap()["c"], Value::Str("x\ny".into()));
        assert_eq!(m["d"], Value::Null);
        assert_eq!(Value::from_json("\"\\u0041\""), Ok(Value::Str("A".into())));
    }

    #[test]
    fn json_round_trips_to_json_output() {
        let mut m = BTreeMap::new();
        m.insert("s".to_string(), Value::Str("q\"\\\n".into()));
        m.insert("n".to_string(), Value::I64(-3));
        m.insert(
            "xs".to_string(),
            Value::Seq(vec![Value::Bool(false), Value::Null, Value::U64(9)]),
        );
        let v = Value::Map(m);
        assert_eq!(Value::from_json(&v.to_json()), Ok(v));
    }

    #[test]
    fn json_rejects_malformed_input() {
        assert!(Value::from_json("").is_err());
        assert!(Value::from_json("{").is_err());
        assert!(Value::from_json("[1,]").is_err());
        assert!(Value::from_json("\"open").is_err());
        assert!(Value::from_json("12 34").is_err(), "trailing garbage");
        assert!(Value::from_json("nul").is_err());
    }
}
