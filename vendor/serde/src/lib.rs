#![warn(missing_docs)]

//! Vendored offline stand-in for the `serde` facade.
//!
//! The real `serde` lives on crates.io; this workspace must build with
//! **zero network access** (see DESIGN.md "Offline builds"), so the
//! optional `serde` features of the `chats-*` crates resolve to this
//! in-tree shim instead. It keeps the call-site surface the workspace
//! uses — `#[derive(Serialize, Deserialize)]` — but implements a much
//! smaller contract: types convert to and from a self-describing
//! [`Value`] tree, which renders to and parses from JSON.
//!
//! This is **not** wire-compatible with the real serde data model. It
//! exists so configuration and statistics types can opt into structured
//! dumps without pulling ~6 crates from the network. If the repo ever
//! needs real serde, the `[workspace.dependencies]` entry is the single
//! place to repoint.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// A self-describing value: the common shape every `Serialize` type
/// lowers to and every `Deserialize` type is rebuilt from.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer (the workspace's dominant scalar).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// A string-keyed map with deterministic iteration order.
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// The map contents, if this is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence contents, if this is a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, converting from `I64`/`U64`.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a signed integer, converting from `I64`/`U64`.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a float, converting from the integer variants.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The boolean contents, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Seq(items) => {
                out.push('[');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    it.write_json(out);
                }
                out.push(']');
            }
            Value::Map(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, describing the first mismatch on failure.
    ///
    /// # Errors
    ///
    /// Returns a human-readable path/shape mismatch description.
    fn from_value(v: &Value) -> Result<Self, String>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                let raw = v.as_u64().ok_or_else(|| format!(
                    "expected unsigned integer, got {v:?}"
                ))?;
                <$t>::try_from(raw).map_err(|_| format!(
                    "{raw} out of range for {}", stringify!($t)
                ))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                let raw = v.as_i64().ok_or_else(|| format!(
                    "expected signed integer, got {v:?}"
                ))?;
                <$t>::try_from(raw).map_err(|_| format!(
                    "{raw} out of range for {}", stringify!($t)
                ))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, String> {
        let raw = v
            .as_u64()
            .ok_or_else(|| format!("expected unsigned integer, got {v:?}"))?;
        usize::try_from(raw).map_err(|_| format!("{raw} out of range for usize"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_bool()
            .ok_or_else(|| format!("expected bool, got {v:?}"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_f64()
            .ok_or_else(|| format!("expected number, got {v:?}"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("expected string, got {v:?}"))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_seq()
            .ok_or_else(|| format!("expected sequence, got {v:?}"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, String> {
        let seq = v
            .as_seq()
            .ok_or_else(|| format!("expected sequence, got {v:?}"))?;
        if seq.len() != N {
            return Err(format!("expected {N}-element array, got {}", seq.len()));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(seq) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

/// Map keys renderable as strings (JSON maps are string-keyed).
pub trait MapKey: Sized + Ord {
    /// The string form of the key.
    fn to_key(&self) -> String;
    /// Parses the key back.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed key.
    fn from_key(s: &str) -> Result<Self, String>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, String> {
        Ok(s.to_string())
    }
}

macro_rules! impl_numeric_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, String> {
                s.parse().map_err(|_| format!("bad numeric key {s:?}"))
            }
        }
    )*};
}
impl_numeric_key!(u8, u16, u32, u64, usize, i32, i64);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}
impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, String> {
        v.as_map()
            .ok_or_else(|| format!("expected map, got {v:?}"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()), Ok(v));
        let a = [7u64, 8];
        assert_eq!(<[u64; 2]>::from_value(&a.to_value()), Ok(a));
        let mut m = BTreeMap::new();
        m.insert(3u32, 9u64);
        assert_eq!(BTreeMap::<u32, u64>::from_value(&m.to_value()), Ok(m));
    }

    #[test]
    fn json_rendering_escapes() {
        let v = Value::Str("a\"b\n".into());
        assert_eq!(v.to_json(), "\"a\\\"b\\n\"");
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), Value::U64(1));
        assert_eq!(Value::Map(m).to_json(), "{\"k\":1}");
    }

    #[test]
    fn shape_mismatches_are_reported() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(<[u64; 3]>::from_value(&vec![1u64].to_value()).is_err());
    }
}
