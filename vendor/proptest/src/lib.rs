#![warn(missing_docs)]

//! Vendored offline stand-in for `proptest`.
//!
//! The workspace must build and test with **zero network access**
//! (see DESIGN.md "Offline builds"), so the property-test suites run
//! against this in-tree shim instead of crates.io `proptest`. It keeps
//! the call-site surface the suites use — the [`proptest!`] macro with
//! `arg in strategy` bindings, `#![proptest_config(..)]`, ranges /
//! [`any`] / [`Just`] / [`prop_oneof!`] / `prop_map` strategies,
//! [`collection::vec`], and the `prop_assert*` macros — with two
//! simplifications:
//!
//! * **No shrinking.** A failing case panics with the sampled inputs
//!   in the panic message instead of a minimized counterexample.
//! * **Deterministic seeding.** Each *case* gets its own RNG derived
//!   from the test's name and the case index, so one failing case is
//!   fully identified by a single 64-bit seed. `PROPTEST_SEED=<seed>`
//!   replays exactly that case; `PROPTEST_CASES` caps the case count
//!   for quick CI runs.
//! * **Seed persistence instead of input persistence.** Real proptest
//!   persists failing *inputs* to `proptest-regressions/<file>.txt`;
//!   the shim persists failing case *seeds* to the same path (`cc
//!   0x<seed>` lines). Persisted seeds are replayed before the random
//!   cases on every run, and a newly failing seed is best-effort
//!   appended so the counterexample sticks. See DESIGN.md
//!   "Regression persistence".

use std::ops::{Range, RangeInclusive};
use std::path::{Path, PathBuf};

/// Everything the test suites import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Per-suite configuration (the shim only honours `cases`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// `cases` clamped by the `PROPTEST_CASES` environment variable, if
    /// set; lets CI dial the whole suite down without touching tests.
    #[must_use]
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            Some(cap) => self.cases.min(cap),
            None => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator behind every strategy: xoshiro256++ seeded
/// with SplitMix64, the same construction the simulator's own
/// `SimRng` uses.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// A generator seeded from the property's name, or from
    /// `PROPTEST_SEED` when set (for replaying a failure).
    #[must_use]
    pub fn for_test(name: &str) -> TestRng {
        TestRng::from_seed(seed_override().unwrap_or_else(|| seed_for_test(name)))
    }

    /// A generator from an explicit 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit sample.
    pub fn next_u64(&mut self) -> u64 {
        let [ref mut s0, ref mut s1, ref mut s2, ref mut s3] = self.state;
        let result = s0.wrapping_add(*s3).rotate_left(23).wrapping_add(*s0);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }

    /// Uniform sample in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below requires a positive bound");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A source of random values of one type.
///
/// Object-safe for [`BoxedStrategy`]; the combinators are `Sized`-only.
pub trait Strategy {
    /// The produced type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
int_strategies!(u8, u16, u32, u64, usize);

macro_rules! signed_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}
signed_int_strategies!(i8, i16, i32, i64);

/// Uniform full-domain strategies (`any::<u64>()`, `any::<bool>()`, ...).
pub trait Arbitrary: Sized {
    /// The strategy type `any` returns for this type.
    type Strategy: Strategy<Value = Self>;
    /// The full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain sampler used by [`any`].
#[derive(Debug, Clone, Default)]
pub struct AnyOf<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Strategy for AnyOf<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyOf<$t>;
            fn arbitrary() -> AnyOf<$t> {
                AnyOf(std::marker::PhantomData)
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for AnyOf<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for bool {
    type Strategy = AnyOf<bool>;
    fn arbitrary() -> AnyOf<bool> {
        AnyOf(std::marker::PhantomData)
    }
}

/// The full-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+ );)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

/// Weighted union built by [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V> Union<V> {
    /// An empty union; sample panics until an arm is added.
    #[must_use]
    pub fn new() -> Union<V> {
        Union { arms: Vec::new() }
    }

    /// Adds an arm with the given weight.
    #[must_use]
    pub fn or(mut self, weight: u32, strat: impl Strategy<Value = V> + 'static) -> Union<V> {
        assert!(weight > 0, "prop_oneof weights must be positive");
        self.arms.push((weight, Box::new(strat)));
        self
    }
}

impl<V> Default for Union<V> {
    fn default() -> Self {
        Union::new()
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one arm");
        let mut pick = rng.below(total);
        for (w, s) in &self.arms {
            if pick < u64::from(*w) {
                return s.sample(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weighted pick out of range")
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for vectors of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy type returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The base seed for a property: an FNV-1a hash of its full name, so
/// failures reproduce across runs and machines.
#[must_use]
pub fn seed_for_test(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

/// The seed of case `case` within a property's deterministic stream.
/// One failing case is fully identified by this value.
#[must_use]
pub fn case_seed(base: u64, case: u32) -> u64 {
    base ^ u64::from(case + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The `PROPTEST_SEED` override, if set: a single case seed (decimal or
/// `0x`-prefixed hex) to replay instead of the random cases.
#[must_use]
pub fn seed_override() -> Option<u64> {
    let v = std::env::var("PROPTEST_SEED").ok()?;
    parse_seed(v.trim())
}

fn parse_seed(text: &str) -> Option<u64> {
    match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => text.parse().ok(),
    }
}

/// Where a property persists failing seeds:
/// `<manifest_dir>/proptest-regressions/<file>.txt`, where `<file>` is
/// the root of the test's module path (for an integration test, the
/// test file's stem — the same path real proptest would use).
#[must_use]
pub fn regression_file(manifest_dir: &str, test_full_name: &str) -> PathBuf {
    let stem = test_full_name.split("::").next().unwrap_or(test_full_name);
    Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{stem}.txt"))
}

/// Loads the persisted failing seeds from a regression file. Missing
/// files are an empty list; unparseable lines are skipped (`#` starts a
/// comment, entries are `cc <seed>`).
#[must_use]
pub fn load_regression_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if let Some(entry) = line.strip_prefix("cc ") {
            if let Some(seed) = parse_seed(entry.trim()) {
                if !seeds.contains(&seed) {
                    seeds.push(seed);
                }
            }
        }
    }
    seeds
}

/// Reports a failing case on stderr and best-effort persists its seed
/// (skipped when the seed came from the regression file or
/// `PROPTEST_SEED` — it is already pinned). Never panics: persistence
/// must not mask the property's own failure.
pub fn report_failure(path: &Path, test_full_name: &str, seed: u64, already_persisted: bool) {
    eprintln!(
        "proptest (vendored shim): {test_full_name} failed with case seed {seed:#018x}; \
         replay with PROPTEST_SEED={seed:#x}"
    );
    if already_persisted || load_regression_seeds(path).contains(&seed) {
        return;
    }
    let entry = format!("cc {seed:#018x} # seed for {test_full_name}, added automatically\n");
    let appended =
        std::fs::create_dir_all(path.parent().unwrap_or(Path::new("."))).and_then(|()| {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            f.write_all(entry.as_bytes())
        });
    match appended {
        Ok(()) => eprintln!("proptest (vendored shim): persisted to {}", path.display()),
        Err(e) => eprintln!(
            "proptest (vendored shim): could not persist to {}: {e}",
            path.display()
        ),
    }
}

/// Defines deterministic randomized property tests.
///
/// Supports the subset of real-proptest syntax the workspace uses: an
/// optional `#![proptest_config(..)]` header followed by `#[test]`
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs $cfg; $($rest)*);
    };
    (@funcs $cfg:expr; ) => {};
    (@funcs $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let full = concat!(module_path!(), "::", stringify!($name));
            let repro = $crate::regression_file(env!("CARGO_MANIFEST_DIR"), full);
            // Persisted counterexamples replay first; then either the
            // single PROPTEST_SEED case or the deterministic random
            // stream. `true` marks seeds that are already pinned.
            let mut seeds: ::std::vec::Vec<(u64, bool)> = $crate::load_regression_seeds(&repro)
                .into_iter()
                .map(|s| (s, true))
                .collect();
            match $crate::seed_override() {
                Some(s) => seeds.push((s, true)),
                None => {
                    let base = $crate::seed_for_test(full);
                    seeds.extend(
                        (0..cfg.effective_cases()).map(|c| ($crate::case_seed(base, c), false)),
                    );
                }
            }
            for (seed, pinned) in seeds {
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    let mut rng = $crate::TestRng::from_seed(seed);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }));
                if let ::std::result::Result::Err(payload) = outcome {
                    $crate::report_failure(&repro, full, seed, pinned);
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::proptest!(@funcs $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// `assert!` that names the property-test framework in its message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// `assert_eq!` under the property-test framework.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// `assert_ne!` under the property-test framework.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Weighted (or unweighted) choice between strategies producing the
/// same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new()$(.or($weight, $strat))+
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new()$(.or(1, $strat))+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let w = (0usize..=4).sample(&mut rng);
            assert!(w <= 4);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = TestRng::from_seed(9);
        let mut b = TestRng::from_seed(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn union_honours_weights() {
        let s = prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let mut rng = TestRng::from_seed(7);
        let ones = (0..1000).filter(|_| s.sample(&mut rng) == 1).count();
        assert!(ones > 800, "ones={ones}");
    }

    #[test]
    fn vec_strategy_sizes() {
        let s = collection::vec(any::<u8>(), 2..5);
        let mut rng = TestRng::from_seed(3);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0u64..10, flip in any::<bool>()) {
            prop_assert!(x < 10);
            let _ = flip;
        }
    }

    #[test]
    fn case_seeds_are_distinct_and_stable() {
        let base = seed_for_test("crate::some_property");
        assert_eq!(base, seed_for_test("crate::some_property"));
        let seeds: Vec<u64> = (0..100).map(|c| case_seed(base, c)).collect();
        let unique: std::collections::HashSet<&u64> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn regression_file_follows_real_proptest_naming() {
        let p = regression_file("/repo/crates/machine", "prop_torture::case_sums");
        assert_eq!(
            p,
            Path::new("/repo/crates/machine/proptest-regressions/prop_torture.txt")
        );
    }

    #[test]
    fn regression_seeds_round_trip() {
        let dir = std::env::temp_dir().join(format!("proptest-shim-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = regression_file(dir.to_str().unwrap(), "prop_x::prop");

        // Missing file: no seeds.
        assert_eq!(load_regression_seeds(&path), Vec::<u64>::new());

        // Persist two seeds; comments, duplicates and junk are ignored.
        report_failure(&path, "prop_x::prop", 0xDEAD_BEEF, false);
        report_failure(&path, "prop_x::prop", 7, false);
        report_failure(&path, "prop_x::prop", 7, false); // dedup
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .and_then(|mut f| {
                use std::io::Write as _;
                f.write_all(b"# a comment\nnot an entry\ncc bogus\n")
            })
            .unwrap();
        assert_eq!(load_regression_seeds(&path), vec![0xDEAD_BEEF, 7]);

        // Pinned seeds (from the file or PROPTEST_SEED) are not re-appended.
        report_failure(&path, "prop_x::prop", 99, true);
        assert_eq!(load_regression_seeds(&path), vec![0xDEAD_BEEF, 7]);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seed_parsing_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("0xff"), Some(255));
        assert_eq!(parse_seed("0XFF"), Some(255));
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("zzz"), None);
    }
}
