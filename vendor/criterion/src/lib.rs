#![warn(missing_docs)]

//! Vendored offline stand-in for `criterion`.
//!
//! The workspace must build with **zero network access** (see
//! DESIGN.md "Offline builds"), so the `benches/` targets link against
//! this in-tree shim instead of crates.io criterion. It covers the
//! surface the bench suite uses — [`criterion_group!`],
//! [`criterion_main!`], [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, `Bencher::iter` — and reports the
//! mean wall-clock time per iteration on stdout. No statistical
//! analysis, no HTML reports; `cargo bench` stays a smoke-and-timing
//! tool rather than a measurement lab.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark context handed to every group function.
pub struct Criterion {
    filter: Option<String>,
    default_samples: usize,
}

impl Criterion {
    /// A context with the iteration filter taken from the command line
    /// (the first free argument, as with real criterion).
    #[must_use]
    pub fn from_args() -> Criterion {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion {
            filter,
            default_samples: 10,
        }
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            samples: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        let id = id.into();
        let samples = self.default_samples;
        self.run_one(&id, samples, f);
        self
    }

    fn run_one(&self, id: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            iterations: samples.max(1) as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iterations == 0 {
            Duration::ZERO
        } else {
            b.elapsed / u32::try_from(b.iterations).unwrap_or(u32::MAX)
        };
        println!(
            "bench: {id:<50} {per_iter:>12.3?}/iter ({} iters)",
            b.iterations
        );
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    parent: &'c Criterion,
    name: String,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n);
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let samples = self.samples.unwrap_or(self.parent.default_samples);
        self.parent.run_one(&full, samples, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Times closures on behalf of a benchmark function.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the configured number of iterations, timing the
    /// whole batch.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group of benchmark functions, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro
/// of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_iterations() {
        let mut c = Criterion {
            filter: None,
            default_samples: 3,
        };
        let mut ran = 0u64;
        c.bench_function("shim/self-test", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert_eq!(ran, 3);
    }

    #[test]
    fn filter_skips_non_matching() {
        let c = Criterion {
            filter: Some("match-me".into()),
            default_samples: 3,
        };
        let mut ran = false;
        c.run_one("other", 3, |b| {
            b.iter(|| {
                ran = true;
            })
        });
        assert!(!ran);
    }
}
