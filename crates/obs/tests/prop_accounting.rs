//! Randomized cycle-accounting exactness: for arbitrary small contention
//! configurations, seeds, and every HTM system, the per-core breakdown
//! reconstructed from the trace must partition the run — the five buckets
//! sum EXACTLY to the machine's total cycle count on every core, and the
//! timeline's commit count matches the machine's own statistics.

use chats_core::{HtmSystem, PolicyConfig};
use chats_machine::{Machine, Tuning};
use chats_obs::{Timeline, VecSink};
use chats_sim::SystemConfig;
use chats_tvm::{gen, Vm};
use chats_workloads::{registry, run_workload_traced, RunConfig};
use proptest::prelude::*;

fn run_case(system: HtmSystem, threads: usize, iters: u64, per_tx: u64, pool: u64, seed: u64) {
    let kernel = gen::torture(iters, per_tx, pool);
    let mut sys = SystemConfig::small_test();
    sys.core.cores = threads;
    let mut m = Machine::new(
        sys,
        PolicyConfig::for_system(system),
        Tuning::default(),
        seed,
    );
    m.set_trace_sink(Box::new(VecSink::new()));
    for t in 0..threads {
        m.load_thread(t, Vm::new(kernel.program.clone(), seed ^ (t as u64) << 7));
    }
    let stats = m
        .run(100_000_000)
        .unwrap_or_else(|e| panic!("{system:?} t={threads} seed={seed}: {e}"));
    let events = VecSink::into_events(m.take_trace_sink().expect("sink installed"));
    let tl = Timeline::rebuild(&events, stats.cycles);

    assert_eq!(tl.cores.len(), threads, "one timeline track per core");
    for (core, ct) in tl.cores.iter().enumerate() {
        assert_eq!(
            ct.breakdown.total(),
            stats.cycles,
            "{system:?} seed={seed}: core {core} buckets {:?} do not sum to {}",
            ct.breakdown,
            stats.cycles
        );
    }
    assert_eq!(
        tl.aggregate().total(),
        stats.cycles * threads as u64,
        "{system:?} seed={seed}: aggregate partition"
    );
    assert_eq!(
        tl.commits(),
        stats.commits,
        "{system:?} seed={seed}: Commit events mirror the commit counter"
    );
}

fn system_strategy() -> impl Strategy<Value = HtmSystem> {
    prop_oneof![
        Just(HtmSystem::Baseline),
        Just(HtmSystem::NaiveRs),
        Just(HtmSystem::Chats),
        Just(HtmSystem::Power),
        Just(HtmSystem::Pchats),
        Just(HtmSystem::LevcBeIdealized),
    ]
}

proptest! {
    // Whole-machine cases are comparatively expensive; 32 cases keeps the
    // test snappy while still crossing systems × shapes × seeds.
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn breakdowns_partition_every_run(
        system in system_strategy(),
        threads in 2usize..5,
        iters in 5u64..20,
        per_tx in 1u64..4,
        pool_log in 1u32..4,
        seed in any::<u64>(),
    ) {
        run_case(system, threads, iters, per_tx, 1 << pool_log, seed);
    }
}

/// The same invariant through the workload-runner path (`run_workload_traced`),
/// on real registry kernels.
#[test]
fn workload_runs_partition_exactly() {
    for (name, system) in [
        ("cadd", HtmSystem::Chats),
        ("llb-l", HtmSystem::Baseline),
        ("llb-h", HtmSystem::Pchats),
    ] {
        let workload = registry::by_name(name).expect("registered workload");
        let cfg = RunConfig::quick_test();
        let policy = PolicyConfig::for_system(system);
        let (out, sink) =
            run_workload_traced(workload.as_ref(), policy, &cfg, Box::new(VecSink::new()))
                .expect("workload completes");
        let events = VecSink::into_events(sink);
        let tl = Timeline::rebuild(&events, out.stats.cycles);
        assert_eq!(
            tl.aggregate().total(),
            out.stats.cycles * tl.cores.len() as u64,
            "{name} under {system:?}"
        );
        assert_eq!(tl.commits(), out.stats.commits, "{name} under {system:?}");
    }
}
