//! Golden-file and Perfetto-semantics tests on a fixed three-core chain.
//!
//! The scenario is fully deterministic: T0 writes line A and lingers, T1
//! reads A and writes line B and lingers, T2 reads B — under CHATS this
//! builds a three-transaction chain with two forwardings and zero aborts.
//! The exported Chrome trace and text report are compared byte-for-byte
//! against checked-in goldens; regenerate them after an intentional
//! timing-model change with:
//!
//! ```text
//! CHATS_UPDATE_GOLDEN=1 cargo test -p chats-obs --test golden_exports
//! ```

use chats_core::{HtmSystem, PolicyConfig};
use chats_machine::{Machine, TraceEvent, Tuning};
use chats_obs::{chrome_trace, read_jsonl_file, text_report, JsonlSink, Timeline, VecSink};
use chats_sim::SystemConfig;
use chats_stats::RunStats;
use chats_tvm::{Program, ProgramBuilder, Reg, Vm};
use serde::Value;
use std::path::Path;

const LINE_A: u64 = 0;
const LINE_B: u64 = 512;
const OUT: u64 = 1024;

fn producer() -> Program {
    let (a, v) = (Reg(0), Reg(1));
    let mut b = ProgramBuilder::new();
    b.tx_begin();
    b.imm(a, LINE_A);
    b.imm(v, 42);
    b.store(a, v);
    b.pause(600); // keep the tx open while T1 conflicts
    b.tx_end();
    b.halt();
    b.build()
}

fn middle() -> Program {
    let (a, v) = (Reg(0), Reg(1));
    let mut b = ProgramBuilder::new();
    b.pause(120); // let T0 own line A first
    b.tx_begin();
    b.imm(a, LINE_A);
    b.load(v, a); // forwarded from T0
    b.addi(v, v, 1);
    b.imm(a, LINE_B);
    b.store(a, v);
    b.pause(400); // keep the tx open while T2 conflicts
    b.tx_end();
    b.halt();
    b.build()
}

fn tail() -> Program {
    let (a, v) = (Reg(0), Reg(1));
    let mut b = ProgramBuilder::new();
    b.pause(300); // let T1 own line B first
    b.tx_begin();
    b.imm(a, LINE_B);
    b.load(v, a); // forwarded from T1
    b.addi(v, v, 1);
    b.imm(a, OUT);
    b.store(a, v);
    b.tx_end();
    b.halt();
    b.build()
}

fn run_chain3() -> (Vec<TraceEvent>, RunStats) {
    let mut sys = SystemConfig::default();
    sys.core.cores = 3;
    let mut m = Machine::new(
        sys,
        PolicyConfig::for_system(HtmSystem::Chats),
        Tuning::default(),
        1,
    );
    m.set_trace_sink(Box::new(VecSink::new()));
    m.load_thread(0, Vm::new(producer(), 0));
    m.load_thread(1, Vm::new(middle(), 1));
    m.load_thread(2, Vm::new(tail(), 2));
    let stats = m.run(1_000_000).expect("chain scenario completes");
    let events = VecSink::into_events(m.take_trace_sink().expect("sink installed"));
    (events, stats)
}

fn chain3_timeline() -> (Timeline, RunStats) {
    let (events, stats) = run_chain3();
    (Timeline::rebuild(&events, stats.cycles), stats)
}

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("CHATS_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with CHATS_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden; if the timing change is \
         intentional, regenerate with CHATS_UPDATE_GOLDEN=1"
    );
}

#[test]
fn scenario_builds_the_expected_chain() {
    let (tl, stats) = chain3_timeline();
    if std::env::var_os("CHATS_DEBUG_CHAIN3").is_some() {
        let (events, _) = run_chain3();
        for e in &events {
            eprintln!("{e}");
        }
    }
    assert_eq!(stats.commits, 3, "all three transactions commit");
    assert_eq!(stats.total_aborts(), 0, "nobody aborts under CHATS");
    assert!(stats.forwardings >= 2, "A and B both travel in SpecResps");
    assert_eq!(tl.commits(), 3);
    // The lingering producers answer re-requests, so each edge may carry
    // more than one SpecResp; the shape is what matters.
    assert!(tl.chains.graph.get(&(0, 1)).is_some_and(|&n| n >= 1));
    assert!(tl.chains.graph.get(&(1, 2)).is_some_and(|&n| n >= 1));
    assert_eq!(tl.chains.graph.len(), 2, "exactly the two chain edges");
    assert_eq!(
        tl.chains.chain_len_hist.get(&3),
        Some(&1),
        "one chain of three transactions"
    );
}

#[test]
fn chrome_trace_matches_golden() {
    let (tl, _) = chain3_timeline();
    let json = chrome_trace(&tl).to_json();
    check_golden("chain3.chrome.json", &json);
}

#[test]
fn text_report_matches_golden() {
    let (tl, _) = chain3_timeline();
    check_golden("chain3.report.txt", &text_report(&tl));
}

#[test]
fn chrome_trace_satisfies_perfetto_semantics() {
    let (tl, _) = chain3_timeline();
    let v = chrome_trace(&tl);

    // 1. Valid JSON end to end.
    let text = v.to_json();
    let reparsed = Value::from_json(&text).expect("export is valid JSON");
    assert_eq!(reparsed, v);

    let events: Vec<_> = v.as_map().unwrap()["traceEvents"]
        .as_seq()
        .unwrap()
        .iter()
        .map(|e| e.as_map().unwrap())
        .collect();

    // 2. Per track, attempt slices are monotone and non-overlapping.
    for core in 0..tl.cores.len() as u64 {
        let mut slices: Vec<(u64, u64)> = events
            .iter()
            .filter(|m| {
                m["ph"].as_str() == Some("X")
                    && m.get("cat").and_then(Value::as_str) == Some("attempt")
                    && m["tid"].as_u64() == Some(core)
            })
            .map(|m| (m["ts"].as_u64().unwrap(), m["dur"].as_u64().unwrap()))
            .collect();
        assert!(!slices.is_empty(), "core {core} has at least one slice");
        let unsorted = slices.clone();
        slices.sort_unstable();
        assert_eq!(slices, unsorted, "slices emitted in begin order");
        for pair in slices.windows(2) {
            assert!(
                pair[0].0 + pair[0].1 <= pair[1].0,
                "attempt slices overlap on core {core}"
            );
        }
    }

    // 3. Every flow event lands inside an attempt slice on its track,
    //    and every `s` has a matching `f` with the same id.
    let flow_ids = |ph: &str| -> Vec<u64> {
        events
            .iter()
            .filter(|m| m["ph"].as_str() == Some(ph))
            .map(|m| m["id"].as_u64().unwrap())
            .collect()
    };
    let starts = flow_ids("s");
    let finishes = flow_ids("f");
    assert_eq!(starts, finishes, "flow starts and finishes pair up");
    assert!(starts.len() >= 2, "both chain edges produce arrows");
    for m in events
        .iter()
        .filter(|m| matches!(m["ph"].as_str(), Some("s" | "f")))
    {
        let tid = m["tid"].as_u64().unwrap();
        let ts = m["ts"].as_u64().unwrap();
        let enclosed = events.iter().any(|s| {
            s["ph"].as_str() == Some("X")
                && s.get("cat").and_then(Value::as_str) == Some("attempt")
                && s["tid"].as_u64() == Some(tid)
                && s["ts"].as_u64().unwrap() <= ts
                && ts <= s["ts"].as_u64().unwrap() + s["dur"].as_u64().unwrap()
        });
        assert!(
            enclosed,
            "flow event at tid={tid} ts={ts} references no slice"
        );
    }
}

#[test]
fn accounting_buckets_sum_exactly_on_the_fixed_run() {
    let (tl, stats) = chain3_timeline();
    for (core, ct) in tl.cores.iter().enumerate() {
        assert_eq!(
            ct.breakdown.total(),
            stats.cycles,
            "core {core} breakdown must partition the whole run"
        );
    }
    let agg = tl.aggregate();
    assert_eq!(agg.total(), stats.cycles * tl.cores.len() as u64);
    assert!(agg.useful > 0, "committed work shows up as useful cycles");
    assert!(
        agg.validation_stall > 0,
        "consumers stall at TxEnd until their VSB drains"
    );
}

#[test]
fn jsonl_sink_round_trips_the_machine_stream() {
    use chats_machine::TraceSink as _;
    let (events, _) = run_chain3();
    let path = std::env::temp_dir().join(format!("chats-obs-rt-{}.jsonl", std::process::id()));
    {
        let mut sink = JsonlSink::create(&path).expect("create temp trace");
        for ev in &events {
            sink.record(ev.clone());
        }
        assert_eq!(sink.dropped(), 0);
    } // Drop flushes.
    let parsed = read_jsonl_file(&path).expect("trace parses");
    std::fs::remove_file(&path).ok();
    assert_eq!(parsed, events, "JSONL round-trip is lossless");
}
