//! The `profile.json` artifact: a machine-readable digest of one traced
//! run, attached to `chats-run` manifests and written by `chats-trace`.

use crate::timeline::{CycleBreakdown, Timeline};
use serde::Value;
use std::collections::BTreeMap;

/// Identity of the run a profile describes.
#[derive(Debug, Clone, Default)]
pub struct ProfileMeta {
    /// Workload registry name.
    pub workload: String,
    /// HTM system label (e.g. `chats`).
    pub system: String,
    /// Thread count.
    pub threads: usize,
    /// Root seed.
    pub seed: u64,
}

fn breakdown_value(b: &CycleBreakdown) -> Value {
    let mut m = BTreeMap::new();
    m.insert("useful".to_string(), Value::U64(b.useful));
    m.insert("wasted".to_string(), Value::U64(b.wasted));
    m.insert(
        "validation_stall".to_string(),
        Value::U64(b.validation_stall),
    );
    m.insert("fallback".to_string(), Value::U64(b.fallback));
    m.insert("other".to_string(), Value::U64(b.other));
    Value::Map(m)
}

/// Builds the profile JSON value for `timeline`.
#[must_use]
pub fn profile_value(tl: &Timeline, meta: &ProfileMeta) -> Value {
    let mut root = BTreeMap::new();
    root.insert("workload".to_string(), Value::Str(meta.workload.clone()));
    root.insert("system".to_string(), Value::Str(meta.system.clone()));
    root.insert("threads".to_string(), Value::U64(meta.threads as u64));
    root.insert("seed".to_string(), Value::U64(meta.seed));
    root.insert("total_cycles".to_string(), Value::U64(tl.total_cycles));
    root.insert("commits".to_string(), Value::U64(tl.commits()));
    root.insert("aborts".to_string(), Value::U64(tl.aborts()));

    root.insert("aggregate".to_string(), breakdown_value(&tl.aggregate()));
    root.insert(
        "cores".to_string(),
        Value::Seq(
            tl.cores
                .iter()
                .map(|c| breakdown_value(&c.breakdown))
                .collect(),
        ),
    );

    let mut chains = BTreeMap::new();
    chains.insert("forwardings".to_string(), Value::U64(tl.chains.forwardings));
    chains.insert(
        "pic_depth_hist".to_string(),
        Value::Map(
            tl.chains
                .pic_depth_hist
                .iter()
                .map(|(d, n)| (d.to_string(), Value::U64(*n)))
                .collect(),
        ),
    );
    chains.insert(
        "chain_len_hist".to_string(),
        Value::Map(
            tl.chains
                .chain_len_hist
                .iter()
                .map(|(l, n)| (l.to_string(), Value::U64(*n)))
                .collect(),
        ),
    );
    chains.insert(
        "graph".to_string(),
        Value::Seq(
            tl.chains
                .graph
                .iter()
                .map(|((from, to), n)| {
                    let mut e = BTreeMap::new();
                    e.insert("from".to_string(), Value::U64(*from as u64));
                    e.insert("to".to_string(), Value::U64(*to as u64));
                    e.insert("count".to_string(), Value::U64(*n));
                    Value::Map(e)
                })
                .collect(),
        ),
    );
    root.insert("chains".to_string(), Value::Map(chains));

    // The contention heat map (forwardings per line); consumers join it
    // against the workload's region table for per-contract attribution.
    root.insert(
        "hot_lines".to_string(),
        Value::Map(
            tl.hot_lines
                .iter()
                .map(|(l, n)| (l.to_string(), Value::U64(*n)))
                .collect(),
        ),
    );

    let mut noc = BTreeMap::new();
    noc.insert("messages".to_string(), Value::U64(tl.noc.messages));
    noc.insert("flits".to_string(), Value::U64(tl.noc.flits));
    noc.insert(
        "transit_cycles".to_string(),
        Value::U64(tl.noc.transit_cycles),
    );
    noc.insert(
        "queueing_cycles".to_string(),
        Value::U64(tl.noc.queueing_cycles),
    );
    root.insert("noc".to_string(), Value::Map(noc));

    Value::Map(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chats_machine::TraceEvent;
    use chats_sim::Cycle;

    #[test]
    fn profile_carries_identity_and_buckets() {
        let events = vec![
            TraceEvent::TxBegin {
                at: Cycle(0),
                core: 0,
            },
            TraceEvent::Commit {
                at: Cycle(8),
                core: 0,
            },
        ];
        let tl = Timeline::rebuild(&events, 10);
        let meta = ProfileMeta {
            workload: "cadd".into(),
            system: "chats".into(),
            threads: 4,
            seed: 7,
        };
        let v = profile_value(&tl, &meta);
        let m = v.as_map().unwrap();
        assert_eq!(m["workload"].as_str(), Some("cadd"));
        assert_eq!(m["total_cycles"].as_u64(), Some(10));
        let agg = m["aggregate"].as_map().unwrap();
        let sum: u64 = ["useful", "wasted", "validation_stall", "fallback", "other"]
            .iter()
            .map(|k| agg[*k].as_u64().unwrap())
            .sum();
        assert_eq!(sum, 10);
        // The artifact must be valid JSON end to end.
        assert_eq!(Value::from_json(&v.to_json()), Ok(v));
    }
}
