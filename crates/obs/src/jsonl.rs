//! Unbounded capture sinks: in-memory vector and streaming JSON lines.

use chats_machine::{TraceEvent, TraceSink};
use serde::{Deserialize, Serialize, Value};
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// An unbounded in-memory sink: keeps every event in emission order.
///
/// Use this when the run is small enough to hold (tests, examples,
/// profiling reruns); for long runs prefer [`JsonlSink`].
#[derive(Debug, Default)]
pub struct VecSink {
    events: Vec<TraceEvent>,
}

impl VecSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> VecSink {
        VecSink::default()
    }

    /// The captured events, oldest first.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Recovers the events from the boxed sink
    /// [`chats_machine::Machine::take_trace_sink`] returns.
    ///
    /// # Panics
    ///
    /// Panics if the box holds some other sink type.
    #[must_use]
    pub fn into_events(sink: Box<dyn TraceSink>) -> Vec<TraceEvent> {
        let mut sink = sink;
        std::mem::take(
            &mut sink
                .as_any_mut()
                .and_then(|a| a.downcast_mut::<VecSink>())
                .expect("sink is not a VecSink")
                .events,
        )
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// A streaming sink that writes one JSON object per line (JSON lines),
/// suitable for unbounded runs. Write errors do not abort the simulation:
/// the first error disables the sink and every subsequent event counts as
/// dropped, so truncation is visible in [`TraceSink::dropped`].
pub struct JsonlSink<W: Write> {
    out: Option<BufWriter<W>>,
    written: u64,
    dropped: u64,
}

impl JsonlSink<std::fs::File> {
    /// Creates (truncating) `path` and streams events into it.
    ///
    /// # Errors
    ///
    /// Propagates the file-creation error.
    pub fn create(path: &Path) -> io::Result<JsonlSink<std::fs::File>> {
        Ok(JsonlSink::new(std::fs::File::create(path)?))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Wraps any writer (buffered internally).
    pub fn new(w: W) -> JsonlSink<W> {
        JsonlSink {
            out: Some(BufWriter::new(w)),
            written: 0,
            dropped: 0,
        }
    }

    /// Events successfully written so far.
    #[must_use]
    pub fn written(&self) -> u64 {
        self.written
    }
}

impl<W: Write + 'static> TraceSink for JsonlSink<W> {
    fn record(&mut self, ev: TraceEvent) {
        let Some(out) = self.out.as_mut() else {
            self.dropped += 1;
            return;
        };
        let mut line = ev.to_value().to_json();
        line.push('\n');
        if out.write_all(line.as_bytes()).is_ok() {
            self.written += 1;
        } else {
            self.out = None; // fail-stop: a broken writer stays broken
            self.dropped += 1;
        }
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn flush(&mut self) {
        if let Some(out) = self.out.as_mut() {
            if out.flush().is_err() {
                self.out = None;
            }
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        if let Some(out) = self.out.as_mut() {
            let _ = out.flush();
        }
    }
}

/// Parses a JSON-lines trace back into events (blank lines are skipped).
///
/// # Errors
///
/// Reports the first I/O, JSON or shape error with its line number.
pub fn read_jsonl<R: BufRead>(reader: R) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: read error: {e}", idx + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let value = Value::from_json(&line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        let ev = TraceEvent::from_value(&value).map_err(|e| format!("line {}: {e}", idx + 1))?;
        events.push(ev);
    }
    Ok(events)
}

/// Reads a JSON-lines trace file written by [`JsonlSink`].
///
/// # Errors
///
/// Reports the open failure or the first malformed line.
pub fn read_jsonl_file(path: &Path) -> Result<Vec<TraceEvent>, String> {
    let f = std::fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    read_jsonl(io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chats_core::AbortCause;
    use chats_mem::LineAddr;
    use chats_sim::Cycle;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::TxBegin {
                at: Cycle(5),
                core: 0,
            },
            TraceEvent::NocSend {
                at: Cycle(6),
                src: 0,
                dst: 4,
                flits: 1,
                arrive: Cycle(9),
            },
            TraceEvent::Forward {
                at: Cycle(12),
                from: 0,
                to: 1,
                line: LineAddr(3),
                pic: Some(chats_core::Pic::INIT),
            },
            TraceEvent::VsbInsert {
                at: Cycle(14),
                core: 1,
                line: LineAddr(3),
                occupancy: 1,
            },
            TraceEvent::Abort {
                at: Cycle(20),
                core: 1,
                cause: AbortCause::ValidationMismatch,
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_variant_shape() {
        let mut sink = JsonlSink::new(Vec::new());
        for ev in sample_events() {
            sink.record(ev);
        }
        TraceSink::flush(&mut sink);
        assert_eq!(sink.written(), 5);
        assert_eq!(sink.dropped(), 0);
        let bytes = sink.out.take().unwrap().into_inner().unwrap();
        let parsed = read_jsonl(io::BufReader::new(&bytes[..])).unwrap();
        assert_eq!(parsed, sample_events());
    }

    #[test]
    fn vec_sink_keeps_everything_in_order() {
        let mut sink = VecSink::new();
        for ev in sample_events() {
            sink.record(ev);
        }
        assert_eq!(sink.events(), &sample_events()[..]);
        let boxed: Box<dyn TraceSink> = Box::new(sink);
        assert_eq!(VecSink::into_events(boxed), sample_events());
    }

    #[test]
    fn malformed_lines_are_located() {
        let text = "{\"TxBegin\":{\"at\":1,\"core\":0}}\nnot json\n";
        let err = read_jsonl(io::BufReader::new(text.as_bytes())).unwrap_err();
        assert!(err.starts_with("line 2:"), "got: {err}");
    }

    #[test]
    fn write_failure_counts_drops_instead_of_panicking() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Broken);
        for ev in sample_events() {
            sink.record(ev);
        }
        // BufWriter absorbs the first small writes; force the flush path.
        TraceSink::flush(&mut sink);
        sink.record(sample_events().remove(0));
        assert!(sink.dropped() > 0);
    }
}
