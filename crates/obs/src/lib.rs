#![warn(missing_docs)]

//! Observability for the CHATS machine: trace capture, timeline
//! reconstruction, cycle accounting and exporters.
//!
//! The machine emits a flat stream of [`chats_machine::TraceEvent`]s; this
//! crate turns that stream into answers:
//!
//! * **Capture** — [`VecSink`] (unbounded in-memory) and [`JsonlSink`]
//!   (streaming JSON-lines writer) implement
//!   [`chats_machine::TraceSink`]; [`read_jsonl`] loads a written trace
//!   back.
//! * **Reconstruction** — [`Timeline::rebuild`] folds the stream into
//!   per-core transaction attempts, validation-stall and fallback
//!   intervals, and a strict per-core [`CycleBreakdown`] whose buckets sum
//!   exactly to the run's total cycles (see DESIGN.md §12 for the bucket
//!   definitions in the paper's terms).
//! * **Analytics** — chain depth and length histograms plus the
//!   producer→consumer forwarding graph ([`ChainStats`]), and interconnect
//!   usage derived from injection/arrival pairs ([`NocUsage`]).
//! * **Export** — [`chrome_trace`] renders a Chrome-trace/Perfetto JSON
//!   (one track per core, one slice per attempt, flow arrows for
//!   forwardings) and [`text_report`] a compact terminal summary;
//!   [`profile_value`] builds the `profile.json` artifact `chats-run`
//!   attaches to its manifests.
//!
//! The `chats-trace` binary wraps all of this as
//! `record`/`report`/`export` commands (see EXPERIMENTS.md).
//!
//! # Example
//!
//! ```
//! use chats_core::{HtmSystem, PolicyConfig};
//! use chats_obs::{Timeline, VecSink};
//! use chats_workloads::{registry, run_workload_traced, RunConfig};
//!
//! let w = registry::by_name("cadd").unwrap();
//! let cfg = RunConfig::quick_test();
//! let policy = PolicyConfig::for_system(HtmSystem::Chats);
//! let (out, sink) = run_workload_traced(w.as_ref(), policy, &cfg, Box::new(VecSink::new()))
//!     .unwrap();
//! let events = VecSink::into_events(sink);
//! let tl = Timeline::rebuild(&events, out.stats.cycles);
//! let agg = tl.aggregate();
//! assert_eq!(agg.total(), out.stats.cycles * tl.cores.len() as u64);
//! ```

mod chrome;
mod jsonl;
mod profile;
mod report;
mod timeline;

pub use chrome::chrome_trace;
pub use jsonl::{read_jsonl, read_jsonl_file, JsonlSink, VecSink};
pub use profile::{profile_value, ProfileMeta};
pub use report::{text_report, text_report_with_regions};
pub use timeline::{
    Attempt, AttemptOutcome, ChainStats, CoreTimeline, CycleBreakdown, Interval, NocUsage, Timeline,
};
