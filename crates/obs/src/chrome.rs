//! Chrome-trace / Perfetto JSON export.
//!
//! Produces the legacy Chrome `traceEvents` format, which Perfetto loads
//! natively (<https://ui.perfetto.dev>): one thread track per core,
//! one complete (`ph: "X"`) slice per transaction attempt or fallback
//! episode, nested slices for validation stalls, and flow arrows
//! (`ph: "s"`/`"f"`) from producer to consumer for every forwarding whose
//! two endpoints both have a live slice. Timestamps are simulated cycles
//! reported as microseconds (1 cycle = 1 µs), so Perfetto's time axis
//! reads directly in cycles.

use crate::timeline::{AttemptOutcome, Timeline};
use serde::Value;
use std::collections::BTreeMap;

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

fn str_v(s: impl Into<String>) -> Value {
    Value::Str(s.into())
}

/// Renders `timeline` as a Chrome-trace JSON value; serialize it with
/// [`Value::to_json`] and load the result in Perfetto or
/// `chrome://tracing`.
#[must_use]
pub fn chrome_trace(tl: &Timeline) -> Value {
    let mut events: Vec<Value> = Vec::new();
    let pid = Value::U64(0);

    events.push(map(vec![
        ("name", str_v("process_name")),
        ("ph", str_v("M")),
        ("pid", pid.clone()),
        ("args", map(vec![("name", str_v("chats machine"))])),
    ]));

    for (core, ct) in tl.cores.iter().enumerate() {
        events.push(map(vec![
            ("name", str_v("thread_name")),
            ("ph", str_v("M")),
            ("pid", pid.clone()),
            ("tid", Value::U64(core as u64)),
            ("args", map(vec![("name", str_v(format!("core {core}")))])),
        ]));

        for a in &ct.attempts {
            let (name, outcome) = match a.outcome {
                AttemptOutcome::Committed => ("tx".to_string(), "committed".to_string()),
                AttemptOutcome::Aborted(cause) => (
                    format!("tx abort:{}", cause.label()),
                    format!("aborted:{}", cause.label()),
                ),
                AttemptOutcome::Unfinished => ("tx (unfinished)".into(), "unfinished".into()),
            };
            events.push(map(vec![
                ("name", str_v(name)),
                ("cat", str_v("attempt")),
                ("ph", str_v("X")),
                ("pid", pid.clone()),
                ("tid", Value::U64(core as u64)),
                ("ts", Value::U64(a.span.begin.0)),
                ("dur", Value::U64(a.span.len().max(1))),
                (
                    "args",
                    map(vec![
                        ("outcome", str_v(outcome)),
                        ("val_stall", Value::U64(a.val_stall)),
                        ("validations", Value::U64(a.validations)),
                        ("evictions", Value::U64(a.evictions)),
                        ("vsb_peak", Value::U64(a.vsb_peak as u64)),
                    ]),
                ),
            ]));
            if a.val_stall > 0 && a.span.len() >= a.val_stall {
                // Stall time accumulates at TxEnd, i.e. the tail of the
                // attempt: render it as one nested slice ending at the
                // attempt's end.
                events.push(map(vec![
                    ("name", str_v("validation stall")),
                    ("cat", str_v("stall")),
                    ("ph", str_v("X")),
                    ("pid", pid.clone()),
                    ("tid", Value::U64(core as u64)),
                    ("ts", Value::U64(a.span.end.0 - a.val_stall)),
                    ("dur", Value::U64(a.val_stall)),
                ]));
            }
        }

        for f in &ct.fallbacks {
            events.push(map(vec![
                ("name", str_v("fallback")),
                ("cat", str_v("fallback")),
                ("ph", str_v("X")),
                ("pid", pid.clone()),
                ("tid", Value::U64(core as u64)),
                ("ts", Value::U64(f.begin.0)),
                ("dur", Value::U64(f.len().max(1))),
            ]));
        }
    }

    // Flow arrows producer → consumer. A forwarding only gets an arrow
    // when *both* sides were reconstructed inside an attempt (otherwise
    // the arrow would dangle outside any slice, which Perfetto rejects).
    let mut flow_id: u64 = 0;
    for (from_core, ct) in tl.cores.iter().enumerate() {
        for a in &ct.attempts {
            for (at, to_core, line) in &a.forwards_out {
                let Some(consumer) = tl.cores.get(*to_core).and_then(|c| {
                    c.attempts.iter().find(|ca| {
                        ca.forwards_in
                            .iter()
                            .any(|(t, f, l)| t == at && f == &from_core && l == line)
                    })
                }) else {
                    continue;
                };
                flow_id += 1;
                let name = str_v(format!("SpecResp {line}"));
                events.push(map(vec![
                    ("name", name.clone()),
                    ("cat", str_v("forward")),
                    ("ph", str_v("s")),
                    ("id", Value::U64(flow_id)),
                    ("pid", pid.clone()),
                    ("tid", Value::U64(from_core as u64)),
                    ("ts", Value::U64(at.0)),
                ]));
                // Bind the arrow head inside the consumer slice even when
                // the forward instant grazes its edge.
                let head_ts = at.0.max(consumer.span.begin.0);
                events.push(map(vec![
                    ("name", name),
                    ("cat", str_v("forward")),
                    ("ph", str_v("f")),
                    ("bp", str_v("e")),
                    ("id", Value::U64(flow_id)),
                    ("pid", pid.clone()),
                    ("tid", Value::U64(*to_core as u64)),
                    ("ts", Value::U64(head_ts)),
                ]));
            }
        }
    }

    map(vec![
        ("traceEvents", Value::Seq(events)),
        ("displayTimeUnit", str_v("ns")),
        (
            "otherData",
            map(vec![
                ("total_cycles", Value::U64(tl.total_cycles)),
                ("cores", Value::U64(tl.cores.len() as u64)),
                ("forwardings", Value::U64(tl.chains.forwardings)),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use chats_machine::TraceEvent;
    use chats_mem::LineAddr;
    use chats_sim::Cycle;

    fn forwarded_pair() -> Timeline {
        let events = vec![
            TraceEvent::TxBegin {
                at: Cycle(0),
                core: 0,
            },
            TraceEvent::TxBegin {
                at: Cycle(0),
                core: 1,
            },
            TraceEvent::Forward {
                at: Cycle(5),
                from: 0,
                to: 1,
                line: LineAddr(7),
                pic: Some(chats_core::Pic::INIT),
            },
            TraceEvent::Commit {
                at: Cycle(10),
                core: 0,
            },
            TraceEvent::Commit {
                at: Cycle(20),
                core: 1,
            },
        ];
        Timeline::rebuild(&events, 25)
    }

    fn slices_of<'v>(v: &'v Value, ph: &str) -> Vec<&'v std::collections::BTreeMap<String, Value>> {
        v.as_map().unwrap()["traceEvents"]
            .as_seq()
            .unwrap()
            .iter()
            .map(|e| e.as_map().unwrap())
            .filter(|m| m["ph"].as_str() == Some(ph))
            .collect()
    }

    #[test]
    fn emits_one_slice_per_attempt_and_metadata_per_core() {
        let v = chrome_trace(&forwarded_pair());
        let x = slices_of(&v, "X");
        assert_eq!(x.len(), 2);
        let meta = slices_of(&v, "M");
        assert_eq!(meta.len(), 3, "process name + 2 thread names");
    }

    #[test]
    fn flow_arrows_bind_inside_existing_slices() {
        let v = chrome_trace(&forwarded_pair());
        let starts = slices_of(&v, "s");
        let finishes = slices_of(&v, "f");
        assert_eq!(starts.len(), 1);
        assert_eq!(finishes.len(), 1);
        let x = slices_of(&v, "X");
        for arrow in starts.iter().chain(&finishes) {
            let tid = arrow["tid"].as_u64().unwrap();
            let ts = arrow["ts"].as_u64().unwrap();
            let enclosing = x.iter().any(|s| {
                s["tid"].as_u64() == Some(tid) && {
                    let b = s["ts"].as_u64().unwrap();
                    let d = s["dur"].as_u64().unwrap();
                    b <= ts && ts <= b + d
                }
            });
            assert!(enclosing, "arrow at tid={tid} ts={ts} dangles");
        }
    }

    #[test]
    fn forward_without_live_consumer_slice_gets_no_arrow() {
        // The consumer aborts before the forward arrives — no TxBegin is
        // open on core 1 at forward time, so no flow pair is emitted.
        let events = vec![
            TraceEvent::TxBegin {
                at: Cycle(0),
                core: 0,
            },
            TraceEvent::Forward {
                at: Cycle(5),
                from: 0,
                to: 1,
                line: LineAddr(7),
                pic: None,
            },
            TraceEvent::Commit {
                at: Cycle(10),
                core: 0,
            },
        ];
        let tl = Timeline::rebuild(&events, 15);
        let v = chrome_trace(&tl);
        assert!(slices_of(&v, "s").is_empty());
        assert!(slices_of(&v, "f").is_empty());
    }

    #[test]
    fn output_is_valid_json() {
        let v = chrome_trace(&forwarded_pair());
        let text = v.to_json();
        let back = Value::from_json(&text).unwrap();
        assert_eq!(back, v);
    }
}
