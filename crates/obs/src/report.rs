//! Compact terminal report over a reconstructed timeline.

use crate::timeline::{AttemptOutcome, Timeline};
use chats_stats::{Histogram, Table};
use chats_workloads::MemRegion;
use std::fmt::Write as _;

fn pct(part: u64, total: u64) -> String {
    if total == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", 100.0 * part as f64 / total as f64)
    }
}

/// [`text_report`] plus contention attribution: when `regions` names the
/// workload's memory map (see `Workload::regions`), the forwarding heat
/// map is rendered per line *and* rolled up per region, so a hot contract
/// slot reads as `token.storage+0` instead of a bare line number.
#[must_use]
pub fn text_report_with_regions(tl: &Timeline, regions: &[MemRegion]) -> String {
    let mut out = text_report(tl);
    if regions.is_empty() || tl.hot_lines.is_empty() {
        return out;
    }
    let attribute = |line: u64| -> String {
        regions.iter().find(|r| r.contains(line)).map_or_else(
            || "(unattributed)".to_string(),
            |r| format!("{}+{}", r.name, line - r.base_line),
        )
    };

    let mut ranked: Vec<(u64, u64)> = tl.hot_lines.iter().map(|(&l, &n)| (l, n)).collect();
    ranked.sort_by_key(|&(l, n)| (std::cmp::Reverse(n), l));
    let total: u64 = ranked.iter().map(|&(_, n)| n).sum();
    const TOP: usize = 8;
    let _ = writeln!(out);
    let _ = writeln!(out, "hot lines (forwardings, top {TOP}):");
    for &(line, n) in ranked.iter().take(TOP) {
        let _ = writeln!(out, "  line {line:<8} {:<24} {n}", attribute(line));
    }
    if ranked.len() > TOP {
        let _ = writeln!(out, "  ... {} more line(s)", ranked.len() - TOP);
    }

    let mut by_region: Vec<(&str, u64)> = regions
        .iter()
        .map(|r| {
            let n = ranked
                .iter()
                .filter(|&&(l, _)| r.contains(l))
                .map(|&(_, n)| n)
                .sum();
            (r.name, n)
        })
        .collect();
    let unattributed: u64 = ranked
        .iter()
        .filter(|&&(l, _)| !regions.iter().any(|r| r.contains(l)))
        .map(|&(_, n)| n)
        .sum();
    if unattributed > 0 {
        by_region.push(("(unattributed)", unattributed));
    }
    by_region.retain(|&(_, n)| n > 0);
    by_region.sort_by_key(|&(name, n)| (std::cmp::Reverse(n), name));
    let _ = writeln!(out, "contention by region:");
    for (name, n) in by_region {
        let _ = writeln!(out, "  {name:<24} {n:>8}  {}", pct(n, total));
    }
    out
}

/// Renders the per-core cycle-accounting table, chain analytics and NoC
/// usage as plain text (the `chats-trace report` output).
#[must_use]
pub fn text_report(tl: &Timeline) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "run: {} cycles, {} cores, {} commits, {} aborts",
        tl.total_cycles,
        tl.cores.len(),
        tl.commits(),
        tl.aborts()
    );
    let _ = writeln!(out);

    let mut t = Table::new(
        [
            "core",
            "useful",
            "wasted",
            "val-stall",
            "fallback",
            "other",
            "util",
        ]
        .map(String::from)
        .to_vec(),
    );
    for (core, ct) in tl.cores.iter().enumerate() {
        let b = ct.breakdown;
        t.row(vec![
            core.to_string(),
            b.useful.to_string(),
            b.wasted.to_string(),
            b.validation_stall.to_string(),
            b.fallback.to_string(),
            b.other.to_string(),
            pct(b.useful, tl.total_cycles),
        ]);
    }
    let agg = tl.aggregate();
    t.row(vec![
        "all".to_string(),
        agg.useful.to_string(),
        agg.wasted.to_string(),
        agg.validation_stall.to_string(),
        agg.fallback.to_string(),
        agg.other.to_string(),
        pct(agg.useful, agg.total()),
    ]);
    out.push_str(&t.to_string());
    let _ = writeln!(out);

    let _ = writeln!(out, "chains: {} forwardings", tl.chains.forwardings);
    let pic_hist: Histogram = tl
        .chains
        .pic_depth_hist
        .iter()
        .map(|(&d, &n)| (u64::from(d), n))
        .collect();
    if !pic_hist.is_empty() {
        let _ = writeln!(out, "  pic-depth histogram   {pic_hist}");
    }
    let len_hist: Histogram = tl
        .chains
        .chain_len_hist
        .iter()
        .map(|(&l, &n)| (l as u64, n))
        .collect();
    if !len_hist.is_empty() {
        let _ = writeln!(
            out,
            "  chain-length histogram {len_hist} (mean {:.2}, max {})",
            len_hist.mean().unwrap_or(0.0),
            len_hist.max().unwrap_or(0)
        );
    }
    if !tl.chains.graph.is_empty() {
        let _ = writeln!(out, "  forwarding graph (producer -> consumer : count)");
        for ((from, to), n) in &tl.chains.graph {
            let _ = writeln!(out, "    core{from} -> core{to} : {n}");
        }
    }
    let _ = writeln!(out);

    let _ = writeln!(
        out,
        "noc: {} messages, {} flits, {} transit cycles ({} queueing)",
        tl.noc.messages, tl.noc.flits, tl.noc.transit_cycles, tl.noc.queueing_cycles
    );

    if !tl.faults.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "faults: {} injection(s), {} watchdog firing(s)",
            tl.faults.total(),
            tl.faults.watchdog.len()
        );
        for (kind, n) in &tl.faults.injections {
            let _ = writeln!(out, "  {kind:<17} {n}");
        }
        for (at, core) in &tl.faults.watchdog {
            let _ = writeln!(
                out,
                "  watchdog fired at cycle {} (core {core} stalled)",
                at.0
            );
        }
    }

    let aborted_with_forwards = tl
        .cores
        .iter()
        .flat_map(|c| &c.attempts)
        .filter(|a| matches!(a.outcome, AttemptOutcome::Aborted(_)) && !a.forwards_in.is_empty())
        .count();
    if aborted_with_forwards > 0 {
        let _ = writeln!(
            out,
            "note: {aborted_with_forwards} aborted attempt(s) had consumed speculative data"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chats_machine::TraceEvent;
    use chats_sim::Cycle;

    #[test]
    fn report_contains_the_accounting_rows() {
        let events = vec![
            TraceEvent::TxBegin {
                at: Cycle(0),
                core: 0,
            },
            TraceEvent::Commit {
                at: Cycle(10),
                core: 0,
            },
        ];
        let tl = Timeline::rebuild(&events, 20);
        let r = text_report(&tl);
        assert!(r.contains("useful"), "{r}");
        assert!(r.contains("run: 20 cycles"), "{r}");
        assert!(r.contains("noc: 0 messages"), "{r}");
        assert!(
            !r.contains("faults:"),
            "fault-free report has no section: {r}"
        );
    }

    #[test]
    fn hot_lines_attribute_to_regions() {
        let events = vec![
            TraceEvent::TxBegin {
                at: Cycle(0),
                core: 0,
            },
            TraceEvent::TxBegin {
                at: Cycle(0),
                core: 1,
            },
            TraceEvent::Forward {
                at: Cycle(3),
                from: 0,
                to: 1,
                line: chats_mem::LineAddr(1025),
                pic: None,
            },
            TraceEvent::Forward {
                at: Cycle(5),
                from: 0,
                to: 1,
                line: chats_mem::LineAddr(1025),
                pic: None,
            },
            TraceEvent::Forward {
                at: Cycle(7),
                from: 1,
                to: 0,
                line: chats_mem::LineAddr(9999),
                pic: None,
            },
            TraceEvent::Commit {
                at: Cycle(10),
                core: 0,
            },
            TraceEvent::Commit {
                at: Cycle(12),
                core: 1,
            },
        ];
        let tl = Timeline::rebuild(&events, 20);
        let regions = [
            MemRegion {
                name: "accounts",
                base_line: 1,
                lines: 1024,
            },
            MemRegion {
                name: "token.storage",
                base_line: 1025,
                lines: 2048,
            },
        ];
        let r = text_report_with_regions(&tl, &regions);
        assert!(r.contains("token.storage+0"), "{r}");
        assert!(r.contains("(unattributed)"), "{r}");
        assert!(r.contains("contention by region:"), "{r}");
        // Without regions the plain report is unchanged.
        assert_eq!(text_report_with_regions(&tl, &[]), text_report(&tl));
        assert!(!text_report(&tl).contains("hot lines"));
    }

    #[test]
    fn report_surfaces_fault_activity() {
        let events = vec![
            TraceEvent::TxBegin {
                at: Cycle(0),
                core: 0,
            },
            TraceEvent::FaultInjected {
                at: Cycle(3),
                core: 0,
                kind: chats_machine::FaultKind::Delay,
            },
            TraceEvent::FaultInjected {
                at: Cycle(5),
                core: 0,
                kind: chats_machine::FaultKind::Delay,
            },
            TraceEvent::WatchdogFired {
                at: Cycle(18),
                core: 0,
            },
        ];
        let tl = Timeline::rebuild(&events, 20);
        let r = text_report(&tl);
        assert!(
            r.contains("faults: 2 injection(s), 1 watchdog firing(s)"),
            "{r}"
        );
        assert!(r.contains("delay"), "{r}");
        assert!(r.contains("watchdog fired at cycle 18"), "{r}");
    }
}
