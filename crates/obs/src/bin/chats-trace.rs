//! `chats-trace`: record, inspect and export protocol traces.
//!
//! ```text
//! chats-trace record --workload W [--system S] [--threads N] [--seed N]
//!                    [--paper] [--faults PLAN] --out trace.jsonl
//! chats-trace report --trace trace.jsonl [--cycles N]
//! chats-trace export --trace trace.jsonl --out trace.json [--cycles N]
//! ```
//!
//! `record` runs one workload with a streaming JSONL sink and writes a
//! `<out>.meta.json` sidecar carrying the run identity and total cycles.
//! `report` prints the cycle-accounting table; `export` writes a
//! Chrome-trace JSON loadable in Perfetto (see EXPERIMENTS.md).

use chats_core::{HtmSystem, PolicyConfig};
use chats_obs::{
    chrome_trace, read_jsonl_file, text_report_with_regions, JsonlSink, ProfileMeta, Timeline,
};
use chats_workloads::{registry, run_workload_traced, FaultPlan, RunConfig};
use serde::Value;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
usage: chats-trace <command> [args]

commands:
  record   run one workload with a streaming trace sink
  report   print the cycle-accounting report for a recorded trace
  export   write a Chrome-trace/Perfetto JSON for a recorded trace

options (record):
  --workload W         registry name (e.g. cadd, kmeans-h); required
  --system S           baseline|naive-rs|chats|power|pchats|levc (default chats)
  --threads N          thread count (default: machine core count)
  --seed N             root seed (default 0xC4A75)
  --paper              16-core paper configuration (default: 4-core quick test)
  --faults PLAN        install a fault plan: a shipped name (lossy-noc,
                       abort-storm, validation-stress) or a JSON file
  --out PATH           trace output path (JSON lines); required

options (report/export):
  --trace PATH         recorded trace (required)
  --cycles N           total-cycle horizon override (default: the
                       <trace>.meta.json sidecar, else the last event time)
  --strict             (report) exit nonzero when the recording sink
                       dropped events — the trace is incomplete
  --out PATH           export target (required for export)";

fn parse_system(s: &str) -> Result<HtmSystem, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "baseline" => HtmSystem::Baseline,
        "naive-rs" | "naivers" => HtmSystem::NaiveRs,
        "chats" => HtmSystem::Chats,
        "power" => HtmSystem::Power,
        "pchats" => HtmSystem::Pchats,
        "levc" | "levc-be" => HtmSystem::LevcBeIdealized,
        other => return Err(format!("unknown system '{other}'")),
    })
}

struct Args {
    command: String,
    workload: Option<String>,
    system: HtmSystem,
    threads: Option<usize>,
    seed: Option<u64>,
    paper: bool,
    faults: Option<String>,
    out: Option<PathBuf>,
    trace: Option<PathBuf>,
    cycles: Option<u64>,
    strict: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or("missing command")?;
    let mut args = Args {
        command,
        workload: None,
        system: HtmSystem::Chats,
        threads: None,
        seed: None,
        paper: false,
        faults: None,
        out: None,
        trace: None,
        cycles: None,
        strict: false,
    };
    while let Some(arg) = argv.next() {
        let mut value = |what: &str| argv.next().ok_or_else(|| format!("{what} needs a value"));
        match arg.as_str() {
            "--workload" => args.workload = Some(value("--workload")?),
            "--system" => args.system = parse_system(&value("--system")?)?,
            "--threads" => args.threads = Some(parse_num(&value("--threads")?, "--threads")?),
            "--seed" => args.seed = Some(parse_num(&value("--seed")?, "--seed")?),
            "--paper" => args.paper = true,
            "--faults" => args.faults = Some(value("--faults")?),
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--trace" => args.trace = Some(PathBuf::from(value("--trace")?)),
            "--cycles" => args.cycles = Some(parse_num(&value("--cycles")?, "--cycles")?),
            "--strict" => args.strict = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            s => return Err(format!("unknown argument '{s}'")),
        }
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag}: invalid number '{text}'"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("chats-trace: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match args.command.as_str() {
        "record" => cmd_record(&args),
        "report" => cmd_report(&args),
        "export" => cmd_export(&args),
        other => Err(format!("unknown command '{other}'\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("chats-trace: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `<out>.meta.json` next to the trace file.
fn meta_path(trace: &Path) -> PathBuf {
    let mut name = trace.file_name().unwrap_or_default().to_os_string();
    name.push(".meta.json");
    trace.with_file_name(name)
}

fn cmd_record(args: &Args) -> Result<(), String> {
    let name = args.workload.as_deref().ok_or("record needs --workload")?;
    let out = args.out.as_deref().ok_or("record needs --out")?;
    let workload = registry::by_name(name).ok_or_else(|| format!("unknown workload '{name}'"))?;
    let mut cfg = if args.paper {
        RunConfig::paper()
    } else {
        RunConfig::quick_test()
    };
    if let Some(t) = args.threads {
        cfg.threads = t;
    }
    if let Some(s) = args.seed {
        cfg.seed = s;
    }
    if let Some(spec) = &args.faults {
        let plan = FaultPlan::shipped()
            .into_iter()
            .find(|p| &p.name == spec)
            .map_or_else(|| FaultPlan::load(Path::new(spec)), Ok)?;
        cfg = cfg.with_faults(plan);
    }
    let policy = PolicyConfig::for_system(args.system);
    let sink =
        JsonlSink::create(out).map_err(|e| format!("cannot create {}: {e}", out.display()))?;
    let (run, sink) = run_workload_traced(workload.as_ref(), policy, &cfg, Box::new(sink))?;
    let dropped = sink.dropped();
    if dropped > 0 {
        eprintln!("chats-trace: warning: {dropped} events dropped (write errors)");
    }

    let meta = Value::Map(
        [
            ("workload".to_string(), Value::Str(name.to_string())),
            (
                "system".to_string(),
                Value::Str(args.system.label().to_string()),
            ),
            ("threads".to_string(), Value::U64(cfg.threads as u64)),
            ("seed".to_string(), Value::U64(cfg.seed)),
            ("cycles".to_string(), Value::U64(run.stats.cycles)),
            ("commits".to_string(), Value::U64(run.stats.commits)),
            ("aborts".to_string(), Value::U64(run.stats.total_aborts())),
            ("dropped_events".to_string(), Value::U64(dropped)),
        ]
        .into_iter()
        .collect(),
    );
    let mp = meta_path(out);
    std::fs::write(&mp, meta.to_json()).map_err(|e| format!("{}: {e}", mp.display()))?;
    println!(
        "recorded {name} under {} for {} cycles ({} commits) -> {} (+ {})",
        args.system.label(),
        run.stats.cycles,
        run.stats.commits,
        out.display(),
        mp.display()
    );
    Ok(())
}

/// Loads a trace and resolves its total-cycle horizon: explicit flag,
/// then meta sidecar, then the last event timestamp. The third element
/// is the recorder's dropped-event counter from the sidecar (0 when no
/// sidecar exists).
fn load_timeline(args: &Args) -> Result<(Timeline, ProfileMeta, u64), String> {
    let path = args.trace.as_deref().ok_or("missing --trace")?;
    let events = read_jsonl_file(path)?;
    let mut meta = ProfileMeta::default();
    let mut cycles = args.cycles;
    let mut dropped = 0;
    let mp = meta_path(path);
    if let Ok(text) = std::fs::read_to_string(&mp) {
        let v = Value::from_json(&text).map_err(|e| format!("{}: {e}", mp.display()))?;
        if let Some(m) = v.as_map() {
            if cycles.is_none() {
                cycles = m.get("cycles").and_then(Value::as_u64);
            }
            if let Some(w) = m.get("workload").and_then(Value::as_str) {
                meta.workload = w.to_string();
            }
            if let Some(s) = m.get("system").and_then(Value::as_str) {
                meta.system = s.to_string();
            }
            meta.threads = m.get("threads").and_then(Value::as_u64).unwrap_or(0) as usize;
            meta.seed = m.get("seed").and_then(Value::as_u64).unwrap_or(0);
            dropped = m.get("dropped_events").and_then(Value::as_u64).unwrap_or(0);
        }
    }
    let horizon = cycles.unwrap_or_else(|| {
        events
            .iter()
            .map(|e| {
                // NoC arrivals may postdate the last core event.
                if let chats_machine::TraceEvent::NocSend { arrive, .. } = e {
                    arrive.0
                } else {
                    e.at().0
                }
            })
            .max()
            .unwrap_or(0)
    });
    Ok((Timeline::rebuild(&events, horizon), meta, dropped))
}

fn cmd_report(args: &Args) -> Result<(), String> {
    let (tl, meta, dropped) = load_timeline(args)?;
    // The meta sidecar names the workload; its memory map (when it has
    // one — the evm family does) attributes hot lines to contract
    // regions in the report.
    let regions = registry::by_name(&meta.workload)
        .map(|w| w.regions())
        .unwrap_or_default();
    print!("{}", text_report_with_regions(&tl, &regions));
    if dropped > 0 {
        eprintln!(
            "chats-trace: WARNING: the recording sink dropped {dropped} event(s); \
             this report is built from an INCOMPLETE trace"
        );
        if args.strict {
            return Err(format!("--strict: {dropped} dropped event(s)"));
        }
    }
    Ok(())
}

fn cmd_export(args: &Args) -> Result<(), String> {
    let out = args.out.as_deref().ok_or("export needs --out")?;
    let (tl, _, _) = load_timeline(args)?;
    let v = chrome_trace(&tl);
    std::fs::write(out, v.to_json()).map_err(|e| format!("{}: {e}", out.display()))?;
    println!(
        "exported {} slices across {} cores -> {} (load at https://ui.perfetto.dev)",
        tl.cores.iter().map(|c| c.attempts.len()).sum::<usize>(),
        tl.cores.len(),
        out.display()
    );
    Ok(())
}
