//! Folding the flat event stream into per-core timelines with strict
//! cycle accounting and chain analytics.

use chats_core::{AbortCause, Pic};
use chats_machine::TraceEvent;
use chats_mem::LineAddr;
use chats_sim::Cycle;
use std::collections::BTreeMap;

/// A closed `[begin, end]` span on one core's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// First cycle of the span.
    pub begin: Cycle,
    /// Last cycle of the span (an instantaneous span has `end == begin`).
    pub end: Cycle,
}

impl Interval {
    /// Span length in cycles.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end.0 - self.begin.0
    }

    /// `true` for zero-length spans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end == self.begin
    }
}

/// How a transaction attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// Reached commit.
    Committed,
    /// Aborted with the given cause.
    Aborted(AbortCause),
    /// Still running when the trace ended (timeout or truncated stream);
    /// accounted to the `other` bucket, not to useful/wasted work.
    Unfinished,
}

/// One reconstructed transaction attempt.
#[derive(Debug, Clone)]
pub struct Attempt {
    /// The span from `TxBegin` to commit/abort.
    pub span: Interval,
    /// How it ended.
    pub outcome: AttemptOutcome,
    /// Cycles of this attempt spent stalled at `TxEnd` waiting for the
    /// VSB to drain (or for a deferred commit release).
    pub val_stall: u64,
    /// `SpecResp`s this attempt *produced*, as `(when, consumer, line)`.
    pub forwards_out: Vec<(Cycle, usize, LineAddr)>,
    /// `SpecResp`s this attempt *consumed*, as `(when, producer, line)`.
    pub forwards_in: Vec<(Cycle, usize, LineAddr)>,
    /// Successful validations (lines that left the VSB cleanly).
    pub validations: u64,
    /// VSB entries discarded unvalidated at abort.
    pub evictions: u64,
    /// Highest VSB occupancy observed during the attempt.
    pub vsb_peak: usize,
}

/// The strict per-core cycle partition: every simulated cycle of a core
/// lands in exactly one bucket, so the five fields sum to the run's total
/// cycle count (asserted by this crate's property tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    /// Inside attempts that eventually committed, excluding their
    /// validation stalls — the paper's "useful speculation".
    pub useful: u64,
    /// Inside attempts that eventually aborted, excluding their
    /// validation stalls — wasted speculation, the work CHATS exists to
    /// salvage.
    pub wasted: u64,
    /// Stalled at `TxEnd` with a non-empty VSB (§IV-B commit condition)
    /// or a deferred commit release.
    pub validation_stall: u64,
    /// Holding the fallback path: serialized, non-speculative execution.
    pub fallback: u64,
    /// Everything else: non-transactional instructions, backoff, waiting
    /// for the lock/token, and post-halt idling.
    pub other: u64,
}

impl CycleBreakdown {
    /// Sum of all buckets — the cycles this breakdown accounts for.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.useful + self.wasted + self.validation_stall + self.fallback + self.other
    }

    /// Adds `rhs` bucket-wise (for aggregating cores).
    pub fn accumulate(&mut self, rhs: &CycleBreakdown) {
        self.useful += rhs.useful;
        self.wasted += rhs.wasted;
        self.validation_stall += rhs.validation_stall;
        self.fallback += rhs.fallback;
        self.other += rhs.other;
    }
}

/// One core's reconstructed history.
#[derive(Debug, Clone, Default)]
pub struct CoreTimeline {
    /// Attempts in begin order.
    pub attempts: Vec<Attempt>,
    /// Fallback-hold intervals (acquisition to release).
    pub fallbacks: Vec<Interval>,
    /// The core's cycle partition.
    pub breakdown: CycleBreakdown,
}

/// Chain analytics extracted from `Forward` events.
#[derive(Debug, Clone, Default)]
pub struct ChainStats {
    /// Forwardings per PiC *depth* — the distance of the carried PiC from
    /// its initial middle-of-range value (0 = freshly linked pair).
    /// Forwardings without a PiC (power producers) are excluded.
    pub pic_depth_hist: BTreeMap<u32, u64>,
    /// Distribution of *chain lengths*: for each maximal burst of
    /// forwardings linked by shared endpoints, the number of transactions
    /// involved. Two isolated transactions forwarding once form a chain
    /// of length 2.
    pub chain_len_hist: BTreeMap<usize, u64>,
    /// Producer→consumer forwarding counts (the forwarding graph edges).
    pub graph: BTreeMap<(usize, usize), u64>,
    /// Total forwardings observed.
    pub forwardings: u64,
}

/// Interconnect usage derived from `NocSend` events. Unlike the cycle
/// buckets these cycles *overlap* core execution (messages fly while
/// cores run), so they are reported as an overlay, not a partition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NocUsage {
    /// Messages injected.
    pub messages: u64,
    /// Flits injected (the paper's Figure 7 metric).
    pub flits: u64,
    /// Total in-flight cycles, summed over messages (arrival − injection).
    pub transit_cycles: u64,
    /// The share of `transit_cycles` beyond pure serialization + link
    /// latency: time spent queued behind other messages at the source
    /// egress port.
    pub queueing_cycles: u64,
}

/// Fault-injection and watchdog activity observed in the stream. Empty
/// for fault-free runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultActivity {
    /// Injection counts keyed by fault-kind label (e.g. `"delay"`,
    /// `"spurious-abort"`).
    pub injections: BTreeMap<&'static str, u64>,
    /// Watchdog firings as `(cycle, starved core)`.
    pub watchdog: Vec<(Cycle, usize)>,
}

impl FaultActivity {
    /// Total injections across all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.injections.values().sum()
    }

    /// `true` when the run saw no injections and no watchdog firings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty() && self.watchdog.is_empty()
    }
}

/// The reconstructed run: per-core timelines plus run-wide analytics.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Per-core histories, indexed by core id.
    pub cores: Vec<CoreTimeline>,
    /// Chain analytics.
    pub chains: ChainStats,
    /// Interconnect usage.
    pub noc: NocUsage,
    /// Fault-injection activity.
    pub faults: FaultActivity,
    /// Forwardings per conflicting line — the run's contention heat map,
    /// attributable to named memory regions via
    /// [`crate::text_report_with_regions`].
    pub hot_lines: BTreeMap<u64, u64>,
    /// Total simulated cycles (the horizon every core is accounted to).
    pub total_cycles: u64,
}

/// Per-core fold state while scanning the stream.
#[derive(Default)]
struct CoreScan {
    open_attempt: Option<Attempt>,
    stall_since: Option<Cycle>,
    fallback_since: Option<Cycle>,
    vsb_now: usize,
}

impl Timeline {
    /// Folds an event stream (emission order) into a timeline.
    ///
    /// `total_cycles` is the run length from `RunStats::cycles`; every
    /// core's breakdown is accounted against this horizon. The stream is
    /// expected to be complete (an unbounded sink); on a truncated ring
    /// stream, unmatched end-events are skipped and the result is a
    /// best-effort view.
    #[must_use]
    pub fn rebuild(events: &[TraceEvent], total_cycles: u64) -> Timeline {
        let ncores = events
            .iter()
            .filter_map(|e| match e {
                // NocSend endpoints include the directory node; core
                // events bound the core count exactly.
                TraceEvent::NocSend { .. } => None,
                TraceEvent::Forward { from, to, .. } => Some((*from).max(*to) + 1),
                other => other.core().map(|c| c + 1),
            })
            .max()
            .unwrap_or(0);
        let mut scans: Vec<CoreScan> = (0..ncores).map(|_| CoreScan::default()).collect();
        let mut tl = Timeline {
            cores: vec![CoreTimeline::default(); ncores],
            total_cycles,
            ..Timeline::default()
        };

        for ev in events {
            match ev {
                TraceEvent::TxBegin { at, core } => {
                    let s = &mut scans[*core];
                    // A TxBegin while an attempt is open means the stream
                    // lost the closing event; drop the half-seen attempt.
                    s.open_attempt = Some(Attempt {
                        span: Interval {
                            begin: *at,
                            end: *at,
                        },
                        outcome: AttemptOutcome::Unfinished,
                        val_stall: 0,
                        forwards_out: Vec::new(),
                        forwards_in: Vec::new(),
                        validations: 0,
                        evictions: 0,
                        vsb_peak: 0,
                    });
                    s.stall_since = None;
                    s.vsb_now = 0;
                }
                TraceEvent::Commit { at, core } => {
                    Timeline::close_attempt(
                        &mut scans[*core],
                        &mut tl.cores[*core],
                        *at,
                        AttemptOutcome::Committed,
                    );
                }
                TraceEvent::Abort { at, core, cause } => {
                    Timeline::close_attempt(
                        &mut scans[*core],
                        &mut tl.cores[*core],
                        *at,
                        AttemptOutcome::Aborted(*cause),
                    );
                }
                TraceEvent::Forward {
                    at,
                    from,
                    to,
                    line,
                    pic,
                } => {
                    tl.chains.forwardings += 1;
                    *tl.chains.graph.entry((*from, *to)).or_insert(0) += 1;
                    *tl.hot_lines.entry(line.0).or_insert(0) += 1;
                    if let Some(p) = pic {
                        if let (Some(v), Some(init)) = (p.value(), Pic::INIT.value()) {
                            let depth = u32::from(v.abs_diff(init));
                            *tl.chains.pic_depth_hist.entry(depth).or_insert(0) += 1;
                        }
                    }
                    if let Some(a) = scans[*from].open_attempt.as_mut() {
                        a.forwards_out.push((*at, *to, *line));
                    }
                    if let Some(a) = scans[*to].open_attempt.as_mut() {
                        a.forwards_in.push((*at, *from, *line));
                    }
                }
                TraceEvent::Validated { at: _, core, .. } => {
                    let s = &mut scans[*core];
                    s.vsb_now = s.vsb_now.saturating_sub(1);
                    if let Some(a) = s.open_attempt.as_mut() {
                        a.validations += 1;
                    }
                }
                TraceEvent::Fallback { at, core } => {
                    scans[*core].fallback_since = Some(*at);
                }
                TraceEvent::FallbackRelease { at, core } => {
                    let s = &mut scans[*core];
                    if let Some(begin) = s.fallback_since.take() {
                        tl.cores[*core].fallbacks.push(Interval { begin, end: *at });
                    }
                }
                TraceEvent::NocSend {
                    at, flits, arrive, ..
                } => {
                    tl.noc.messages += 1;
                    tl.noc.flits += *flits;
                    let transit = arrive.0 - at.0;
                    tl.noc.transit_cycles += transit;
                    // Uncontended cost: serialize `flits` cycles at the
                    // egress port, then one link hop (NocConfig default).
                    tl.noc.queueing_cycles += transit.saturating_sub(*flits + 1);
                }
                TraceEvent::ValStallBegin { at, core } => {
                    scans[*core].stall_since = Some(*at);
                }
                TraceEvent::ValStallEnd { at, core } => {
                    let s = &mut scans[*core];
                    if let (Some(begin), Some(a)) = (s.stall_since.take(), s.open_attempt.as_mut())
                    {
                        a.val_stall += at.0 - begin.0;
                    }
                }
                TraceEvent::VsbInsert {
                    core, occupancy, ..
                } => {
                    let s = &mut scans[*core];
                    s.vsb_now = *occupancy;
                    if let Some(a) = s.open_attempt.as_mut() {
                        a.vsb_peak = a.vsb_peak.max(*occupancy);
                    }
                }
                TraceEvent::VsbEvict { core, .. } => {
                    let s = &mut scans[*core];
                    s.vsb_now = s.vsb_now.saturating_sub(1);
                    if let Some(a) = s.open_attempt.as_mut() {
                        a.evictions += 1;
                    }
                }
                TraceEvent::FaultInjected { kind, .. } => {
                    *tl.faults.injections.entry(kind.label()).or_insert(0) += 1;
                }
                TraceEvent::WatchdogFired { at, core } => {
                    tl.faults.watchdog.push((*at, *core));
                }
            }
        }

        // Close whatever is still open at the horizon (timeout runs).
        let end = Cycle(total_cycles);
        for (core, s) in scans.iter_mut().enumerate() {
            if let Some(begin) = s.fallback_since.take() {
                tl.cores[core].fallbacks.push(Interval { begin, end });
            }
            if let Some(mut a) = s.open_attempt.take() {
                if let Some(begin) = s.stall_since.take() {
                    a.val_stall += end.0 - begin.0;
                }
                a.span.end = end;
                a.outcome = AttemptOutcome::Unfinished;
                tl.cores[core].attempts.push(a);
            }
        }

        for ct in &mut tl.cores {
            ct.breakdown = Timeline::account(ct, total_cycles);
        }
        tl.chains.chain_len_hist = chain_lengths(events);
        tl
    }

    fn close_attempt(
        scan: &mut CoreScan,
        ct: &mut CoreTimeline,
        at: Cycle,
        outcome: AttemptOutcome,
    ) {
        // A lone Commit/Abort (truncated stream) has nothing to close.
        let Some(mut a) = scan.open_attempt.take() else {
            return;
        };
        if let Some(begin) = scan.stall_since.take() {
            a.val_stall += at.0 - begin.0;
        }
        a.span.end = at;
        a.outcome = outcome;
        ct.attempts.push(a);
        scan.vsb_now = 0;
    }

    /// Builds the strict partition for one core. Attempt and fallback
    /// spans never overlap (fallback runs between attempts), so the
    /// classified cycles are disjoint and `other` is the exact remainder.
    fn account(ct: &CoreTimeline, total_cycles: u64) -> CycleBreakdown {
        let mut b = CycleBreakdown::default();
        for a in &ct.attempts {
            let span = a.span.len();
            let stall = a.val_stall.min(span);
            match a.outcome {
                AttemptOutcome::Committed => {
                    b.useful += span - stall;
                    b.validation_stall += stall;
                }
                AttemptOutcome::Aborted(_) => {
                    b.wasted += span - stall;
                    b.validation_stall += stall;
                }
                // Unfinished work is neither proven useful nor wasted;
                // leave it in `other` (the remainder) rather than guess.
                AttemptOutcome::Unfinished => {}
            }
        }
        for f in &ct.fallbacks {
            b.fallback += f.len();
        }
        let classified = b.useful + b.wasted + b.validation_stall + b.fallback;
        b.other = total_cycles.saturating_sub(classified);
        b
    }

    /// Bucket-wise sum over all cores; its `total()` equals
    /// `total_cycles × cores.len()` for complete streams.
    #[must_use]
    pub fn aggregate(&self) -> CycleBreakdown {
        let mut agg = CycleBreakdown::default();
        for ct in &self.cores {
            agg.accumulate(&ct.breakdown);
        }
        agg
    }

    /// Committed attempts across all cores.
    #[must_use]
    pub fn commits(&self) -> u64 {
        self.cores
            .iter()
            .flat_map(|c| &c.attempts)
            .filter(|a| a.outcome == AttemptOutcome::Committed)
            .count() as u64
    }

    /// Aborted attempts across all cores.
    #[must_use]
    pub fn aborts(&self) -> u64 {
        self.cores
            .iter()
            .flat_map(|c| &c.attempts)
            .filter(|a| matches!(a.outcome, AttemptOutcome::Aborted(_)))
            .count() as u64
    }
}

/// Groups forwardings into chains and histograms their sizes.
///
/// A *chain instance* is a set of transactions linked by forwardings that
/// are concurrently live; we approximate it by uniting forward edges whose
/// endpoints share a core while that core's attempt is still open, i.e. a
/// union-find over `(core, attempt-generation)` nodes.
fn chain_lengths(events: &[TraceEvent]) -> BTreeMap<usize, u64> {
    // Attempt generation counter per core: bumped on TxBegin.
    let mut generation: BTreeMap<usize, u64> = BTreeMap::new();
    // Union-find over (core, generation) node ids.
    let mut ids: BTreeMap<(usize, u64), usize> = BTreeMap::new();
    let mut parent: Vec<usize> = Vec::new();

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    let node =
        |ids: &mut BTreeMap<(usize, u64), usize>, parent: &mut Vec<usize>, key: (usize, u64)| {
            *ids.entry(key).or_insert_with(|| {
                let id = parent.len();
                parent.push(id);
                id
            })
        };

    for ev in events {
        match ev {
            TraceEvent::TxBegin { core, .. } => {
                *generation.entry(*core).or_insert(0) += 1;
            }
            TraceEvent::Forward { from, to, .. } => {
                let gf = generation.get(from).copied().unwrap_or(0);
                let gt = generation.get(to).copied().unwrap_or(0);
                let a = node(&mut ids, &mut parent, (*from, gf));
                let b = node(&mut ids, &mut parent, (*to, gt));
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                if ra != rb {
                    parent[ra] = rb;
                }
            }
            _ => {}
        }
    }

    let mut sizes: BTreeMap<usize, usize> = BTreeMap::new();
    let roots: Vec<usize> = (0..parent.len()).map(|i| find(&mut parent, i)).collect();
    for r in roots {
        *sizes.entry(r).or_insert(0) += 1;
    }
    let mut hist = BTreeMap::new();
    for size in sizes.values() {
        *hist.entry(*size).or_insert(0) += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev_begin(at: u64, core: usize) -> TraceEvent {
        TraceEvent::TxBegin {
            at: Cycle(at),
            core,
        }
    }

    fn ev_commit(at: u64, core: usize) -> TraceEvent {
        TraceEvent::Commit {
            at: Cycle(at),
            core,
        }
    }

    fn ev_abort(at: u64, core: usize) -> TraceEvent {
        TraceEvent::Abort {
            at: Cycle(at),
            core,
            cause: AbortCause::Conflict,
        }
    }

    #[test]
    fn buckets_partition_the_run() {
        let events = vec![
            ev_begin(10, 0),
            TraceEvent::ValStallBegin {
                at: Cycle(40),
                core: 0,
            },
            TraceEvent::ValStallEnd {
                at: Cycle(55),
                core: 0,
            },
            ev_commit(55, 0),
            ev_begin(60, 0),
            ev_abort(80, 0),
            TraceEvent::Fallback {
                at: Cycle(85),
                core: 0,
            },
            TraceEvent::FallbackRelease {
                at: Cycle(95),
                core: 0,
            },
        ];
        let tl = Timeline::rebuild(&events, 100);
        let b = tl.cores[0].breakdown;
        assert_eq!(b.useful, 30, "45 committed-span cycles minus 15 stall");
        assert_eq!(b.validation_stall, 15);
        assert_eq!(b.wasted, 20);
        assert_eq!(b.fallback, 10);
        assert_eq!(b.other, 100 - 30 - 15 - 20 - 10);
        assert_eq!(b.total(), 100);
    }

    #[test]
    fn unfinished_attempt_lands_in_other() {
        let events = vec![ev_begin(10, 0)];
        let tl = Timeline::rebuild(&events, 50);
        let b = tl.cores[0].breakdown;
        assert_eq!(b.useful + b.wasted + b.validation_stall, 0);
        assert_eq!(b.other, 50);
        assert_eq!(tl.cores[0].attempts.len(), 1);
        assert_eq!(tl.cores[0].attempts[0].outcome, AttemptOutcome::Unfinished);
    }

    #[test]
    fn forwarding_graph_and_pic_depths() {
        let events = vec![
            ev_begin(0, 0),
            ev_begin(0, 1),
            TraceEvent::Forward {
                at: Cycle(5),
                from: 0,
                to: 1,
                line: LineAddr(1),
                pic: Some(Pic::INIT),
            },
            TraceEvent::Forward {
                at: Cycle(9),
                from: 0,
                to: 1,
                line: LineAddr(2),
                pic: None,
            },
            ev_commit(10, 0),
            ev_commit(20, 1),
        ];
        let tl = Timeline::rebuild(&events, 30);
        assert_eq!(tl.chains.forwardings, 2);
        assert_eq!(tl.chains.graph.get(&(0, 1)), Some(&2));
        assert_eq!(tl.hot_lines.get(&1), Some(&1));
        assert_eq!(tl.hot_lines.get(&2), Some(&1));
        assert_eq!(tl.chains.pic_depth_hist.get(&0), Some(&1), "INIT = depth 0");
        assert_eq!(
            tl.chains.pic_depth_hist.values().sum::<u64>(),
            1,
            "pic-less forward excluded"
        );
        assert_eq!(tl.chains.chain_len_hist.get(&2), Some(&1));
        assert_eq!(tl.cores[0].attempts[0].forwards_out.len(), 2);
        assert_eq!(tl.cores[1].attempts[0].forwards_in.len(), 2);
    }

    #[test]
    fn three_link_chain_counts_as_one_chain_of_three() {
        let events = vec![
            ev_begin(0, 0),
            ev_begin(0, 1),
            ev_begin(0, 2),
            TraceEvent::Forward {
                at: Cycle(3),
                from: 0,
                to: 1,
                line: LineAddr(1),
                pic: Some(Pic::INIT),
            },
            TraceEvent::Forward {
                at: Cycle(6),
                from: 1,
                to: 2,
                line: LineAddr(2),
                pic: Some(Pic::INIT),
            },
            ev_commit(10, 0),
            ev_commit(12, 1),
            ev_commit(14, 2),
        ];
        let tl = Timeline::rebuild(&events, 20);
        assert_eq!(tl.chains.chain_len_hist.get(&3), Some(&1));
        assert_eq!(tl.chains.chain_len_hist.len(), 1);
    }

    #[test]
    fn noc_usage_sums_transit_and_queueing() {
        let events = vec![
            TraceEvent::NocSend {
                at: Cycle(0),
                src: 0,
                dst: 4,
                flits: 1,
                arrive: Cycle(2), // uncontended: 1 flit + 1 link hop
            },
            TraceEvent::NocSend {
                at: Cycle(0),
                src: 0,
                dst: 4,
                flits: 5,
                arrive: Cycle(7), // queued 1 cycle behind the first
            },
        ];
        let tl = Timeline::rebuild(&events, 10);
        assert_eq!(tl.noc.messages, 2);
        assert_eq!(tl.noc.flits, 6);
        assert_eq!(tl.noc.transit_cycles, 9);
        assert_eq!(tl.noc.queueing_cycles, 1);
    }

    #[test]
    fn vsb_occupancy_and_evictions_attach_to_attempts() {
        let events = vec![
            ev_begin(0, 0),
            TraceEvent::VsbInsert {
                at: Cycle(2),
                core: 0,
                line: LineAddr(1),
                occupancy: 1,
            },
            TraceEvent::VsbInsert {
                at: Cycle(3),
                core: 0,
                line: LineAddr(2),
                occupancy: 2,
            },
            TraceEvent::Validated {
                at: Cycle(5),
                core: 0,
                line: LineAddr(1),
            },
            TraceEvent::VsbEvict {
                at: Cycle(8),
                core: 0,
                line: LineAddr(2),
            },
            ev_abort(8, 0),
        ];
        let tl = Timeline::rebuild(&events, 10);
        let a = &tl.cores[0].attempts[0];
        assert_eq!(a.vsb_peak, 2);
        assert_eq!(a.validations, 1);
        assert_eq!(a.evictions, 1);
    }
}
