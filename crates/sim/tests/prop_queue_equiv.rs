//! Timing wheel ⇔ reference heap equivalence.
//!
//! The production [`EventQueue`] is a timing wheel; the pre-overhaul
//! binary-heap implementation survives as `ReferenceEventQueue`, the
//! executable specification of delivery order. These properties drive
//! both in lockstep over arbitrary operation sequences — pushes near and
//! far (spillover), into the past, tied, interleaved with plain pops and
//! k-th tied pops — and demand identical observable behaviour at every
//! step. Identical pop order is the exact property the simulator's
//! bit-identical-schedule guarantee rests on.

use chats_sim::{Cycle, EventQueue, ReferenceEventQueue};
use proptest::prelude::*;

/// One queue operation. Delays are generated in the three regimes that
/// matter to a wheel: inside the current slot window, far beyond it, and
/// (via `PushPast`) behind the drained cursor.
#[derive(Debug, Clone)]
enum Op {
    /// Push at `last_popped_time + delay`.
    Push(u64),
    /// Push at `last_popped_time.saturating_sub(back)` — into the past.
    PushPast(u64),
    /// Plain pop.
    Pop,
    /// Pop the `k`-th tied event (clamped by both implementations).
    PopTied(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Near-future pushes dominate, as they do in the real machine.
        (0u64..8).prop_map(Op::Push),
        (0u64..300).prop_map(Op::Push),
        // Far enough to guarantee wheel spillover (window is 1024).
        (1_000u64..50_000).prop_map(Op::Push),
        (0u64..200).prop_map(Op::PushPast),
        Just(Op::Pop),
        (0usize..6).prop_map(Op::PopTied),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Lockstep equivalence on arbitrary op sequences: every pop (plain
    /// and tied), every tie width, every peeked time, and every length
    /// agree between the wheel and the reference heap.
    #[test]
    fn wheel_matches_reference_heap(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut refq: ReferenceEventQueue<u64> = ReferenceEventQueue::new();
        let mut now = 0u64; // time of the last delivery, like Machine::clock
        for (i, op) in ops.iter().enumerate() {
            let id = i as u64;
            match *op {
                Op::Push(delay) => {
                    let at = Cycle(now.saturating_add(delay));
                    wheel.push(at, id);
                    refq.push(at, id);
                }
                Op::PushPast(back) => {
                    let at = Cycle(now.saturating_sub(back));
                    wheel.push(at, id);
                    refq.push(at, id);
                }
                Op::Pop => {
                    let a = wheel.pop();
                    let b = refq.pop();
                    prop_assert_eq!(a, b);
                    if let Some((t, _)) = a {
                        now = t.0;
                    }
                }
                Op::PopTied(k) => {
                    // The decision point only exists when the hook sees a
                    // tie, so compare the width first, then the choice.
                    prop_assert_eq!(wheel.tie_width(), refq.tie_width());
                    let a = wheel.pop_tied(k);
                    let b = refq.pop_tied(k);
                    prop_assert_eq!(a, b);
                    if let Some((t, _)) = a {
                        now = t.0;
                    }
                }
            }
            prop_assert_eq!(wheel.len(), refq.len());
            prop_assert_eq!(wheel.peek_time(), refq.peek_time());
        }
        // Drain: the full residual order must agree too.
        loop {
            prop_assert_eq!(wheel.tie_width(), refq.tie_width());
            let a = wheel.pop();
            prop_assert_eq!(a, refq.pop());
            if a.is_none() {
                break;
            }
        }
    }

    /// `pop_tied(k)` removes only the chosen event: the remainder pops in
    /// exactly the order the reference queue (given the same removal)
    /// produces — no collateral reordering.
    #[test]
    fn pop_tied_never_reorders_the_rest(
        times in proptest::collection::vec(0u64..6, 2..60),
        k in 0usize..8,
    ) {
        let mut wheel = EventQueue::new();
        let mut refq = ReferenceEventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            wheel.push(Cycle(t), i);
            refq.push(Cycle(t), i);
        }
        prop_assert_eq!(wheel.pop_tied(k), refq.pop_tied(k));
        loop {
            let a = wheel.pop();
            prop_assert_eq!(a, refq.pop());
            if a.is_none() {
                break;
            }
        }
    }
}
