//! Property tests for the simulation engine.

use chats_sim::{Cycle, EventQueue, SimRng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Popping the queue yields events in non-decreasing time order, and
    /// equal-time events in insertion order — against a stable-sort
    /// reference.
    #[test]
    fn queue_matches_stable_sort(times in proptest::collection::vec(0u64..50, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Cycle(t), i);
        }
        let mut reference: Vec<(u64, usize)> =
            times.iter().copied().zip(0..).collect();
        reference.sort_by_key(|&(t, _)| t); // stable: ties keep index order
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.0, i));
        }
        prop_assert_eq!(popped, reference);
    }

    /// Interleaved push/pop never reorders: whatever is popped is the
    /// minimum of everything currently inside.
    #[test]
    fn pop_is_always_minimum(ops in proptest::collection::vec((0u64..100, any::<bool>()), 1..200)) {
        let mut q = EventQueue::new();
        let mut inside: Vec<u64> = Vec::new();
        for (t, is_push) in ops {
            if is_push || inside.is_empty() {
                q.push(Cycle(t), ());
                inside.push(t);
            } else {
                let (got, ()) = q.pop().unwrap();
                let min = *inside.iter().min().unwrap();
                prop_assert_eq!(got.0, min);
                let idx = inside.iter().position(|&x| x == min).unwrap();
                inside.swap_remove(idx);
            }
        }
    }

    /// The RNG is a pure function of its seed.
    #[test]
    fn rng_is_deterministic(seed in any::<u64>(), n in 1usize..100) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..n {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Bounded sampling stays in bounds for arbitrary bounds.
    #[test]
    fn rng_below_in_bounds(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut r = SimRng::seed_from(seed);
        for _ in 0..32 {
            prop_assert!(r.below(bound) < bound);
        }
    }
}
