//! Seedable randomness for workloads and backoff.
//!
//! All randomness in the simulator flows through [`SimRng`] so that a run is
//! fully determined by its seed. The generator is an in-repo
//! xoshiro256++ seeded through SplitMix64 — the same construction the
//! `rand` crate's `SmallRng` uses on 64-bit targets — implemented here
//! so the workspace builds with zero network access (see DESIGN.md
//! "Offline builds"). The wrapper intentionally exposes a narrow API
//! (ranges, permutations, geometric-ish skew) instead of a whole RNG
//! crate surface, which keeps call sites auditable.

/// Deterministic random-number generator used by workloads, backoff and any
/// other stochastic simulator component.
///
/// # Example
///
/// ```
/// use chats_sim::SimRng;
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.below(1000), b.below(1000));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The four xoshiro256++ state words are filled by a SplitMix64
    /// stream over the seed, which guarantees a non-zero state.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SimRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent child generator; used to give each simulated
    /// thread its own stream while keeping the whole run a function of one
    /// root seed.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(s)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "SimRng::below requires a positive bound");
        // Lemire's multiply-shift; the bias at simulator-sized bounds is
        // far below anything the statistics could observe.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "SimRng::range requires lo < hi");
        lo + self.below(hi - lo)
    }

    /// A raw 64-bit sample (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [ref mut s0, ref mut s1, ref mut s2, ref mut s3] = self.state;
        let result = s0.wrapping_add(*s3).rotate_left(23).wrapping_add(*s0);
        let t = *s1 << 17;
        *s2 ^= *s0;
        *s3 ^= *s1;
        *s1 ^= *s2;
        *s0 ^= *s3;
        *s2 ^= t;
        *s3 = s3.rotate_left(45);
        result
    }

    /// Bernoulli trial: `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or `num > den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        assert!(
            den > 0 && num <= den,
            "chance({num}/{den}) is not a probability"
        );
        self.below(den) < num
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

impl chats_snap::Snap for SimRng {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        self.state.save(w);
    }

    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        let state = <[u64; 4]>::load(r)?;
        if state == [0; 4] {
            return Err(r.err("xoshiro256++ state must not be all-zero"));
        }
        Ok(SimRng { state })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(99);
        let mut b = SimRng::seed_from(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SimRng::seed_from(4);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        SimRng::seed_from(0).below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..100 {
            assert!(r.chance(1, 1));
            assert!(!r.chance(0, 1));
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::seed_from(6);
        let hits = (0..10_000).filter(|_| r.chance(1, 4)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SimRng::seed_from(7);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let same = (0..32).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from(8);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50-element shuffle left input unchanged"
        );
    }

    #[test]
    fn seed_zero_state_is_nonzero() {
        // SplitMix64 expansion must never hand xoshiro an all-zero state.
        let r = SimRng::seed_from(0);
        assert!(r.state.iter().any(|&w| w != 0));
    }
}
