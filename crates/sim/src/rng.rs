//! Seedable randomness for workloads and backoff.
//!
//! All randomness in the simulator flows through [`SimRng`] so that a run is
//! fully determined by its seed. The wrapper intentionally exposes a narrow
//! API (ranges, permutations, geometric-ish skew) instead of the whole
//! [`rand`] surface, which keeps call sites auditable.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic random-number generator used by workloads, backoff and any
/// other stochastic simulator component.
///
/// # Example
///
/// ```
/// use chats_sim::SimRng;
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.below(1000), b.below(1000));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; used to give each simulated
    /// thread its own stream while keeping the whole run a function of one
    /// root seed.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(s)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "SimRng::below requires a positive bound");
        self.inner.gen_range(0..bound)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "SimRng::range requires lo < hi");
        self.inner.gen_range(lo..hi)
    }

    /// A raw 64-bit sample.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Bernoulli trial: `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or `num > den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        assert!(den > 0 && num <= den, "chance({num}/{den}) is not a probability");
        self.inner.gen_range(0..den) < num
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(99);
        let mut b = SimRng::seed_from(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SimRng::seed_from(4);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        SimRng::seed_from(0).below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..100 {
            assert!(r.chance(1, 1));
            assert!(!r.chance(0, 1));
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::seed_from(6);
        let hits = (0..10_000).filter(|_| r.chance(1, 4)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SimRng::seed_from(7);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let same = (0..32).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from(8);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50-element shuffle left input unchanged");
    }
}
