//! Decision points and schedule traces for systematic exploration.
//!
//! A deterministic simulation has exactly one schedule per seed. To *search*
//! for adversarial interleavings, the machine model exposes every place where
//! "the hardware could legally have done something else" as an explicit
//! **decision point**: a `(kind, fan-out)` pair resolved to a choice index.
//! Choice `0` is always the default — the behaviour the unhooked simulator
//! exhibits — so the all-zeros schedule reproduces the baseline run
//! bit-exactly, and any schedule can be serialised as a plain `Vec<u32>`
//! prefix over the decision stream (`chats-check` builds on exactly that).
//!
//! This module only defines the vocabulary; the machine model decides where
//! decision points live and what each choice means (see DESIGN.md §10).

use std::fmt;

/// The category of a decision point. The explorer uses kinds to aim
/// perturbations (e.g. "delay every validation" targets
/// [`DecisionKind::ValidationPacing`] only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecisionKind {
    /// Which of several events tied at the current cycle is delivered next.
    /// Fan-out: the tie width. Choice 0 = FIFO order (the default).
    TieBreak,
    /// How an owner-side conflict is resolved: follow the policy, force a
    /// NACK, or force requester-wins. Choice 0 = follow the policy.
    ConflictAction,
    /// How soon the next validation probe fires: on schedule, delayed, or
    /// immediately. Choice 0 = the configured interval.
    ValidationPacing,
    /// Whether a commit-ready transaction retires now or defers, letting
    /// later chain links race it. Choice 0 = commit now.
    CommitRelease,
}

impl DecisionKind {
    /// Every kind, in a stable serialisation order.
    pub const ALL: [DecisionKind; 4] = [
        DecisionKind::TieBreak,
        DecisionKind::ConflictAction,
        DecisionKind::ValidationPacing,
        DecisionKind::CommitRelease,
    ];

    /// Stable machine-readable name (used in reproducer JSON).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            DecisionKind::TieBreak => "tie_break",
            DecisionKind::ConflictAction => "conflict_action",
            DecisionKind::ValidationPacing => "validation_pacing",
            DecisionKind::CommitRelease => "commit_release",
        }
    }

    /// Inverse of [`DecisionKind::as_str`].
    #[must_use]
    pub fn parse(s: &str) -> Option<DecisionKind> {
        DecisionKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

impl fmt::Display for DecisionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One decision point as presented to a schedule hook, before it is
/// resolved: where in the stream it sits, what category it is, and which
/// core it concerns (if any).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionPoint {
    /// Position in the run's decision stream (0-based, dense).
    pub index: u64,
    /// The decision category.
    pub kind: DecisionKind,
    /// The core the decision concerns, when one is identifiable.
    /// `None` for global decisions such as event tie-breaks.
    pub core: Option<usize>,
}

/// One resolved decision, as recorded in a schedule trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionRecord {
    /// The decision category.
    pub kind: DecisionKind,
    /// How many legal choices existed (`chosen < choices`).
    pub choices: u32,
    /// The choice taken; 0 is always the default behaviour.
    pub chosen: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for k in DecisionKind::ALL {
            assert_eq!(DecisionKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(DecisionKind::parse("nonsense"), None);
    }

    #[test]
    fn kind_names_are_distinct() {
        let mut names: Vec<_> = DecisionKind::ALL.iter().map(|k| k.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), DecisionKind::ALL.len());
    }

    #[test]
    fn display_matches_as_str() {
        assert_eq!(DecisionKind::TieBreak.to_string(), "tie_break");
    }
}
