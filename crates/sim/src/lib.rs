#![warn(missing_docs)]

//! Deterministic discrete-event simulation engine.
//!
//! This crate provides the timing substrate that every other component of the
//! CHATS simulator is built on:
//!
//! * [`Cycle`] — a strongly-typed simulation timestamp,
//! * [`EventQueue`] — a priority queue of events with *stable* tie-breaking,
//!   so that two runs with the same seed produce bit-identical schedules,
//! * [`SimRng`] — a small, seedable random-number generator wrapper,
//! * [`schedule`] — the decision-point vocabulary schedule exploration
//!   (`chats-check`) uses to perturb and replay interleavings,
//! * [`config`] — the Table-I style machine description shared by the
//!   memory hierarchy, interconnect and core models.
//!
//! # Example
//!
//! ```
//! use chats_sim::{Cycle, EventQueue};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(Cycle(10), "late");
//! q.push(Cycle(5), "early");
//! q.push(Cycle(5), "early-too, but pushed second");
//!
//! let (t, e) = q.pop().unwrap();
//! assert_eq!((t, e), (Cycle(5), "early"));
//! ```

pub mod config;
pub mod event;
pub mod rng;
pub mod schedule;

pub use config::{CoreConfig, MemoryConfig, NocConfig, SystemConfig};
#[doc(hidden)]
pub use event::ReferenceEventQueue;
pub use event::{Cycle, EventQueue};
pub use rng::SimRng;
pub use schedule::{DecisionKind, DecisionPoint, DecisionRecord};
