//! Simulation time and the deterministic event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in core clock cycles.
///
/// `Cycle` is a transparent wrapper over `u64` used everywhere a timestamp or
/// duration is exchanged, so that cycle counts cannot be accidentally mixed
/// with other integers (entry counts, addresses, ...).
///
/// # Example
///
/// ```
/// use chats_sim::Cycle;
/// let start = Cycle(100);
/// assert_eq!(start + 30, Cycle(130));
/// assert_eq!((Cycle(130) - start), 30);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Cycle(pub u64);

impl Cycle {
    /// Time zero; the instant simulation starts.
    pub const ZERO: Cycle = Cycle(0);

    /// Returns the later of two instants.
    #[must_use]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    #[must_use]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Cycles elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    #[must_use]
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Debug for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

/// A discrete-event priority queue with deterministic FIFO tie-breaking.
///
/// Events scheduled for the same [`Cycle`] are delivered in the order they
/// were pushed. This makes whole-machine simulations reproducible: with a
/// fixed seed, every run produces an identical event schedule.
///
/// # Example
///
/// ```
/// use chats_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle(3), 'b');
/// q.push(Cycle(1), 'a');
/// q.push(Cycle(3), 'c');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` for delivery at `at`.
    pub fn push(&mut self, at: Cycle, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty. Ties are broken by insertion order.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of events tied at the earliest timestamp (0 when empty).
    ///
    /// This is an O(n) scan, intended for schedule exploration where a
    /// tie-break decision point only exists when more than one event is
    /// deliverable "now". The simulation fast path never calls it.
    pub fn tie_width(&self) -> usize {
        match self.heap.peek() {
            None => 0,
            Some(Reverse(first)) => {
                let at = first.at;
                self.heap.iter().filter(|Reverse(e)| e.at == at).count()
            }
        }
    }

    /// Removes and returns the `k`-th event (in FIFO order) among those tied
    /// at the earliest timestamp; `k` is clamped to the tie width, and
    /// `pop_tied(0)` is exactly [`EventQueue::pop`].
    ///
    /// The events skipped over keep their original sequence numbers, so the
    /// relative FIFO order of everything left in the queue is unchanged —
    /// a perturbed schedule differs from the default one *only* in the
    /// chosen delivery, never in collateral reordering.
    pub fn pop_tied(&mut self, k: usize) -> Option<(Cycle, E)> {
        if k == 0 {
            return self.pop();
        }
        let at = self.peek_time()?;
        let mut tied = Vec::new();
        while self.heap.peek().map(|Reverse(e)| e.at) == Some(at) {
            tied.push(self.heap.pop().expect("peeked entry vanished").0);
        }
        let chosen = tied.remove(k.min(tied.len() - 1));
        for e in tied {
            self.heap.push(Reverse(e));
        }
        Some((chosen.at, chosen.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let c = Cycle(7);
        assert_eq!(c + 3, Cycle(10));
        assert_eq!(Cycle(10) - c, 3);
        let mut m = Cycle(1);
        m += 4;
        assert_eq!(m, Cycle(5));
    }

    #[test]
    fn cycle_since_saturates() {
        assert_eq!(Cycle(5).since(Cycle(9)), 0);
        assert_eq!(Cycle(9).since(Cycle(5)), 4);
    }

    #[test]
    fn cycle_min_max() {
        assert_eq!(Cycle(3).max(Cycle(8)), Cycle(8));
        assert_eq!(Cycle(3).min(Cycle(8)), Cycle(3));
    }

    #[test]
    fn queue_orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Cycle(30), 3);
        q.push(Cycle(10), 1);
        q.push(Cycle(20), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(20), 2)));
        assert_eq!(q.pop(), Some((Cycle(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(42), i)));
        }
    }

    #[test]
    fn queue_peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Cycle(9), ());
        q.push(Cycle(4), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycle(4)));
        q.pop();
        assert_eq!(q.peek_time(), Some(Cycle(9)));
    }

    #[test]
    fn tie_width_counts_earliest_only() {
        let mut q = EventQueue::new();
        assert_eq!(q.tie_width(), 0);
        q.push(Cycle(5), 'a');
        q.push(Cycle(5), 'b');
        q.push(Cycle(9), 'c');
        assert_eq!(q.tie_width(), 2);
        q.pop();
        q.pop();
        assert_eq!(q.tie_width(), 1);
    }

    #[test]
    fn pop_tied_selects_kth_and_preserves_fifo() {
        let mut q = EventQueue::new();
        for (i, e) in ['a', 'b', 'c', 'd'].into_iter().enumerate() {
            q.push(Cycle(if e == 'd' { 8 } else { 3 }), (i, e));
        }
        // Pick 'c' (k = 2) out of the Cycle(3) tie; 'a' and 'b' keep order.
        assert_eq!(q.pop_tied(2), Some((Cycle(3), (2, 'c'))));
        assert_eq!(q.pop(), Some((Cycle(3), (0, 'a'))));
        assert_eq!(q.pop(), Some((Cycle(3), (1, 'b'))));
        assert_eq!(q.pop(), Some((Cycle(8), (3, 'd'))));
    }

    #[test]
    fn pop_tied_clamps_out_of_range_k() {
        let mut q = EventQueue::new();
        q.push(Cycle(1), 'x');
        q.push(Cycle(1), 'y');
        assert_eq!(q.pop_tied(99), Some((Cycle(1), 'y')));
        assert_eq!(q.pop_tied(99), Some((Cycle(1), 'x')));
        assert_eq!(q.pop_tied(0), None);
    }

    #[test]
    fn pop_tied_zero_matches_pop() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        for i in 0..20 {
            a.push(Cycle(i / 3), i);
            b.push(Cycle(i / 3), i);
        }
        while let Some(x) = a.pop() {
            assert_eq!(Some(x), b.pop_tied(0));
        }
        assert_eq!(b.pop_tied(0), None);
    }

    #[test]
    fn queue_interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Cycle(5), "a");
        q.push(Cycle(1), "b");
        assert_eq!(q.pop(), Some((Cycle(1), "b")));
        q.push(Cycle(2), "c");
        q.push(Cycle(5), "d");
        assert_eq!(q.pop(), Some((Cycle(2), "c")));
        assert_eq!(q.pop(), Some((Cycle(5), "a")));
        assert_eq!(q.pop(), Some((Cycle(5), "d")));
    }
}
