//! Simulation time and the deterministic event queue.
//!
//! The queue here is the single hottest data structure in the simulator:
//! every message hop, core step and retry timer goes through one
//! push/pop pair. It is implemented as a *timing wheel* (a bucketed
//! calendar queue): a ring of [`WHEEL_SLOTS`] FIFO buckets covering a
//! sliding window of near-future cycles, with a `BTreeMap` spillover for
//! events beyond the window. Almost every event in this machine is
//! scheduled a handful of cycles ahead (cache hops, NoC latencies,
//! retry backoffs), so the common push and pop are O(1) with no
//! comparisons, no per-entry sequence numbers, and no heap rebalancing.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in core clock cycles.
///
/// `Cycle` is a transparent wrapper over `u64` used everywhere a timestamp or
/// duration is exchanged, so that cycle counts cannot be accidentally mixed
/// with other integers (entry counts, addresses, ...).
///
/// # Example
///
/// ```
/// use chats_sim::Cycle;
/// let start = Cycle(100);
/// assert_eq!(start + 30, Cycle(130));
/// assert_eq!((Cycle(130) - start), 30);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Cycle(pub u64);

impl Cycle {
    /// Time zero; the instant simulation starts.
    pub const ZERO: Cycle = Cycle(0);

    /// Returns the later of two instants.
    #[must_use]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    #[must_use]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// Cycles elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    #[must_use]
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Debug for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl chats_snap::Snap for Cycle {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        w.u64(self.0);
    }

    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        Ok(Cycle(r.u64()?))
    }
}

/// Slots in the wheel window. Power of two, so a timestamp maps to its
/// slot with a mask instead of a modulo. 1024 covers every latency in
/// the Table-I machine (the longest single hop plus backoff is far under
/// a thousand cycles), so spillover is rare.
const WHEEL_SLOTS: usize = 1024;
const WHEEL_MASK: u64 = WHEEL_SLOTS as u64 - 1;
/// Empty spillover buckets kept for reuse instead of returning their
/// allocation; bounds the freelist so a burst cannot pin memory forever.
const SPARE_BUCKETS: usize = 32;

/// A discrete-event priority queue with deterministic FIFO tie-breaking.
///
/// Events scheduled for the same [`Cycle`] are delivered in the order they
/// were pushed. This makes whole-machine simulations reproducible: with a
/// fixed seed, every run produces an identical event schedule.
///
/// Internally a timing wheel: a ring of FIFO buckets covering the cycles
/// `[wheel_base, wheel_base + WHEEL_SLOTS)`, plus a sorted spillover map
/// for timestamps outside that window. Same-time events always land in
/// the *same* bucket, so bucket order **is** FIFO order — no sequence
/// numbers needed — and the tie set at the head of the queue is simply
/// the front bucket, which makes [`EventQueue::tie_width`] O(1) and
/// [`EventQueue::pop_tied`] O(tie width) instead of the pop-all-and-push-
/// back scan a heap would force.
///
/// # Example
///
/// ```
/// use chats_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle(3), 'b');
/// q.push(Cycle(1), 'a');
/// q.push(Cycle(3), 'c');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// The wheel. `slots[t & WHEEL_MASK]` holds the events for cycle `t`
    /// for every `t` in the window; a slot's events all share one
    /// timestamp because the window is exactly one wheel circumference.
    slots: Vec<VecDeque<E>>,
    /// Events outside the window: pushed beyond `wheel_base +
    /// WHEEL_SLOTS`, or (rare) pushed into the past behind `cursor`.
    overflow: BTreeMap<u64, VecDeque<E>>,
    /// Recycled empty spillover buckets.
    spare: Vec<VecDeque<E>>,
    /// First cycle the wheel window covers.
    wheel_base: u64,
    /// Next cycle to examine; slots for cycles in `[wheel_base, cursor)`
    /// are drained. Always within the window.
    cursor: u64,
    /// Events currently stored in `slots`.
    wheel_len: usize,
    /// Total events (wheel + overflow).
    len: usize,
}

/// Where the head of the queue currently lives.
#[derive(Clone, Copy)]
enum Head {
    /// In the wheel slot for this cycle.
    Slot(u64),
    /// In the overflow bucket keyed by this cycle.
    Spill(u64),
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: (0..WHEEL_SLOTS).map(|_| VecDeque::new()).collect(),
            overflow: BTreeMap::new(),
            spare: Vec::new(),
            wheel_base: 0,
            cursor: 0,
            wheel_len: 0,
            len: 0,
        }
    }

    /// One past the last cycle the wheel window covers.
    fn wheel_end(&self) -> u64 {
        self.wheel_base.saturating_add(WHEEL_SLOTS as u64)
    }

    /// Schedules `event` for delivery at `at`.
    pub fn push(&mut self, at: Cycle, event: E) {
        let t = at.0;
        self.len += 1;
        if t >= self.cursor && t < self.wheel_end() {
            self.slots[(t & WHEEL_MASK) as usize].push_back(event);
            self.wheel_len += 1;
        } else {
            self.overflow
                .entry(t)
                .or_insert_with(|| self.spare.pop().unwrap_or_default())
                .push_back(event);
        }
    }

    /// Locates the head of the queue without mutating anything.
    ///
    /// Invariant used throughout: overflow keys are either behind the
    /// cursor (late pushes into the past) or at/after the window end —
    /// never inside the un-drained part of the window — so a non-empty
    /// wheel always beats an at-or-after-window spill key.
    fn head(&self) -> Option<Head> {
        if self.len == 0 {
            return None;
        }
        if let Some((&k, _)) = self.overflow.iter().next() {
            if k < self.cursor || self.wheel_len == 0 {
                return Some(Head::Spill(k));
            }
        }
        debug_assert!(self.wheel_len > 0);
        let mut t = self.cursor;
        loop {
            debug_assert!(t < self.wheel_end(), "wheel scan escaped the window");
            if !self.slots[(t & WHEEL_MASK) as usize].is_empty() {
                return Some(Head::Slot(t));
            }
            t += 1;
        }
    }

    /// Rebases the empty wheel onto `base` and migrates every spill
    /// bucket that now falls inside the window into its slot.
    fn rebase(&mut self, base: u64) {
        debug_assert_eq!(self.wheel_len, 0);
        self.wheel_base = base;
        self.cursor = base;
        let rest = self.overflow.split_off(&self.wheel_end());
        let moved = std::mem::replace(&mut self.overflow, rest);
        for (t, mut bucket) in moved {
            self.wheel_len += bucket.len();
            std::mem::swap(&mut self.slots[(t & WHEEL_MASK) as usize], &mut bucket);
            // `bucket` is now the slot's previous (empty) deque.
            if self.spare.len() < SPARE_BUCKETS {
                self.spare.push(bucket);
            }
        }
    }

    /// Pops the front event of the overflow bucket at `k`, recycling the
    /// bucket when it empties.
    fn pop_spill(&mut self, k: u64) -> (Cycle, E) {
        let bucket = self.overflow.get_mut(&k).expect("head bucket exists");
        let e = bucket.pop_front().expect("head bucket non-empty");
        if bucket.is_empty() {
            let bucket = self.overflow.remove(&k).expect("bucket present");
            if self.spare.len() < SPARE_BUCKETS {
                self.spare.push(bucket);
            }
        }
        self.len -= 1;
        (Cycle(k), e)
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty. Ties are broken by insertion order.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        match self.head()? {
            Head::Spill(k) => {
                if k >= self.cursor && k != u64::MAX {
                    // The wheel is empty and all spill keys are at or
                    // beyond the window: jump the window forward so this
                    // bucket (and its near successors) pop from slots.
                    self.rebase(k);
                    self.pop_from_slot(k)
                } else {
                    Some(self.pop_spill(k))
                }
            }
            Head::Slot(t) => self.pop_from_slot(t),
        }
    }

    fn pop_from_slot(&mut self, t: u64) -> Option<(Cycle, E)> {
        self.cursor = t;
        let e = self.slots[(t & WHEEL_MASK) as usize]
            .pop_front()
            .expect("head slot non-empty");
        self.wheel_len -= 1;
        self.len -= 1;
        Some((Cycle(t), e))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.head().map(|h| match h {
            Head::Slot(t) | Head::Spill(t) => Cycle(t),
        })
    }

    /// Number of events tied at the earliest timestamp (0 when empty).
    ///
    /// Same-time events always share one bucket, so this is the length
    /// of the head bucket — O(1) after locating the head, which is what
    /// lets schedule exploration probe every dispatch for a tie-break
    /// decision point without slowing the simulation down.
    pub fn tie_width(&self) -> usize {
        match self.head() {
            None => 0,
            Some(Head::Slot(t)) => self.slots[(t & WHEEL_MASK) as usize].len(),
            Some(Head::Spill(k)) => self.overflow[&k].len(),
        }
    }

    /// Removes and returns the `k`-th event (in FIFO order) among those tied
    /// at the earliest timestamp; `k` is clamped to the tie width, and
    /// `pop_tied(0)` is exactly [`EventQueue::pop`].
    ///
    /// The events skipped over stay in place in the head bucket, so the
    /// relative FIFO order of everything left in the queue is unchanged —
    /// a perturbed schedule differs from the default one *only* in the
    /// chosen delivery, never in collateral reordering.
    pub fn pop_tied(&mut self, k: usize) -> Option<(Cycle, E)> {
        if k == 0 {
            return self.pop();
        }
        let (t, in_wheel) = match self.head()? {
            Head::Slot(t) => (t, true),
            Head::Spill(t) => (t, false),
        };
        let bucket = if in_wheel {
            self.cursor = t;
            &mut self.slots[(t & WHEEL_MASK) as usize]
        } else {
            self.overflow.get_mut(&t).expect("head bucket exists")
        };
        let e = bucket
            .remove(k.min(bucket.len() - 1))
            .expect("clamped index in range");
        let emptied = bucket.is_empty();
        if in_wheel {
            self.wheel_len -= 1;
        } else if emptied {
            let bucket = self.overflow.remove(&t).expect("bucket present");
            if self.spare.len() < SPARE_BUCKETS {
                self.spare.push(bucket);
            }
        }
        self.len -= 1;
        Some((Cycle(t), e))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Every pending event in exact delivery order — time ascending, FIFO
    /// within a timestamp — without disturbing the queue. Re-pushing the
    /// returned sequence into a fresh queue reproduces the same delivery
    /// order, which is how checkpoints serialize the queue (delivery
    /// order is the queue's only observable state; wheel geometry is
    /// not).
    #[must_use]
    pub fn ordered(&self) -> Vec<(Cycle, &E)> {
        let mut out = Vec::with_capacity(self.len);
        // Spill keys are either behind the cursor (late pushes into the
        // past) or at/after the window end, never inside the un-drained
        // window — so past-spill ++ wheel ++ future-spill is sorted.
        for (&t, bucket) in self.overflow.range(..self.cursor) {
            out.extend(bucket.iter().map(|e| (Cycle(t), e)));
        }
        if self.wheel_len > 0 {
            for t in self.cursor..self.wheel_end() {
                let slot = &self.slots[(t & WHEEL_MASK) as usize];
                out.extend(slot.iter().map(|e| (Cycle(t), e)));
            }
        }
        for (&t, bucket) in self.overflow.range(self.cursor..) {
            out.extend(bucket.iter().map(|e| (Cycle(t), e)));
        }
        debug_assert_eq!(out.len(), self.len, "ordered() missed events");
        out
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// The pre-timing-wheel event queue: a binary heap of `(time, seq)`
/// entries. Kept as the executable specification of the delivery order —
/// `tests/prop_queue_equiv.rs` drives it in lockstep with [`EventQueue`]
/// on arbitrary operation sequences. Not used by the simulator.
#[doc(hidden)]
#[derive(Debug, Clone)]
pub struct ReferenceEventQueue<E> {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<RefEntry<E>>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct RefEntry<E> {
    at: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for RefEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for RefEntry<E> {}
impl<E> PartialOrd for RefEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for RefEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[allow(missing_docs)]
impl<E> ReferenceEventQueue<E> {
    pub fn new() -> Self {
        ReferenceEventQueue {
            heap: std::collections::BinaryHeap::new(),
            seq: 0,
        }
    }

    pub fn push(&mut self, at: Cycle, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap
            .push(std::cmp::Reverse(RefEntry { at, seq, event }));
    }

    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|std::cmp::Reverse(e)| (e.at, e.event))
    }

    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|std::cmp::Reverse(e)| e.at)
    }

    pub fn tie_width(&self) -> usize {
        match self.heap.peek() {
            None => 0,
            Some(std::cmp::Reverse(first)) => {
                let at = first.at;
                self.heap
                    .iter()
                    .filter(|std::cmp::Reverse(e)| e.at == at)
                    .count()
            }
        }
    }

    pub fn pop_tied(&mut self, k: usize) -> Option<(Cycle, E)> {
        if k == 0 {
            return self.pop();
        }
        let at = self.peek_time()?;
        let mut tied = Vec::new();
        while self.heap.peek().map(|std::cmp::Reverse(e)| e.at) == Some(at) {
            tied.push(self.heap.pop().expect("peeked entry vanished").0);
        }
        let chosen = tied.remove(k.min(tied.len() - 1));
        for e in tied {
            self.heap.push(std::cmp::Reverse(e));
        }
        Some((chosen.at, chosen.event))
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for ReferenceEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let c = Cycle(7);
        assert_eq!(c + 3, Cycle(10));
        assert_eq!(Cycle(10) - c, 3);
        let mut m = Cycle(1);
        m += 4;
        assert_eq!(m, Cycle(5));
    }

    #[test]
    fn cycle_since_saturates() {
        assert_eq!(Cycle(5).since(Cycle(9)), 0);
        assert_eq!(Cycle(9).since(Cycle(5)), 4);
    }

    #[test]
    fn cycle_min_max() {
        assert_eq!(Cycle(3).max(Cycle(8)), Cycle(8));
        assert_eq!(Cycle(3).min(Cycle(8)), Cycle(3));
    }

    #[test]
    fn queue_orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Cycle(30), 3);
        q.push(Cycle(10), 1);
        q.push(Cycle(20), 2);
        assert_eq!(q.pop(), Some((Cycle(10), 1)));
        assert_eq!(q.pop(), Some((Cycle(20), 2)));
        assert_eq!(q.pop(), Some((Cycle(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle(42), i)));
        }
    }

    #[test]
    fn queue_peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Cycle(9), ());
        q.push(Cycle(4), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycle(4)));
        q.pop();
        assert_eq!(q.peek_time(), Some(Cycle(9)));
    }

    #[test]
    fn tie_width_counts_earliest_only() {
        let mut q = EventQueue::new();
        assert_eq!(q.tie_width(), 0);
        q.push(Cycle(5), 'a');
        q.push(Cycle(5), 'b');
        q.push(Cycle(9), 'c');
        assert_eq!(q.tie_width(), 2);
        q.pop();
        q.pop();
        assert_eq!(q.tie_width(), 1);
    }

    #[test]
    fn pop_tied_selects_kth_and_preserves_fifo() {
        let mut q = EventQueue::new();
        for (i, e) in ['a', 'b', 'c', 'd'].into_iter().enumerate() {
            q.push(Cycle(if e == 'd' { 8 } else { 3 }), (i, e));
        }
        // Pick 'c' (k = 2) out of the Cycle(3) tie; 'a' and 'b' keep order.
        assert_eq!(q.pop_tied(2), Some((Cycle(3), (2, 'c'))));
        assert_eq!(q.pop(), Some((Cycle(3), (0, 'a'))));
        assert_eq!(q.pop(), Some((Cycle(3), (1, 'b'))));
        assert_eq!(q.pop(), Some((Cycle(8), (3, 'd'))));
    }

    #[test]
    fn pop_tied_clamps_out_of_range_k() {
        let mut q = EventQueue::new();
        q.push(Cycle(1), 'x');
        q.push(Cycle(1), 'y');
        assert_eq!(q.pop_tied(99), Some((Cycle(1), 'y')));
        assert_eq!(q.pop_tied(99), Some((Cycle(1), 'x')));
        assert_eq!(q.pop_tied(0), None);
    }

    #[test]
    fn pop_tied_zero_matches_pop() {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        for i in 0..20 {
            a.push(Cycle(i / 3), i);
            b.push(Cycle(i / 3), i);
        }
        while let Some(x) = a.pop() {
            assert_eq!(Some(x), b.pop_tied(0));
        }
        assert_eq!(b.pop_tied(0), None);
    }

    #[test]
    fn queue_interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Cycle(5), "a");
        q.push(Cycle(1), "b");
        assert_eq!(q.pop(), Some((Cycle(1), "b")));
        q.push(Cycle(2), "c");
        q.push(Cycle(5), "d");
        assert_eq!(q.pop(), Some((Cycle(2), "c")));
        assert_eq!(q.pop(), Some((Cycle(5), "a")));
        assert_eq!(q.pop(), Some((Cycle(5), "d")));
    }

    // Timing-wheel specific coverage: window jumps, past pushes, and the
    // window edge — cases a heap never distinguishes but a wheel must.

    #[test]
    fn far_future_events_spill_and_return() {
        let mut q = EventQueue::new();
        let far = WHEEL_SLOTS as u64 * 10;
        q.push(Cycle(far + 1), 'b');
        q.push(Cycle(far), 'a');
        q.push(Cycle(3), 'x');
        assert_eq!(q.pop(), Some((Cycle(3), 'x')));
        // The wheel is now empty; popping rebases the window onto `far`.
        assert_eq!(q.pop(), Some((Cycle(far), 'a')));
        assert_eq!(q.pop(), Some((Cycle(far + 1), 'b')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_future_ties_stay_fifo_through_rebase() {
        let mut q = EventQueue::new();
        let far = 5 * WHEEL_SLOTS as u64 + 7;
        for i in 0..10 {
            q.push(Cycle(far), i);
        }
        assert_eq!(q.tie_width(), 10);
        for i in 0..10 {
            assert_eq!(q.pop(), Some((Cycle(far), i)));
        }
    }

    #[test]
    fn pushes_into_the_past_are_delivered_first() {
        let mut q = EventQueue::new();
        q.push(Cycle(100), "now");
        assert_eq!(q.pop(), Some((Cycle(100), "now")));
        // Time has advanced to 100; push behind it.
        q.push(Cycle(40), "late-a");
        q.push(Cycle(40), "late-b");
        q.push(Cycle(100), "next");
        assert_eq!(q.tie_width(), 2);
        assert_eq!(q.pop(), Some((Cycle(40), "late-a")));
        assert_eq!(q.pop(), Some((Cycle(40), "late-b")));
        assert_eq!(q.pop(), Some((Cycle(100), "next")));
    }

    #[test]
    fn window_edge_times_are_ordered() {
        let mut q = EventQueue::new();
        let w = WHEEL_SLOTS as u64;
        // Straddle the initial window boundary: w-1 in the wheel, w and
        // w+1 in the spillover, all mapping near the same slot indices.
        q.push(Cycle(w + 1), 4);
        q.push(Cycle(w - 1), 1);
        q.push(Cycle(w), 2);
        q.push(Cycle(w), 3);
        assert_eq!(q.pop(), Some((Cycle(w - 1), 1)));
        assert_eq!(q.pop(), Some((Cycle(w), 2)));
        assert_eq!(q.pop(), Some((Cycle(w), 3)));
        assert_eq!(q.pop(), Some((Cycle(w + 1), 4)));
    }

    #[test]
    fn max_timestamp_is_representable() {
        let mut q = EventQueue::new();
        q.push(Cycle(u64::MAX), 'z');
        q.push(Cycle(u64::MAX - 1), 'y');
        q.push(Cycle(0), 'a');
        assert_eq!(q.pop(), Some((Cycle(0), 'a')));
        assert_eq!(q.pop(), Some((Cycle(u64::MAX - 1), 'y')));
        assert_eq!(q.pop(), Some((Cycle(u64::MAX), 'z')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ordered_matches_pop_order() {
        let mut q = EventQueue::new();
        q.push(Cycle(100), 0);
        assert_eq!(q.pop(), Some((Cycle(100), 0)));
        // Past push, window ties, and far-future spill all at once.
        q.push(Cycle(40), 1);
        q.push(Cycle(100), 2);
        q.push(Cycle(100), 3);
        q.push(Cycle(100 + 10 * WHEEL_SLOTS as u64), 4);
        q.push(Cycle(40), 5);
        let snap: Vec<(Cycle, i32)> = q.ordered().into_iter().map(|(t, &e)| (t, e)).collect();
        let mut popped = Vec::new();
        while let Some(x) = q.pop() {
            popped.push(x);
        }
        assert_eq!(snap, popped);
        // Re-pushing the snapshot reproduces the same delivery order.
        let mut fresh = EventQueue::new();
        for &(t, e) in &snap {
            fresh.push(t, e);
        }
        let replay: Vec<(Cycle, i32)> = std::iter::from_fn(|| fresh.pop()).collect();
        assert_eq!(replay, popped);
    }

    #[test]
    fn reference_queue_matches_on_a_mixed_workout() {
        let mut wheel = EventQueue::new();
        let mut refq = ReferenceEventQueue::new();
        // Deterministic pseudo-random mix of near, far and tied pushes
        // interleaved with pops (an xorshift so no RNG dep is needed).
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut t = 0u64;
        for i in 0..5_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let delay = match x % 10 {
                0..=5 => x % 8,          // heavy tie pressure
                6..=8 => x % 200,        // typical latencies
                _ => 2_000 + x % 10_000, // far future (spillover)
            };
            wheel.push(Cycle(t + delay), i);
            refq.push(Cycle(t + delay), i);
            if x.is_multiple_of(3) {
                assert_eq!(wheel.tie_width(), refq.tie_width());
                let a = wheel.pop();
                assert_eq!(a, refq.pop());
                if let Some((at, _)) = a {
                    t = at.0;
                }
            }
        }
        loop {
            assert_eq!(wheel.peek_time(), refq.peek_time());
            let a = wheel.pop();
            assert_eq!(a, refq.pop());
            if a.is_none() {
                break;
            }
        }
    }
}
