//! Machine description (the Table I of the paper).
//!
//! A [`SystemConfig`] fully describes the simulated hardware: core count,
//! cache geometry, latencies and interconnect parameters. Defaults resemble
//! the 16-core Golden-Cove-like system of the paper; the private L2/L3 and
//! DRAM are folded into a shared directory/LLC level plus a memory latency
//! (see DESIGN.md §3 for the substitution argument).

/// Core front-end parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CoreConfig {
    /// Number of simulated cores (one hardware thread each).
    pub cores: usize,
    /// Cycles charged per non-memory TxVM instruction.
    pub cycles_per_op: u64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            cores: 16,
            cycles_per_op: 1,
        }
    }
}

/// Cache and memory hierarchy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemoryConfig {
    /// L1 data cache sets.
    pub l1_sets: usize,
    /// L1 data cache associativity (ways per set).
    pub l1_ways: usize,
    /// L1 hit latency in cycles.
    pub l1_hit_latency: u64,
    /// Shared directory/LLC access latency in cycles (stands in for the
    /// paper's 30-cycle L3 round trip).
    pub dir_latency: u64,
    /// Main memory latency added on a directory miss.
    pub mem_latency: u64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            // 48 KiB / 12-way / 64 B lines => 64 sets.
            l1_sets: 64,
            l1_ways: 12,
            l1_hit_latency: 1,
            dir_latency: 30,
            mem_latency: 100,
        }
    }
}

/// Crossbar interconnect parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NocConfig {
    /// Per-hop link latency in cycles.
    pub link_latency: u64,
    /// Flits in a control message.
    pub control_flits: u64,
    /// Flits in a data-bearing message (64 B line / 16 B flits + header).
    pub data_flits: u64,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            link_latency: 1,
            control_flits: 1,
            data_flits: 5,
        }
    }
}

/// Complete machine description.
///
/// # Example
///
/// ```
/// use chats_sim::SystemConfig;
/// let sys = SystemConfig::default();
/// assert_eq!(sys.core.cores, 16);
/// assert_eq!(sys.noc.data_flits, 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SystemConfig {
    /// Core parameters.
    pub core: CoreConfig,
    /// Memory hierarchy parameters.
    pub mem: MemoryConfig,
    /// Interconnect parameters.
    pub noc: NocConfig,
}

impl SystemConfig {
    /// A scaled-down machine for fast unit tests: 4 cores, small L1.
    pub fn small_test() -> Self {
        SystemConfig {
            core: CoreConfig {
                cores: 4,
                cycles_per_op: 1,
            },
            mem: MemoryConfig {
                l1_sets: 16,
                l1_ways: 4,
                l1_hit_latency: 1,
                dir_latency: 10,
                mem_latency: 30,
            },
            noc: NocConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_one() {
        let s = SystemConfig::default();
        assert_eq!(s.core.cores, 16);
        assert_eq!(s.mem.l1_sets * s.mem.l1_ways * 64, 48 * 1024);
        assert_eq!(s.mem.dir_latency, 30);
        assert_eq!(s.noc.control_flits, 1);
        assert_eq!(s.noc.data_flits, 5);
        assert_eq!(s.noc.link_latency, 1);
    }

    #[test]
    fn small_test_is_smaller() {
        let s = SystemConfig::small_test();
        assert!(s.core.cores < SystemConfig::default().core.cores);
        assert!(s.mem.l1_sets < SystemConfig::default().mem.l1_sets);
    }

    #[test]
    fn config_round_trips_through_serde() {
        let s = SystemConfig::default();
        let json = serde_json_like(&s);
        assert!(json.contains("cores"));
    }

    // serde_json is not a dependency; exercise Serialize via the debug of a
    // manual round-trip through the derived trait using `serde`'s test
    // helper pattern: serialize to a string with `format!` on Debug instead.
    fn serde_json_like(s: &SystemConfig) -> String {
        format!("{s:?}")
    }
}
