//! Shared measurement harness with per-process memoization.

use chats_core::{HtmSystem, PolicyConfig};
use chats_stats::RunStats;
use chats_workloads::{registry, run_workload, RunConfig, Workload};
use std::collections::HashMap;
use std::sync::Mutex;

/// Experiment scale: the paper-like configuration or a fast CI-friendly
/// one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// 16 cores, full Table I geometry.
    Paper,
    /// 4 cores, shrunken caches; for tests and quick sweeps.
    Quick,
}

impl Scale {
    /// The matching run configuration.
    #[must_use]
    pub fn run_config(self) -> RunConfig {
        match self {
            Scale::Paper => RunConfig::paper(),
            Scale::Quick => RunConfig::quick_test(),
        }
    }
}

/// A memoizing measurement harness: identical (workload, policy) cells are
/// simulated once per process.
pub struct Harness {
    scale: Scale,
    cache: Mutex<HashMap<String, RunStats>>,
}

impl Harness {
    /// A harness at the given scale.
    #[must_use]
    pub fn new(scale: Scale) -> Harness {
        Harness {
            scale,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The scale in use.
    #[must_use]
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Runs (or recalls) `workload` under `policy` and returns its stats.
    ///
    /// # Panics
    ///
    /// Panics if the simulation times out or the workload's invariant
    /// checker reports an HTM correctness violation.
    pub fn measure(&self, workload: &dyn Workload, policy: PolicyConfig) -> RunStats {
        let key = format!("{}|{policy:?}", workload.name());
        if let Some(hit) = self.cache.lock().unwrap().get(&key) {
            return hit.clone();
        }
        let cfg = self.scale.run_config();
        let out = run_workload(workload, policy, &cfg).unwrap_or_else(|e| panic!("{e}"));
        self.cache
            .lock()
            .unwrap()
            .insert(key, out.stats.clone());
        out.stats
    }

    /// Convenience: measure a registry workload by name under a system's
    /// Table II configuration.
    pub fn measure_named(&self, name: &str, system: HtmSystem) -> RunStats {
        let w = registry::by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
        self.measure(w.as_ref(), PolicyConfig::for_system(system))
    }

    /// Baseline execution time for a workload (the normalization
    /// denominator used by every figure).
    pub fn baseline_cycles(&self, workload: &dyn Workload) -> f64 {
        self.measure(workload, PolicyConfig::for_system(HtmSystem::Baseline))
            .cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoization_returns_identical_stats() {
        let h = Harness::new(Scale::Quick);
        let w = registry::by_name("ssca2").unwrap();
        let a = h.measure(w.as_ref(), PolicyConfig::for_system(HtmSystem::Baseline));
        let b = h.measure(w.as_ref(), PolicyConfig::for_system(HtmSystem::Baseline));
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.flits, b.flits);
    }

    #[test]
    fn distinct_policies_are_distinct_cells() {
        let h = Harness::new(Scale::Quick);
        let w = registry::by_name("kmeans-h").unwrap();
        let a = h.measure(w.as_ref(), PolicyConfig::for_system(HtmSystem::Baseline));
        let b = h.measure(w.as_ref(), PolicyConfig::for_system(HtmSystem::Chats));
        // Different systems must at least differ in forwarding behaviour.
        assert_eq!(a.forwardings, 0);
        assert!(b.forwardings > 0);
    }
}
