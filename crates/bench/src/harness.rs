//! Shared measurement harness, backed by the `chats-runner` subsystem.
//!
//! Every measurement goes through a [`chats_runner::Runner`], which gives
//! the figure functions per-process memoization *and* the persistent disk
//! cache under `target/chats-cache/` — regenerating a figure after a
//! completed `chats-run` invocation touches no simulation at all. Use
//! [`Harness::warm`] to execute a whole grid on the worker pool before
//! reading individual cells serially.

use chats_core::{HtmSystem, PolicyConfig};
use chats_runner::{JobSet, JobSpec, RunReport, Runner, RunnerConfig};
use chats_stats::RunStats;
use chats_workloads::{registry, Workload};

pub use chats_runner::Scale;

/// A measurement harness: identical (workload, policy, config) cells are
/// simulated once and remembered, in-process and on disk.
pub struct Harness {
    scale: Scale,
    runner: Runner,
}

impl Harness {
    /// A harness at the given scale with a default-configured runner
    /// (disk cache on, per-job progress off).
    #[must_use]
    pub fn new(scale: Scale) -> Harness {
        Harness::with_runner(
            scale,
            Runner::new(RunnerConfig {
                quiet: true,
                ..RunnerConfig::default()
            }),
        )
    }

    /// A harness measuring through a caller-configured runner.
    #[must_use]
    pub fn with_runner(scale: Scale, runner: Runner) -> Harness {
        Harness { scale, runner }
    }

    /// The scale in use.
    #[must_use]
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The runner measurements go through.
    #[must_use]
    pub fn runner(&self) -> &Runner {
        &self.runner
    }

    /// Executes a whole job set on the runner's worker pool, populating
    /// the caches that subsequent [`Harness::measure`] calls read.
    /// Failures are not raised here — the failing cell panics with its
    /// message when a figure actually reads it.
    pub fn warm(&self, set: &JobSet) -> RunReport {
        self.runner.run_set(set)
    }

    /// The job a `measure` call would run for `workload` under `policy`.
    #[must_use]
    pub fn job(&self, workload: &dyn Workload, policy: PolicyConfig) -> JobSpec {
        JobSpec::new(workload.name(), policy, self.scale.run_config())
    }

    /// Runs (or recalls) `workload` under `policy` and returns its stats.
    ///
    /// # Panics
    ///
    /// Panics if the simulation times out or the workload's invariant
    /// checker reports an HTM correctness violation.
    pub fn measure(&self, workload: &dyn Workload, policy: PolicyConfig) -> RunStats {
        self.measure_spec(&self.job(workload, policy))
    }

    /// Runs (or recalls) an explicit job — for cells that deviate from
    /// the scale's default machine, e.g. thread-count scaling.
    ///
    /// # Panics
    ///
    /// Panics if the job fails (see [`Harness::measure`]).
    pub fn measure_spec(&self, spec: &JobSpec) -> RunStats {
        self.runner.run_one(spec).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Convenience: measure a registry workload by name under a system's
    /// Table II configuration.
    pub fn measure_named(&self, name: &str, system: HtmSystem) -> RunStats {
        let w = registry::by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
        self.measure(w.as_ref(), PolicyConfig::for_system(system))
    }

    /// Baseline execution time for a workload (the normalization
    /// denominator used by every figure).
    pub fn baseline_cycles(&self, workload: &dyn Workload) -> f64 {
        self.measure(workload, PolicyConfig::for_system(HtmSystem::Baseline))
            .cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chats_runner::JobSet;

    fn isolated(scale: Scale) -> Harness {
        // Tests must not read results another build left in the shared
        // disk cache, nor write into it.
        Harness::with_runner(
            scale,
            Runner::new(RunnerConfig {
                use_cache: false,
                quiet: true,
                ..RunnerConfig::default()
            }),
        )
    }

    #[test]
    fn memoization_returns_identical_stats() {
        let h = isolated(Scale::Quick);
        let w = registry::by_name("ssca2").unwrap();
        let a = h.measure(w.as_ref(), PolicyConfig::for_system(HtmSystem::Baseline));
        let b = h.measure(w.as_ref(), PolicyConfig::for_system(HtmSystem::Baseline));
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.flits, b.flits);
    }

    #[test]
    fn distinct_policies_are_distinct_cells() {
        let h = isolated(Scale::Quick);
        let w = registry::by_name("kmeans-h").unwrap();
        let a = h.measure(w.as_ref(), PolicyConfig::for_system(HtmSystem::Baseline));
        let b = h.measure(w.as_ref(), PolicyConfig::for_system(HtmSystem::Chats));
        // Different systems must at least differ in forwarding behaviour.
        assert_eq!(a.forwardings, 0);
        assert!(b.forwardings > 0);
    }

    #[test]
    fn warm_then_measure_hits_the_memo() {
        let h = isolated(Scale::Quick);
        let w = registry::by_name("cadd").unwrap();
        let policy = PolicyConfig::for_system(HtmSystem::Baseline);
        let mut set = JobSet::new();
        set.push(h.job(w.as_ref(), policy));
        let report = h.warm(&set);
        assert!(report.all_succeeded());
        let warmed = report
            .stats_for(&h.job(w.as_ref(), policy))
            .unwrap()
            .clone();
        assert_eq!(h.measure(w.as_ref(), policy), warmed);
    }
}
