//! What epoch state commitments cost the simulator.
//!
//! The commitment layer hashes the *complete* machine state at every
//! epoch boundary (see `chats_machine::commit`), so arming it puts a
//! periodic full-state walk on the hot path. This module measures that
//! cost directly: the same workload cell is run with commitments off and
//! with commitments armed at an interval, interleaved rep-for-rep on one
//! host, and the throughput loss is reported as a fraction.
//!
//! The contract the gate enforces: **at the default interval
//! ([`chats_machine::DEFAULT_COMMIT_INTERVAL`]) the overhead stays under
//! 5%** — cheap enough that long-running campaigns can leave commitments
//! armed permanently, which is what makes checkpoint verification and
//! divergence dissection free to deploy.

use crate::baseline::{measure_case, workload_mix, Case, CaseKind, Measurement};
use chats_core::PolicyConfig;
use chats_machine::{Machine, Tuning, DEFAULT_COMMIT_INTERVAL};
use chats_runner::Json;
use chats_sim::SystemConfig;
use chats_tvm::Vm;
use std::collections::BTreeMap;
use std::time::Instant;

/// One cell measured both ways: commitments off vs armed at `interval`.
#[derive(Debug, Clone)]
pub struct OverheadMeasurement {
    /// `workload/system`, matching the baseline mix labels.
    pub name: String,
    /// The armed epoch interval in cycles.
    pub interval: u64,
    /// Epoch commitments recorded by one armed run (sanity: > 0, or the
    /// armed arm never hashed anything and the measurement is vacuous).
    pub epochs: u64,
    /// Throughput with commitments off.
    pub off: Measurement,
    /// Throughput with commitments armed.
    pub on: Measurement,
}

impl OverheadMeasurement {
    /// Fractional throughput loss from arming commitments:
    /// `1 - on.events_per_sec / off.events_per_sec`. Negative values
    /// (armed arm measured faster) are host noise; the gate only bounds
    /// the positive direction.
    #[must_use]
    pub fn overhead(&self) -> f64 {
        1.0 - self.on.events_per_sec() / self.off.events_per_sec().max(1e-9)
    }
}

/// Measures commitment overhead on the contended kernel — the cell with
/// the highest events/sec of the mix, i.e. the *least* simulation work
/// per cycle to amortize the hash against, which makes it the worst case
/// for relative overhead.
///
/// Arms are interleaved (off, on, off, on, ...) over `reps` rounds and
/// each arm keeps its best wall time, so slow-host drift hits both arms
/// alike.
#[must_use]
pub fn measure_overhead(interval: u64, quick: bool) -> OverheadMeasurement {
    // Arms are tens of milliseconds, so host noise is the same order as
    // the effect being measured; more interleaved rounds (best-of each)
    // cost little and tighten both arms.
    let reps = if quick { 3 } else { 5 };
    let case = contended_case(quick);
    let mut off: Option<Measurement> = None;
    let mut on: Option<Measurement> = None;
    let mut epochs = 0u64;
    for _ in 0..reps {
        let a = measure_case(&case, 1);
        let (b, chain_len) = measure_armed(&case, interval);
        epochs = chain_len;
        keep_best(&mut off, a);
        keep_best(&mut on, b);
    }
    let off = off.expect("at least one rep");
    let on = on.expect("at least one rep");
    assert_eq!(
        off.events, on.events,
        "arming commitments must not change the simulation"
    );
    OverheadMeasurement {
        name: case.name(),
        interval,
        epochs,
        off,
        on,
    }
}

fn keep_best(slot: &mut Option<Measurement>, candidate: Measurement) {
    match slot {
        Some(best) if best.wall <= candidate.wall => {}
        _ => *slot = Some(candidate),
    }
}

/// The contended cell of the baseline mix, reps matched to `--quick`.
fn contended_case(quick: bool) -> Case {
    workload_mix(quick)
        .into_iter()
        .find(|c| matches!(c.kind, CaseKind::Contended))
        .expect("baseline mix always has the contended cell")
}

/// One timed armed run of the contended cell; mirrors the off-arm path
/// in `baseline::execute_once` with `set_commit_interval` added.
fn measure_armed(case: &Case, interval: u64) -> (Measurement, u64) {
    let CaseKind::Contended = case.kind else {
        unreachable!("overhead bench runs the contended cell only");
    };
    let sys = SystemConfig::default();
    let prog = crate::baseline::contended_program_for_bench();
    let mut events = 0u64;
    let mut cycles = 0u64;
    let mut instructions = 0u64;
    let mut commits = 0u64;
    let mut chain_len = 0u64;
    let t0 = Instant::now();
    for _ in 0..case.inner.max(1) {
        let mut m = Machine::new(
            sys,
            PolicyConfig::for_system(case.system),
            Tuning::default(),
            3,
        );
        for t in 0..sys.core.cores {
            m.load_thread(t, Vm::new(prog.clone(), t as u64));
        }
        m.set_commit_interval(interval);
        let stats = m.run(2_000_000_000).expect("contended kernel completes");
        chain_len = m.commitment_chain().len() as u64;
        events += stats.events;
        cycles += stats.cycles;
        instructions += stats.instructions;
        commits += stats.commits;
    }
    let wall = t0.elapsed();
    let m = Measurement {
        name: case.name(),
        cores: sys.core.cores,
        events,
        cycles,
        instructions,
        commits,
        wall,
        peak_rss_kb: crate::baseline::peak_rss_kb(),
    };
    (m, chain_len)
}

/// Serializes the measurement (and the gate it was held to) as the
/// `commit_overhead` section of `BENCH_simcore.json`.
#[must_use]
pub fn overhead_json(m: &OverheadMeasurement, max_overhead: f64) -> Json {
    let mut root = BTreeMap::new();
    root.insert("name".to_string(), Json::Str(m.name.clone()));
    root.insert("interval".to_string(), Json::U64(m.interval));
    root.insert("epochs".to_string(), Json::U64(m.epochs));
    root.insert(
        "events_per_sec_off".to_string(),
        Json::F64(m.off.events_per_sec()),
    );
    root.insert(
        "events_per_sec_on".to_string(),
        Json::F64(m.on.events_per_sec()),
    );
    root.insert("overhead".to_string(), Json::F64(m.overhead()));
    root.insert("max_overhead".to_string(), Json::F64(max_overhead));
    Json::Obj(root)
}

/// Reads the gate ceiling from a committed `BENCH_simcore.json`: the
/// `commit_overhead.max_overhead` field when present, else `fallback`.
#[must_use]
pub fn gate_ceiling(doc: &Json, fallback: f64) -> f64 {
    doc.get("commit_overhead")
        .and_then(|s| s.get("max_overhead"))
        .and_then(Json::as_f64)
        .unwrap_or(fallback)
}

/// Gates a measurement: overhead must stay under `max_overhead`, and the
/// armed arm must actually have hashed at least one epoch. Returns a
/// human-readable report; `Err` with the same report when the gate trips.
///
/// # Errors
///
/// Returns the report when the measured overhead exceeds the ceiling or
/// the armed run recorded no epochs.
pub fn check_overhead(m: &OverheadMeasurement, max_overhead: f64) -> Result<String, String> {
    let report = format!(
        "{}: {:.0} ev/s off vs {:.0} ev/s armed @ interval {} ({} epochs) \
         -> overhead {:+.2}% (ceiling {:.2}%)",
        m.name,
        m.off.events_per_sec(),
        m.on.events_per_sec(),
        m.interval,
        m.epochs,
        m.overhead() * 100.0,
        max_overhead * 100.0
    );
    if m.epochs == 0 {
        return Err(format!(
            "{report}\narmed run recorded no epoch commitments; the measurement is vacuous"
        ));
    }
    if m.overhead() > max_overhead {
        return Err(format!(
            "{report}\ncommitment hashing regressed past the ceiling"
        ));
    }
    Ok(report)
}

/// The default overhead ceiling: 5% at [`DEFAULT_COMMIT_INTERVAL`].
pub const DEFAULT_MAX_OVERHEAD: f64 = 0.05;

/// Re-exported so callers gate at the canonical interval without
/// depending on `chats-machine` directly.
pub const DEFAULT_INTERVAL: u64 = DEFAULT_COMMIT_INTERVAL;

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn fake(eps: f64) -> Measurement {
        Measurement {
            name: "contended/chats".to_string(),
            cores: 16,
            events: (eps * 0.1) as u64,
            cycles: 0,
            instructions: 0,
            commits: 0,
            wall: Duration::from_millis(100),
            peak_rss_kb: 1,
        }
    }

    fn fake_overhead(off_eps: f64, on_eps: f64, epochs: u64) -> OverheadMeasurement {
        OverheadMeasurement {
            name: "contended/chats".to_string(),
            interval: DEFAULT_INTERVAL,
            epochs,
            off: fake(off_eps),
            on: fake(on_eps),
        }
    }

    #[test]
    fn gate_accepts_small_overhead_and_rejects_large() {
        // 2% loss: under the 5% ceiling.
        let ok = check_overhead(&fake_overhead(1_000_000.0, 980_000.0, 10), 0.05);
        assert!(ok.is_ok(), "{ok:?}");
        // 12% loss: over.
        let bad = check_overhead(&fake_overhead(1_000_000.0, 880_000.0, 10), 0.05);
        assert!(bad.unwrap_err().contains("regressed"));
        // Armed-faster (noise) passes.
        let noise = check_overhead(&fake_overhead(1_000_000.0, 1_010_000.0, 10), 0.05);
        assert!(noise.is_ok(), "{noise:?}");
    }

    #[test]
    fn zero_epochs_is_a_vacuous_measurement() {
        let bad = check_overhead(&fake_overhead(1_000_000.0, 1_000_000.0, 0), 0.05);
        assert!(bad.unwrap_err().contains("vacuous"));
    }

    #[test]
    fn ceiling_comes_from_the_committed_document() {
        let doc = Json::parse(r#"{"commit_overhead": {"max_overhead": 0.07}}"#).unwrap();
        assert!((gate_ceiling(&doc, 0.05) - 0.07).abs() < 1e-12);
        let empty = Json::parse("{}").unwrap();
        assert!((gate_ceiling(&empty, 0.05) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn overhead_json_round_trips() {
        let doc = overhead_json(&fake_overhead(1_000_000.0, 980_000.0, 10), 0.05);
        let back = Json::parse(&doc.to_pretty()).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("epochs").and_then(Json::as_u64), Some(10));
    }
}
