//! One function per table/figure of the paper (see DESIGN.md §5 for the
//! experiment index).

use crate::harness::{Harness, Scale};
use chats_core::{AbortCause, ForwardSet, HtmSystem, PolicyConfig};
use chats_sim::SystemConfig;
use chats_stats::{amean, gmean, Table};
use chats_workloads::registry;

/// The comparison systems of Figs. 1 and 4–7, in plotting order
/// (defined next to the job grids in `chats-runner`).
pub use chats_runner::MAIN_SYSTEMS;

/// Table I: simulated system parameters.
#[must_use]
pub fn table1() -> Table {
    let s = SystemConfig::default();
    let mut t = Table::new(vec!["parameter".into(), "value".into()]);
    t.row(vec!["cores".into(), s.core.cores.to_string()]);
    t.row(vec![
        "L1 D cache".into(),
        format!(
            "private, {} KiB, {}-way, {}-cycle hit",
            s.mem.l1_sets * s.mem.l1_ways * 64 / 1024,
            s.mem.l1_ways,
            s.mem.l1_hit_latency
        ),
    ]);
    t.row(vec![
        "shared LLC/directory".into(),
        format!("{}-cycle access (folded L2/L3)", s.mem.dir_latency),
    ]);
    t.row(vec![
        "memory".into(),
        format!("{}-cycle latency behind the LLC", s.mem.mem_latency),
    ]);
    t.row(vec![
        "protocol".into(),
        "MESI, directory-based (blocking)".into(),
    ]);
    t.row(vec!["topology".into(), "crossbar".into()]);
    t.row(vec![
        "message size".into(),
        format!(
            "{} flits (data), {} flit (control)",
            s.noc.data_flits, s.noc.control_flits
        ),
    ]);
    t.row(vec![
        "link latency / bandwidth".into(),
        format!("{} cycle / 1 flit per cycle", s.noc.link_latency),
    ]);
    t
}

/// Table II: HTM system configurations.
#[must_use]
pub fn table2() -> Table {
    let mut t = Table::new(vec![
        "system".into(),
        "block state".into(),
        "retries".into(),
        "VSB size".into(),
        "cycles valid.".into(),
    ]);
    for sys in HtmSystem::ALL {
        let c = PolicyConfig::for_system(sys);
        let (fs, vsb, val) = if sys.forwards() {
            (
                c.forward_set.label().to_string(),
                c.vsb_size.to_string(),
                c.validation_interval.to_string(),
            )
        } else {
            ("NA".into(), "NA".into(), "NA".into())
        };
        t.row(vec![
            sys.label().into(),
            fs,
            c.retries.to_string(),
            vsb,
            val,
        ]);
    }
    t
}

/// Normalized execution time of `systems` over the baseline, one row per
/// workload, plus amean/gmean rows over the STAMP subset.
fn exec_time_table(h: &Harness, systems: &[HtmSystem]) -> Table {
    let mut headers = vec!["benchmark".into()];
    headers.extend(systems.iter().map(|s| s.label().to_string()));
    let mut t = Table::new(headers);
    let mut per_system: Vec<Vec<f64>> = vec![Vec::new(); systems.len()];
    for w in registry::all() {
        let base = h.baseline_cycles(w.as_ref());
        let mut vals = Vec::new();
        for (k, &sys) in systems.iter().enumerate() {
            let v = h.measure(w.as_ref(), PolicyConfig::for_system(sys)).cycles as f64 / base;
            if !w.is_micro() {
                per_system[k].push(v);
            }
            vals.push(v);
        }
        let label = if w.is_micro() {
            format!("{} (u)", w.name())
        } else {
            w.name().to_string()
        };
        t.row_f64(&label, &vals);
    }
    let am: Vec<f64> = per_system.iter().map(|v| amean(v)).collect();
    let gm: Vec<f64> = per_system.iter().map(|v| gmean(v)).collect();
    t.row_f64("amean", &am);
    t.row_f64("gmean", &gm);
    t
}

/// Figure 1: naive requester-speculates vs the best-effort baseline.
#[must_use]
pub fn fig1(h: &Harness) -> Table {
    exec_time_table(h, &[HtmSystem::Baseline, HtmSystem::NaiveRs])
}

/// Figure 4: normalized execution time of all main systems.
#[must_use]
pub fn fig4(h: &Harness) -> Table {
    exec_time_table(h, &MAIN_SYSTEMS)
}

/// Figure 5: aborted transactions split by cause.
#[must_use]
pub fn fig5(h: &Harness) -> Table {
    let mut t = Table::new(vec![
        "benchmark".into(),
        "system".into(),
        "conflict".into(),
        "capacity".into(),
        "val-mismatch".into(),
        "cycle".into(),
        "val-budget".into(),
        "fallback-lock".into(),
        "total".into(),
    ]);
    for w in registry::all() {
        for sys in MAIN_SYSTEMS {
            let s = h.measure(w.as_ref(), PolicyConfig::for_system(sys));
            t.row(vec![
                w.name().into(),
                sys.label().into(),
                s.aborts_by(AbortCause::Conflict).to_string(),
                s.aborts_by(AbortCause::Capacity).to_string(),
                s.aborts_by(AbortCause::ValidationMismatch).to_string(),
                s.aborts_by(AbortCause::CycleDetected).to_string(),
                s.aborts_by(AbortCause::ValidationBudgetExhausted)
                    .to_string(),
                s.aborts_by(AbortCause::FallbackLock).to_string(),
                s.total_aborts().to_string(),
            ]);
        }
    }
    t
}

/// Figure 6: transactions that conflicted / forwarded data, split by how
/// the attempt finished.
#[must_use]
pub fn fig6(h: &Harness) -> Table {
    let mut t = Table::new(vec![
        "benchmark".into(),
        "system".into(),
        "conflicted-committed".into(),
        "conflicted-aborted".into(),
        "forwarder-committed".into(),
        "forwarder-aborted".into(),
        "forwardings".into(),
    ]);
    for w in registry::all() {
        for sys in MAIN_SYSTEMS {
            let s = h.measure(w.as_ref(), PolicyConfig::for_system(sys));
            t.row(vec![
                w.name().into(),
                sys.label().into(),
                s.conflicted_outcomes.committed.to_string(),
                s.conflicted_outcomes.aborted.to_string(),
                s.forwarder_outcomes.committed.to_string(),
                s.forwarder_outcomes.aborted.to_string(),
                s.forwardings.to_string(),
            ]);
        }
    }
    t
}

/// Figure 7: normalized network usage in flits.
#[must_use]
pub fn fig7(h: &Harness) -> Table {
    let mut headers = vec!["benchmark".into()];
    headers.extend(MAIN_SYSTEMS.iter().map(|s| s.label().to_string()));
    let mut t = Table::new(headers);
    let mut per_system: Vec<Vec<f64>> = vec![Vec::new(); MAIN_SYSTEMS.len()];
    for w in registry::all() {
        let base = h
            .measure(w.as_ref(), PolicyConfig::for_system(HtmSystem::Baseline))
            .flits as f64;
        let mut vals = Vec::new();
        for (k, &sys) in MAIN_SYSTEMS.iter().enumerate() {
            let v = h.measure(w.as_ref(), PolicyConfig::for_system(sys)).flits as f64 / base;
            if !w.is_micro() {
                per_system[k].push(v);
            }
            vals.push(v);
        }
        t.row_f64(w.name(), &vals);
    }
    let gm: Vec<f64> = per_system.iter().map(|v| gmean(v)).collect();
    t.row_f64("gmean", &gm);
    t
}

/// Figure 8: which blocks may be forwarded (R/W, W, Rrestrict/W),
/// normalized to CHATS with R/W.
#[must_use]
pub fn fig8(h: &Harness) -> Table {
    let sets = [
        ForwardSet::ReadWrite,
        ForwardSet::WriteOnly,
        ForwardSet::RestrictedReadWrite,
    ];
    let mut headers = vec!["benchmark".into()];
    for sys in [HtmSystem::Chats, HtmSystem::Pchats] {
        for fs in sets {
            headers.push(format!("{} {}", sys.label(), fs.label()));
        }
    }
    let mut t = Table::new(headers);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 6];
    for w in registry::all() {
        let norm = h
            .measure(
                w.as_ref(),
                PolicyConfig::for_system(HtmSystem::Chats).with_forward_set(ForwardSet::ReadWrite),
            )
            .cycles as f64;
        let mut vals = Vec::new();
        for (i, sys) in [HtmSystem::Chats, HtmSystem::Pchats]
            .into_iter()
            .enumerate()
        {
            for (j, fs) in sets.into_iter().enumerate() {
                let s = h.measure(
                    w.as_ref(),
                    PolicyConfig::for_system(sys).with_forward_set(fs),
                );
                let v = s.cycles as f64 / norm;
                if !w.is_micro() {
                    cols[i * 3 + j].push(v);
                }
                vals.push(v);
            }
        }
        t.row_f64(w.name(), &vals);
    }
    let gm: Vec<f64> = cols.iter().map(|v| gmean(v)).collect();
    t.row_f64("gmean", &gm);
    t
}

/// Figure 9: execution time vs number of retries before the fallback path
/// (gmean over the STAMP subset, normalized to each system's Table II
/// default).
#[must_use]
pub fn fig9(h: &Harness) -> Table {
    let retry_values = [1u32, 2, 4, 6, 8, 16, 32, 64];
    let systems = [
        HtmSystem::Baseline,
        HtmSystem::Chats,
        HtmSystem::Power,
        HtmSystem::Pchats,
    ];
    let mut headers = vec!["retries".into()];
    headers.extend(systems.iter().map(|s| s.label().to_string()));
    let mut t = Table::new(headers);
    for r in retry_values {
        let mut vals = Vec::new();
        for sys in systems {
            let mut per_wl = Vec::new();
            for w in registry::stamp() {
                let base = h.baseline_cycles(w.as_ref());
                let s = h.measure(w.as_ref(), PolicyConfig::for_system(sys).with_retries(r));
                per_wl.push(s.cycles as f64 / base);
            }
            vals.push(gmean(&per_wl));
        }
        t.row_f64(&r.to_string(), &vals);
    }
    t
}

/// The contended subset used for the Fig. 10 sensitivity heatmaps
/// (shared with the `chats-runner` job grids).
fn contended() -> Vec<&'static str> {
    chats_runner::contended().to_vec()
}

/// Figure 10: VSB size × validation interval, execution time (left) and
/// aborts (right), normalized to the (50-cycle, VSB=1) corner, gmean over
/// the contended subset. One row per VSB size.
#[must_use]
pub fn fig10(h: &Harness) -> Table {
    let vsb_sizes = [1usize, 2, 4, 8, 16, 32];
    let intervals = [50u64, 100, 200, 400];
    let mut headers = vec!["VSB \\ interval".into()];
    for iv in intervals {
        headers.push(format!("time@{iv}"));
    }
    for iv in intervals {
        headers.push(format!("aborts@{iv}"));
    }
    let mut t = Table::new(headers);
    let corner: Vec<(f64, f64)> = contended()
        .iter()
        .map(|name| {
            let w = registry::by_name(name).unwrap();
            let s = h.measure(
                w.as_ref(),
                PolicyConfig::for_system(HtmSystem::Chats)
                    .with_vsb_size(1)
                    .with_validation_interval(50),
            );
            (s.cycles as f64, s.total_aborts().max(1) as f64)
        })
        .collect();
    for vsb in vsb_sizes {
        let mut times = Vec::new();
        let mut aborts = Vec::new();
        for iv in intervals {
            let mut tr = Vec::new();
            let mut ar = Vec::new();
            for (k, name) in contended().iter().enumerate() {
                let w = registry::by_name(name).unwrap();
                let s = h.measure(
                    w.as_ref(),
                    PolicyConfig::for_system(HtmSystem::Chats)
                        .with_vsb_size(vsb)
                        .with_validation_interval(iv),
                );
                tr.push(s.cycles as f64 / corner[k].0);
                ar.push(s.total_aborts().max(1) as f64 / corner[k].1);
            }
            times.push(gmean(&tr));
            aborts.push(gmean(&ar));
        }
        let mut vals = times;
        vals.extend(aborts);
        t.row_f64(&vsb.to_string(), &vals);
    }
    t
}

/// Figure 11: CHATS and PCHATS against LEVC-BE-Idealized, normalized to
/// the baseline.
#[must_use]
pub fn fig11(h: &Harness) -> Table {
    exec_time_table(
        h,
        &[
            HtmSystem::Chats,
            HtmSystem::Pchats,
            HtmSystem::LevcBeIdealized,
        ],
    )
}

/// Thread-count scaling (extension experiment): throughput speedup over
/// one thread for the baseline and CHATS on kmeans-h. The paper runs 16
/// threads because STAMP scales poorly beyond that; this quantifies how
/// much of the scalability loss CHATS recovers.
#[must_use]
pub fn scaling(h: &Harness) -> Table {
    use chats_runner::JobSpec;
    let systems = [HtmSystem::Baseline, HtmSystem::Chats];
    let threads: &[usize] = match h.scale() {
        Scale::Paper => &[1, 2, 4, 8, 16],
        Scale::Quick => &[1, 2, 4],
    };
    let mut headers = vec!["threads".into()];
    for sys in systems {
        headers.push(format!("{} speedup", sys.label()));
    }
    let mut t = Table::new(headers);
    let measure = |sys: HtmSystem, n: usize| -> f64 {
        let mut cfg = h.scale().run_config();
        cfg.threads = n;
        let spec = JobSpec::new("kmeans-h", PolicyConfig::for_system(sys), cfg);
        h.measure_spec(&spec).cycles as f64
    };
    let base_t1: Vec<f64> = systems.iter().map(|&sys| measure(sys, 1)).collect();
    for &n in threads {
        let mut vals = Vec::new();
        for (k, &sys) in systems.iter().enumerate() {
            // n threads perform n x the single-thread work.
            vals.push(n as f64 * base_t1[k] / measure(sys, n));
        }
        t.row_f64(&n.to_string(), &vals);
    }
    t
}

/// PiC register width sensitivity (extension experiment): narrower
/// registers overflow sooner, truncating chains into requester-wins
/// aborts. Normalized time per width, gmean over the contended subset.
#[must_use]
pub fn picwidth(h: &Harness) -> Table {
    let mut headers = vec!["pic bits".into()];
    headers.extend(contended().iter().map(|s| s.to_string()));
    headers.push("gmean".into());
    let mut t = Table::new(headers);
    let five: Vec<f64> = contended()
        .iter()
        .map(|name| {
            let w = registry::by_name(name).unwrap();
            h.measure(w.as_ref(), PolicyConfig::for_system(HtmSystem::Chats))
                .cycles as f64
        })
        .collect();
    for bits in [2u32, 3, 4, 5, 6, 7] {
        let mut vals = Vec::new();
        for (k, name) in contended().iter().enumerate() {
            let w = registry::by_name(name).unwrap();
            let s = h.measure(
                w.as_ref(),
                PolicyConfig::for_system(HtmSystem::Chats).with_pic_bits(bits),
            );
            vals.push(s.cycles as f64 / five[k]);
        }
        let g = gmean(&vals);
        vals.push(g);
        t.row_f64(&bits.to_string(), &vals);
    }
    t
}

/// Chain-depth evidence for the 5-bit PiC sizing claim (§IV-C): how far
/// from the initial value PiCs actually travel under CHATS.
#[must_use]
pub fn chains(h: &Harness) -> Table {
    let mut t = Table::new(vec![
        "benchmark".into(),
        "forwardings".into(),
        "max depth".into(),
        "depth 0".into(),
        "depth 1".into(),
        "depth 2".into(),
        "depth 3+".into(),
    ]);
    for w in registry::all() {
        let s = h.measure(w.as_ref(), PolicyConfig::for_system(HtmSystem::Chats));
        let at = |d: u32| s.chain_depth_hist.get(&d).copied().unwrap_or(0);
        let deep: u64 = s
            .chain_depth_hist
            .iter()
            .filter(|(d, _)| **d >= 3)
            .map(|(_, n)| *n)
            .sum();
        t.row(vec![
            w.name().into(),
            s.forwardings.to_string(),
            s.max_chain_depth.to_string(),
            at(0).to_string(),
            at(1).to_string(),
            at(2).to_string(),
            deep.to_string(),
        ]);
    }
    t
}

/// Ablation study (DESIGN.md §6): what each CHATS design choice buys,
/// measured on the contended subset and normalized to full CHATS.
#[must_use]
pub fn ablations(h: &Harness) -> Table {
    use chats_core::Ablation;
    let variants: [(&str, Ablation); 4] = [
        ("full CHATS", Ablation::default()),
        (
            "no PiC overtake (Fig.3F off)",
            Ablation {
                no_pic_overtake: true,
                single_link_chains: false,
            },
        ),
        (
            "single-link chains (LEVC-like)",
            Ablation {
                no_pic_overtake: false,
                single_link_chains: true,
            },
        ),
        (
            "both ablations",
            Ablation {
                no_pic_overtake: true,
                single_link_chains: true,
            },
        ),
    ];
    let mut headers = vec!["variant".into()];
    headers.extend(contended().iter().map(|s| s.to_string()));
    headers.push("gmean".into());
    let mut t = Table::new(headers);
    let full: Vec<f64> = contended()
        .iter()
        .map(|name| {
            let w = registry::by_name(name).unwrap();
            h.measure(w.as_ref(), PolicyConfig::for_system(HtmSystem::Chats))
                .cycles as f64
        })
        .collect();
    for (label, ab) in variants {
        let mut vals = Vec::new();
        for (k, name) in contended().iter().enumerate() {
            let w = registry::by_name(name).unwrap();
            let s = h.measure(
                w.as_ref(),
                PolicyConfig::for_system(HtmSystem::Chats).with_ablation(ab),
            );
            vals.push(s.cycles as f64 / full[k]);
        }
        let g = gmean(&vals);
        vals.push(g);
        t.row_f64(label, &vals);
    }
    t
}

/// Headline numbers quoted in the abstract: mean execution-time reduction
/// of CHATS vs baseline and PCHATS vs Power, and abort reductions.
#[must_use]
pub fn headline(h: &Harness) -> Table {
    let mut chats_t = Vec::new();
    let mut pchats_vs_power = Vec::new();
    let mut chats_ab = (0u64, 0u64);
    let mut pchats_ab = (0u64, 0u64);
    for w in registry::stamp() {
        let base = h.measure(w.as_ref(), PolicyConfig::for_system(HtmSystem::Baseline));
        let chats = h.measure(w.as_ref(), PolicyConfig::for_system(HtmSystem::Chats));
        let power = h.measure(w.as_ref(), PolicyConfig::for_system(HtmSystem::Power));
        let pchats = h.measure(w.as_ref(), PolicyConfig::for_system(HtmSystem::Pchats));
        chats_t.push(chats.cycles as f64 / base.cycles as f64);
        pchats_vs_power.push(pchats.cycles as f64 / power.cycles as f64);
        chats_ab.0 += chats.total_aborts();
        chats_ab.1 += base.total_aborts();
        pchats_ab.0 += pchats.total_aborts();
        pchats_ab.1 += power.total_aborts();
    }
    let mut t = Table::new(vec!["metric".into(), "value".into(), "paper".into()]);
    t.row(vec![
        "CHATS exec-time reduction vs baseline (amean)".into(),
        format!("{:.1}%", (1.0 - amean(&chats_t)) * 100.0),
        "22%".into(),
    ]);
    t.row(vec![
        "PCHATS exec-time reduction vs Power (amean)".into(),
        format!("{:.1}%", (1.0 - amean(&pchats_vs_power)) * 100.0),
        "16%".into(),
    ]);
    t.row(vec![
        "CHATS abort reduction vs baseline".into(),
        format!(
            "{:.1}%",
            (1.0 - chats_ab.0 as f64 / chats_ab.1.max(1) as f64) * 100.0
        ),
        "34%".into(),
    ]);
    t.row(vec![
        "PCHATS abort reduction vs Power".into(),
        format!(
            "{:.1}%",
            (1.0 - pchats_ab.0 as f64 / pchats_ab.1.max(1) as f64) * 100.0
        ),
        "49%".into(),
    ]);
    t
}

/// All figure/table generators by id.
#[must_use]
pub fn available() -> Vec<&'static str> {
    vec![
        "table1",
        "table2",
        "fig1",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "ablations",
        "chains",
        "picwidth",
        "scaling",
        "headline",
    ]
}

/// Runs one experiment by id and returns its rendered table.
///
/// # Panics
///
/// Panics on an unknown id.
#[must_use]
pub fn run_by_name(h: &Harness, id: &str) -> Table {
    // Execute the figure's whole grid on the runner's worker pool first;
    // the serial reads below then come out of the memo/disk cache.
    if let Some(set) = chats_runner::experiments::set(id, h.scale()) {
        h.warm(&set);
    }
    match id {
        "table1" => table1(),
        "table2" => table2(),
        "fig1" => fig1(h),
        "fig4" => fig4(h),
        "fig5" => fig5(h),
        "fig6" => fig6(h),
        "fig7" => fig7(h),
        "fig8" => fig8(h),
        "fig9" => fig9(h),
        "fig10" => fig10(h),
        "fig11" => fig11(h),
        "ablations" => ablations(h),
        "chains" => chains(h),
        "picwidth" => picwidth(h),
        "scaling" => scaling(h),
        "headline" => headline(h),
        other => panic!(
            "unknown experiment id {other:?}; try one of {:?}",
            available()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;

    #[test]
    fn tables_render_without_simulation() {
        assert!(table1().to_string().contains("cores"));
        assert!(table2().to_string().contains("CHATS"));
        assert_eq!(table2().len(), 6);
    }

    #[test]
    fn fig1_runs_at_quick_scale() {
        let h = Harness::new(Scale::Quick);
        let t = fig1(&h);
        assert_eq!(t.len(), 12 + 2); // workloads + amean + gmean
    }

    #[test]
    fn workload_name_lists_are_consistent() {
        assert_eq!(registry::all().len(), 12);
        assert_eq!(registry::stamp().len(), 9);
    }
}
