//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures [--quick] [ids...]        # default: all
//! figures fig4 headline
//! figures --quick --jobs 8 fig1
//! ```
//!
//! Each figure's grid is executed in parallel through the `chats-runner`
//! worker pool and served from `target/chats-cache/` on repeat runs;
//! `--no-cache` forces fresh simulations.

use chats_bench::figures;
use chats_bench::{Harness, Scale};
use chats_core::PolicyConfig;
use chats_runner::{Runner, RunnerConfig};
use chats_stats::BarChart;
use chats_workloads::registry;

fn main() {
    let mut scale = Scale::Paper;
    let mut bars = false;
    let mut csv_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut runner_cfg = RunnerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--bars" => bars = true,
            "--csv" => {
                csv_dir = Some(args.next().expect("--csv needs a directory"));
            }
            "--jobs" => {
                runner_cfg.jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--jobs needs a number");
            }
            "--no-cache" => runner_cfg.use_cache = false,
            "--help" | "-h" => {
                println!(
                    "usage: figures [--quick] [--bars] [--csv DIR] [--jobs N] [--no-cache] [ids...]"
                );
                println!("available ids: {}", figures::available().join(", "));
                println!("--bars additionally renders the Fig. 4 summary as bar charts");
                println!("--csv DIR also writes each table as DIR/<id>.csv");
                println!("--jobs N runs each figure's grid on N workers (default: all cores)");
                println!("--no-cache ignores results cached under target/chats-cache");
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids = figures::available().iter().map(|s| s.to_string()).collect();
    }
    let h = Harness::with_runner(scale, Runner::new(runner_cfg));
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv directory");
    }
    for id in &ids {
        println!("=== {id} ===");
        let t = figures::run_by_name(&h, id);
        println!("{t}");
        if let Some(dir) = &csv_dir {
            let path = format!("{dir}/{id}.csv");
            std::fs::write(&path, t.to_csv()).expect("write csv");
        }
    }
    if bars {
        println!("=== fig4 (bars) ===");
        for w in registry::all() {
            let base = h.baseline_cycles(w.as_ref());
            let mut chart = BarChart::new(w.name(), 40);
            for sys in figures::MAIN_SYSTEMS {
                let s = h.measure(w.as_ref(), PolicyConfig::for_system(sys));
                chart.bar(sys.label(), s.cycles as f64 / base);
            }
            println!("{chart}");
        }
    }
}
