//! Ad-hoc parameter exploration from the command line.
//!
//! ```text
//! sweep --workload kmeans-h --system chats --retries 1,2,4,8,16,32
//! sweep --workload yada     --system chats --vsb 1,2,4,8
//! sweep --workload genome   --system all
//! sweep --workload llb-h --system chats --threads 2,4,8,16
//! ```
//!
//! Prints one row per configuration: cycles, commits, aborts, forwardings
//! and flits — everything a downstream user needs to explore the design
//! space beyond the paper's figures.

use chats_core::{HtmSystem, PolicyConfig};
use chats_stats::Table;
use chats_workloads::{registry, run_workload, RunConfig};

fn parse_list(v: &str) -> Vec<u64> {
    v.split(',')
        .map(|s| s.trim().parse().unwrap_or_else(|_| panic!("bad number {s:?}")))
        .collect()
}

fn parse_system(v: &str) -> Vec<HtmSystem> {
    match v.to_ascii_lowercase().as_str() {
        "baseline" => vec![HtmSystem::Baseline],
        "naive" | "naive-rs" => vec![HtmSystem::NaiveRs],
        "chats" => vec![HtmSystem::Chats],
        "power" => vec![HtmSystem::Power],
        "pchats" => vec![HtmSystem::Pchats],
        "levc" => vec![HtmSystem::LevcBeIdealized],
        "all" => HtmSystem::ALL.to_vec(),
        other => panic!("unknown system {other:?} (try baseline/naive/chats/power/pchats/levc/all)"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workload = String::from("kmeans-h");
    let mut systems = vec![HtmSystem::Chats];
    let mut retries: Vec<u64> = vec![];
    let mut vsbs: Vec<u64> = vec![];
    let mut intervals: Vec<u64> = vec![];
    let mut threads: Vec<u64> = vec![];
    let mut seed = 0xC4A75u64;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("{a} needs a value"))
                .clone()
        };
        match a.as_str() {
            "--workload" | "-w" => workload = val(),
            "--system" | "-s" => systems = parse_system(&val()),
            "--retries" => retries = parse_list(&val()),
            "--vsb" => vsbs = parse_list(&val()),
            "--interval" => intervals = parse_list(&val()),
            "--threads" | "-t" => threads = parse_list(&val()),
            "--seed" => seed = val().parse().expect("bad seed"),
            "--help" | "-h" => {
                println!(
                    "usage: sweep [--workload NAME] [--system S] [--retries a,b,..]\n\
                     \x20            [--vsb a,b,..] [--interval a,b,..] [--threads a,b,..] [--seed N]"
                );
                println!(
                    "workloads: {}",
                    registry::all()
                        .iter()
                        .map(|w| w.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return;
            }
            other => panic!("unknown flag {other:?} (try --help)"),
        }
    }

    // Unswept dimensions collapse to the Table II default (encoded as 0).
    if retries.is_empty() {
        retries.push(0);
    }
    if vsbs.is_empty() {
        vsbs.push(0);
    }
    if intervals.is_empty() {
        intervals.push(u64::MAX);
    }
    if threads.is_empty() {
        threads.push(0);
    }

    let w = registry::by_name(&workload)
        .unwrap_or_else(|| panic!("unknown workload {workload:?} (try --help)"));

    let mut t = Table::new(vec![
        "system".into(),
        "threads".into(),
        "retries".into(),
        "vsb".into(),
        "interval".into(),
        "cycles".into(),
        "commits".into(),
        "aborts".into(),
        "forwardings".into(),
        "flits".into(),
    ]);
    for &sys in &systems {
        for &r in &retries {
            for &v in &vsbs {
                for &iv in &intervals {
                    for &th in &threads {
                        let mut policy = PolicyConfig::for_system(sys);
                        if r != 0 {
                            policy = policy.with_retries(r as u32);
                        }
                        if v != 0 {
                            policy = policy.with_vsb_size(v as usize);
                        }
                        if iv != u64::MAX {
                            policy = policy.with_validation_interval(iv);
                        }
                        let mut cfg = RunConfig::paper().with_seed(seed);
                        if th != 0 {
                            cfg.threads = th as usize;
                        }
                        let s = run_workload(w.as_ref(), policy, &cfg)
                            .unwrap_or_else(|e| panic!("{e}"))
                            .stats;
                        t.row(vec![
                            sys.label().into(),
                            cfg.threads.to_string(),
                            policy.retries.to_string(),
                            policy.vsb_size.to_string(),
                            policy.validation_interval.to_string(),
                            s.cycles.to_string(),
                            s.commits.to_string(),
                            s.total_aborts().to_string(),
                            s.forwardings.to_string(),
                            s.flits.to_string(),
                        ]);
                    }
                }
            }
        }
    }
    println!("{workload} (seed {seed})\n{t}");
}
