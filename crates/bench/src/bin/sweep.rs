//! Ad-hoc parameter exploration from the command line.
//!
//! ```text
//! sweep --workload kmeans-h --system chats --retries 1,2,4,8,16,32
//! sweep --workload yada     --system chats --vsb 1,2,4,8
//! sweep --workload genome   --system all --jobs 4
//! sweep --workload llb-h --system chats --threads 2,4,8,16
//! ```
//!
//! The swept cross-product is submitted as one job set to the
//! `chats-runner` worker pool: points run in parallel, results are served
//! from `target/chats-cache/` when already known, and every invocation
//! writes a run manifest under `target/chats-runs/`. Prints one row per
//! configuration: cycles, commits, aborts, forwardings and flits.

use chats_core::{HtmSystem, PolicyConfig};
use chats_runner::{default_runs_dir, write_manifest, JobSet, JobSpec, Runner, RunnerConfig};
use chats_stats::Table;
use chats_workloads::{registry, RunConfig};

fn parse_list(v: &str) -> Vec<u64> {
    v.split(',')
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|_| panic!("bad number {s:?}"))
        })
        .collect()
}

fn parse_system(v: &str) -> Vec<HtmSystem> {
    match v.to_ascii_lowercase().as_str() {
        "baseline" => vec![HtmSystem::Baseline],
        "naive" | "naive-rs" => vec![HtmSystem::NaiveRs],
        "chats" => vec![HtmSystem::Chats],
        "power" => vec![HtmSystem::Power],
        "pchats" => vec![HtmSystem::Pchats],
        "levc" => vec![HtmSystem::LevcBeIdealized],
        "all" => HtmSystem::ALL.to_vec(),
        other => {
            panic!("unknown system {other:?} (try baseline/naive/chats/power/pchats/levc/all)")
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workload = String::from("kmeans-h");
    let mut systems = vec![HtmSystem::Chats];
    let mut retries: Vec<u64> = vec![];
    let mut vsbs: Vec<u64> = vec![];
    let mut intervals: Vec<u64> = vec![];
    let mut threads: Vec<u64> = vec![];
    let mut seed = 0xC4A75u64;
    let mut runner_cfg = RunnerConfig::default();

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| panic!("{a} needs a value"))
                .clone()
        };
        match a.as_str() {
            "--workload" | "-w" => workload = val(),
            "--system" | "-s" => systems = parse_system(&val()),
            "--retries" => retries = parse_list(&val()),
            "--vsb" => vsbs = parse_list(&val()),
            "--interval" => intervals = parse_list(&val()),
            "--threads" | "-t" => threads = parse_list(&val()),
            "--seed" => seed = val().parse().expect("bad seed"),
            "--jobs" | "-j" => runner_cfg.jobs = val().parse().expect("bad --jobs value"),
            "--no-cache" => runner_cfg.use_cache = false,
            "--help" | "-h" => {
                println!(
                    "usage: sweep [--workload NAME] [--system S] [--retries a,b,..]\n\
                     \x20            [--vsb a,b,..] [--interval a,b,..] [--threads a,b,..]\n\
                     \x20            [--seed N] [--jobs N] [--no-cache]"
                );
                println!(
                    "workloads: {}",
                    registry::all()
                        .iter()
                        .map(|w| w.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                return;
            }
            other => panic!("unknown flag {other:?} (try --help)"),
        }
    }

    // Unswept dimensions collapse to the Table II default (encoded as 0).
    if retries.is_empty() {
        retries.push(0);
    }
    if vsbs.is_empty() {
        vsbs.push(0);
    }
    if intervals.is_empty() {
        intervals.push(u64::MAX);
    }
    if threads.is_empty() {
        threads.push(0);
    }

    assert!(
        registry::by_name(&workload).is_some(),
        "unknown workload {workload:?} (try --help)"
    );

    // Enumerate the cross-product; the job set dedups repeated points.
    let mut specs: Vec<JobSpec> = Vec::new();
    for &sys in &systems {
        for &r in &retries {
            for &v in &vsbs {
                for &iv in &intervals {
                    for &th in &threads {
                        let mut policy = PolicyConfig::for_system(sys);
                        if r != 0 {
                            policy =
                                policy.with_retries(u32::try_from(r).expect("retries fit u32"));
                        }
                        if v != 0 {
                            policy = policy.with_vsb_size(v as usize);
                        }
                        if iv != u64::MAX {
                            policy = policy.with_validation_interval(iv);
                        }
                        let mut cfg = RunConfig::paper().with_seed(seed);
                        if th != 0 {
                            cfg.threads = th as usize;
                        }
                        specs.push(JobSpec::new(workload.clone(), policy, cfg));
                    }
                }
            }
        }
    }
    let set: JobSet = specs.iter().cloned().collect();

    let runner = Runner::new(runner_cfg);
    let report = runner.run_set(&set);

    let mut t = Table::new(vec![
        "system".into(),
        "threads".into(),
        "retries".into(),
        "vsb".into(),
        "interval".into(),
        "cycles".into(),
        "commits".into(),
        "aborts".into(),
        "forwardings".into(),
        "flits".into(),
    ]);
    // Report in cross-product order (specs), not dedup order.
    for spec in &specs {
        let Some(s) = report.stats_for(spec) else {
            eprintln!("sweep: {} failed; see messages above", spec.label());
            continue;
        };
        t.row(vec![
            spec.policy.system.label().into(),
            spec.config.threads.to_string(),
            spec.policy.retries.to_string(),
            spec.policy.vsb_size.to_string(),
            spec.policy.validation_interval.to_string(),
            s.cycles.to_string(),
            s.commits.to_string(),
            s.total_aborts().to_string(),
            s.forwardings.to_string(),
            s.flits.to_string(),
        ]);
    }
    println!("{workload} (seed {seed})\n{t}");
    match write_manifest(
        &report,
        &["sweep".to_string()],
        "paper",
        &default_runs_dir(),
    ) {
        Ok(info) => eprintln!("sweep: manifest {}", info.path.display()),
        Err(e) => eprintln!("sweep: could not write manifest: {e}"),
    }
    if !report.all_succeeded() {
        std::process::exit(1);
    }
}
