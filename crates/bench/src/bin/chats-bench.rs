//! `chats-bench` — simulator-engineering benchmarks.
//!
//! ```text
//! chats-bench baseline [--quick] [--out PATH] [--check PATH] [--tolerance 0.10] [--label NAME]
//! chats-bench commit-overhead [--quick] [--interval N] [--max-overhead F] [--check PATH] [--out PATH]
//! ```
//!
//! `baseline` measures raw simulator throughput (events/sec, cycles/sec,
//! peak RSS) on the fixed `sim_throughput` workload mix at the paper's
//! 16-core configuration.
//!
//! * `--quick`      CI-smoke subset: fewer cells, fewer reps.
//! * `--out PATH`   write the measured section as JSON.
//! * `--check PATH` gate against a committed `BENCH_simcore.json`
//!   (its `gate` floors when present, else `after`): exit non-zero when
//!   any shared case loses more than `--tolerance` (default 0.10) of a
//!   committed floor — events/sec always, commits/sec (user-txns/sec
//!   for the evm cases) where the entry records one.
//! * `--label NAME` label recorded in the JSON section (default
//!   `measured`).
//!
//! `commit-overhead` measures what arming epoch state commitments costs
//! (interleaved off/armed arms of the contended cell) and gates the loss
//! under a ceiling — 5% at the default interval, or the
//! `commit_overhead.max_overhead` recorded in the `--check` document.

use chats_bench::{baseline, commit};
use chats_runner::Json;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: chats-bench baseline [--quick] [--out PATH] [--check PATH] \
         [--tolerance F] [--label NAME]\n       \
         chats-bench commit-overhead [--quick] [--interval N] \
         [--max-overhead F] [--check PATH] [--out PATH]"
    );
    ExitCode::from(2)
}

fn cmd_commit_overhead(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut interval = commit::DEFAULT_INTERVAL;
    let mut max_overhead: Option<f64> = None;
    let mut check: Option<String> = None;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--interval" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => interval = n,
                _ => return usage(),
            },
            "--max-overhead" => match it.next().and_then(|v| v.parse().ok()) {
                Some(f) => max_overhead = Some(f),
                None => return usage(),
            },
            "--check" => match it.next() {
                Some(p) => check = Some(p.clone()),
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    // Ceiling priority: explicit flag, then the committed document's
    // recorded gate, then the 5%-at-default-interval contract.
    let ceiling = max_overhead.unwrap_or_else(|| {
        check
            .as_deref()
            .and_then(|p| std::fs::read_to_string(p).ok())
            .and_then(|t| Json::parse(&t).ok())
            .map_or(commit::DEFAULT_MAX_OVERHEAD, |doc| {
                commit::gate_ceiling(&doc, commit::DEFAULT_MAX_OVERHEAD)
            })
    });
    eprintln!(
        "chats-bench commit-overhead: measuring at interval {interval} \
         ({} arms) ...",
        if quick { "quick" } else { "full" }
    );
    let m = commit::measure_overhead(interval, quick);
    if let Some(path) = out {
        let doc = commit::overhead_json(&m, ceiling);
        if let Err(e) = std::fs::write(&path, doc.to_pretty() + "\n") {
            eprintln!("chats-bench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("chats-bench: wrote {path}");
    }
    match commit::check_overhead(&m, ceiling) {
        Ok(report) => {
            println!("{report}");
            eprintln!("chats-bench: commitment-overhead gate passed");
            ExitCode::SUCCESS
        }
        Err(report) => {
            eprintln!("chats-bench: {report}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("baseline") => {}
        Some("commit-overhead") => return cmd_commit_overhead(&args[1..]),
        _ => return usage(),
    }
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut tolerance = 0.10f64;
    let mut label = "measured".to_string();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => return usage(),
            },
            "--check" => match it.next() {
                Some(p) => check = Some(p.clone()),
                None => return usage(),
            },
            "--tolerance" => match it.next().and_then(|t| t.parse().ok()) {
                Some(t) => tolerance = t,
                None => return usage(),
            },
            "--label" => match it.next() {
                Some(l) => label = l.clone(),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    eprintln!(
        "chats-bench baseline: measuring {} mix ...",
        if quick { "quick" } else { "full" }
    );
    let runs = baseline::measure_mix(quick);
    print!("{}", baseline::table(&runs));

    if let Some(path) = out {
        let doc = baseline::section_json(&label, quick, &runs);
        if let Err(e) = std::fs::write(&path, doc.to_pretty() + "\n") {
            eprintln!("chats-bench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("chats-bench: wrote {path}");
    }

    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("chats-bench: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("chats-bench: cannot parse baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match baseline::check_against(&doc, &runs, tolerance) {
            Ok(report) => {
                eprintln!("chats-bench: regression gate passed\n{report}");
            }
            Err(report) => {
                eprintln!("chats-bench: {report}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
