//! `chats-bench` — simulator-engineering benchmarks.
//!
//! ```text
//! chats-bench baseline [--quick] [--out PATH] [--check PATH] [--tolerance 0.10] [--label NAME]
//! ```
//!
//! `baseline` measures raw simulator throughput (events/sec, cycles/sec,
//! peak RSS) on the fixed `sim_throughput` workload mix at the paper's
//! 16-core configuration.
//!
//! * `--quick`      CI-smoke subset: fewer cells, fewer reps.
//! * `--out PATH`   write the measured section as JSON.
//! * `--check PATH` gate against a committed `BENCH_simcore.json`
//!   (its `gate` floors when present, else `after`): exit non-zero when
//!   any shared case loses more than `--tolerance` (default 0.10) of a
//!   committed floor — events/sec always, commits/sec (user-txns/sec
//!   for the evm cases) where the entry records one.
//! * `--label NAME` label recorded in the JSON section (default
//!   `measured`).

use chats_bench::baseline;
use chats_runner::Json;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: chats-bench baseline [--quick] [--out PATH] [--check PATH] \
         [--tolerance F] [--label NAME]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) != Some("baseline") {
        return usage();
    }
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut tolerance = 0.10f64;
    let mut label = "measured".to_string();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => return usage(),
            },
            "--check" => match it.next() {
                Some(p) => check = Some(p.clone()),
                None => return usage(),
            },
            "--tolerance" => match it.next().and_then(|t| t.parse().ok()) {
                Some(t) => tolerance = t,
                None => return usage(),
            },
            "--label" => match it.next() {
                Some(l) => label = l.clone(),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    eprintln!(
        "chats-bench baseline: measuring {} mix ...",
        if quick { "quick" } else { "full" }
    );
    let runs = baseline::measure_mix(quick);
    print!("{}", baseline::table(&runs));

    if let Some(path) = out {
        let doc = baseline::section_json(&label, quick, &runs);
        if let Err(e) = std::fs::write(&path, doc.to_pretty() + "\n") {
            eprintln!("chats-bench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("chats-bench: wrote {path}");
    }

    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("chats-bench: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("chats-bench: cannot parse baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match baseline::check_against(&doc, &runs, tolerance) {
            Ok(report) => {
                eprintln!("chats-bench: regression gate passed\n{report}");
            }
            Err(report) => {
                eprintln!("chats-bench: {report}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
