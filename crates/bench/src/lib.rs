#![warn(missing_docs)]

//! Experiment harness: one function per table/figure of the paper.
//!
//! Each `figN` function runs the required (workload × system × parameter)
//! grid and renders the same rows/series the paper reports, normalized to
//! the requester-wins baseline exactly as the paper normalizes. The
//! `figures` binary is the command-line front end; the Criterion benches
//! under `benches/` wrap representative cells of each grid.
//!
//! Absolute numbers will not match gem5 (different substrate — see
//! DESIGN.md); the *shapes* are the reproduction target, recorded in
//! EXPERIMENTS.md.

pub mod baseline;
pub mod commit;
pub mod figures;
pub mod harness;

pub use harness::{Harness, Scale};
