//! The simulator-engineering perf baseline behind `chats-bench baseline`.
//!
//! Every figure sweep, schedule exploration and fault campaign funnels
//! through the same single-run hot path (event queue pop/push, dispatch,
//! hot-map lookups), so this module measures exactly that: raw simulator
//! throughput — **events/sec and cycles/sec of simulated work per second
//! of wall clock** — on a fixed workload mix at the paper's 16-core
//! configuration, plus the process peak RSS.
//!
//! The measurements are written to / diffed against `BENCH_simcore.json`
//! at the repository root, giving the repo a recorded perf trajectory:
//! every hot-path change re-runs the mix and either moves the committed
//! numbers forward or trips the CI regression gate (see
//! [`check_against`]).

use chats_core::{HtmSystem, PolicyConfig};
use chats_machine::{Machine, Tuning};
use chats_runner::Json;
use chats_sim::SystemConfig;
use chats_stats::RunStats;
use chats_tvm::{Program, ProgramBuilder, Reg, Vm};
use chats_workloads::{registry, run_workload, RunConfig};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// What a case runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseKind {
    /// The synthetic contended-counter kernel `sim_throughput` has always
    /// used: every thread increments random words of a small hot region,
    /// maximizing queue and directory pressure per instruction.
    Contended,
    /// A registry workload by name, at paper scale.
    Registry(&'static str),
}

/// One (workload, system) cell of the baseline mix.
#[derive(Debug, Clone, Copy)]
pub struct Case {
    /// Workload half of the cell.
    pub kind: CaseKind,
    /// HTM system half of the cell.
    pub system: HtmSystem,
    /// Back-to-back runs inside one timed measurement. The registry
    /// workloads finish in milliseconds at paper scale, so each cell
    /// repeats its run enough times to push the timed region into the
    /// hundreds of milliseconds, where the wall clock is trustworthy.
    pub inner: u32,
}

impl Case {
    /// Stable `workload/system` label used in JSON and tables.
    #[must_use]
    pub fn name(&self) -> String {
        let w = match self.kind {
            CaseKind::Contended => "contended",
            CaseKind::Registry(n) => n,
        };
        format!("{w}/{}", system_label(self.system))
    }
}

fn system_label(s: HtmSystem) -> &'static str {
    match s {
        HtmSystem::Baseline => "baseline",
        HtmSystem::Chats => "chats",
        HtmSystem::Pchats => "pchats",
        HtmSystem::Power => "power",
        HtmSystem::NaiveRs => "naive-rs",
        HtmSystem::LevcBeIdealized => "levc-be",
    }
}

/// One measured cell: simulated work per second of wall clock.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `workload/system`.
    pub name: String,
    /// Cores simulated.
    pub cores: usize,
    /// Events the run dispatched (deterministic).
    pub events: u64,
    /// Simulated cycles to completion (deterministic).
    pub cycles: u64,
    /// Instructions retired (deterministic).
    pub instructions: u64,
    /// Transactions committed (deterministic). For the evm family each
    /// commit is one user transaction, so `commits_per_sec` is the
    /// end-to-end user-txns/sec figure the bench gate floors.
    pub commits: u64,
    /// Best wall time over the measurement reps.
    pub wall: Duration,
    /// Process peak RSS in kB after the case ran (`VmHWM`; monotone over
    /// the process lifetime, so per-case values are "peak so far").
    pub peak_rss_kb: u64,
}

impl Measurement {
    /// Dispatched events per wall second — the headline metric.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Simulated cycles per wall second.
    #[must_use]
    pub fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Committed transactions per wall second (user-txns/sec for the
    /// evm cases, where one commit is one user transaction).
    #[must_use]
    pub fn commits_per_sec(&self) -> f64 {
        self.commits as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// The `sim_throughput` workload mix at the paper's 16-core
/// configuration. `quick` is the CI-smoke subset (fewer cells, fewer
/// reps); the full mix is what `BENCH_simcore.json` records.
#[must_use]
pub fn workload_mix(quick: bool) -> Vec<Case> {
    let inner = |full: u32| if quick { (full / 4).max(1) } else { full };
    let mut mix = vec![
        Case {
            kind: CaseKind::Contended,
            system: HtmSystem::Chats,
            inner: inner(4),
        },
        Case {
            kind: CaseKind::Registry("cadd"),
            system: HtmSystem::Chats,
            inner: inner(16),
        },
    ];
    if !quick {
        mix.extend([
            Case {
                kind: CaseKind::Contended,
                system: HtmSystem::Baseline,
                inner: 2,
            },
            Case {
                kind: CaseKind::Registry("cadd"),
                system: HtmSystem::Baseline,
                inner: 16,
            },
            Case {
                kind: CaseKind::Registry("genome"),
                system: HtmSystem::Chats,
                inner: 64,
            },
            Case {
                kind: CaseKind::Registry("kmeans-h"),
                system: HtmSystem::Chats,
                inner: 16,
            },
        ]);
    }
    // The smart-contract frontier: one paper-scale run is 104k user
    // transactions (16 threads x 6500) against one hot contract, the
    // heaviest single cell in the mix — `inner: 1` in both modes.
    mix.push(Case {
        kind: CaseKind::Registry("evm-token-storm"),
        system: HtmSystem::Chats,
        inner: 1,
    });
    mix
}

/// The contended kernel: `iters` transactions of read-modify-write on a
/// random word of an 8-line hot region, per thread.
fn contended_program(iters: u64) -> Program {
    let mut b = ProgramBuilder::new();
    let (i, n, addr, v, bound) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
    b.imm(i, 0).imm(n, iters);
    let top = b.label();
    b.bind(top);
    b.tx_begin();
    b.imm(bound, 8);
    b.rand(addr, bound);
    b.shli(addr, addr, 3);
    b.load(v, addr);
    b.addi(v, v, 1);
    b.store(addr, v);
    b.tx_end();
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    b.build()
}

/// Transactions per thread in the contended kernel — sized so one run is
/// tens of milliseconds of simulation on the 16-core paper config.
const CONTENDED_ITERS: u64 = 1000;

/// The contended kernel at the baseline iteration count, shared with the
/// commitment-overhead bench so both of its arms run the identical
/// program the off-arm (`measure_case`) runs.
pub(crate) fn contended_program_for_bench() -> Program {
    contended_program(CONTENDED_ITERS)
}

/// Runs the case's `inner` back-to-back simulations inside one timed
/// region and returns the summed stats plus the wall time of the whole
/// region. Per-run counters are deterministic, so the sum is too.
fn execute_once(case: &Case) -> (RunStats, Duration) {
    let mut total = RunStats::default();
    let add = |total: &mut RunStats, s: &RunStats| {
        total.events += s.events;
        total.cycles += s.cycles;
        total.instructions += s.instructions;
        total.commits += s.commits;
    };
    match case.kind {
        CaseKind::Contended => {
            let sys = SystemConfig::default(); // paper Table I, 16 cores
            let prog = contended_program(CONTENDED_ITERS);
            let t0 = Instant::now();
            for _ in 0..case.inner.max(1) {
                let mut m = Machine::new(
                    sys,
                    PolicyConfig::for_system(case.system),
                    Tuning::default(),
                    3,
                );
                for t in 0..sys.core.cores {
                    m.load_thread(t, Vm::new(prog.clone(), t as u64));
                }
                let stats = m.run(2_000_000_000).expect("contended kernel completes");
                add(&mut total, &stats);
            }
            (total, t0.elapsed())
        }
        CaseKind::Registry(name) => {
            let w = registry::by_name(name).expect("baseline mix names a registered workload");
            let cfg = RunConfig::paper();
            let t0 = Instant::now();
            for _ in 0..case.inner.max(1) {
                let out = run_workload(w.as_ref(), PolicyConfig::for_system(case.system), &cfg)
                    .expect("paper-config run completes");
                add(&mut total, &out.stats);
            }
            (total, t0.elapsed())
        }
    }
}

/// Measures one case: best wall time over `reps` runs (the minimum is the
/// least noisy estimator for a deterministic workload).
#[must_use]
pub fn measure_case(case: &Case, reps: u32) -> Measurement {
    let mut best: Option<(RunStats, Duration)> = None;
    for _ in 0..reps.max(1) {
        let (stats, wall) = execute_once(case);
        if let Some((prev, best_wall)) = &best {
            debug_assert_eq!(prev.events, stats.events, "baseline runs are deterministic");
            if wall < *best_wall {
                best = Some((stats, wall));
            }
        } else {
            best = Some((stats, wall));
        }
    }
    let (stats, wall) = best.expect("at least one rep");
    let cores = match case.kind {
        CaseKind::Contended => SystemConfig::default().core.cores,
        CaseKind::Registry(_) => RunConfig::paper().threads,
    };
    Measurement {
        name: case.name(),
        cores,
        events: stats.events,
        cycles: stats.cycles,
        instructions: stats.instructions,
        commits: stats.commits,
        wall,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Measures the whole mix.
#[must_use]
pub fn measure_mix(quick: bool) -> Vec<Measurement> {
    let reps = if quick { 2 } else { 3 };
    workload_mix(quick)
        .iter()
        .map(|c| measure_case(c, reps))
        .collect()
}

/// `VmHWM` from `/proc/self/status` in kB; 0 where unavailable.
#[must_use]
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Serializes measurements into one labelled baseline section.
#[must_use]
pub fn section_json(label: &str, quick: bool, runs: &[Measurement]) -> Json {
    let mut root = BTreeMap::new();
    root.insert("label".to_string(), Json::Str(label.to_string()));
    root.insert(
        "mix".to_string(),
        Json::Str(format!(
            "sim_throughput {} mix, 16-core paper config",
            if quick { "quick" } else { "full" }
        )),
    );
    root.insert(
        "runs".to_string(),
        Json::Arr(
            runs.iter()
                .map(|m| {
                    let mut r = BTreeMap::new();
                    r.insert("name".to_string(), Json::Str(m.name.clone()));
                    r.insert("cores".to_string(), Json::U64(m.cores as u64));
                    r.insert("events".to_string(), Json::U64(m.events));
                    r.insert("cycles".to_string(), Json::U64(m.cycles));
                    r.insert("instructions".to_string(), Json::U64(m.instructions));
                    r.insert("commits".to_string(), Json::U64(m.commits));
                    r.insert(
                        "wall_ms".to_string(),
                        Json::F64(m.wall.as_secs_f64() * 1000.0),
                    );
                    r.insert("events_per_sec".to_string(), Json::F64(m.events_per_sec()));
                    r.insert("cycles_per_sec".to_string(), Json::F64(m.cycles_per_sec()));
                    r.insert(
                        "commits_per_sec".to_string(),
                        Json::F64(m.commits_per_sec()),
                    );
                    r.insert("peak_rss_kb".to_string(), Json::U64(m.peak_rss_kb));
                    Json::Obj(r)
                })
                .collect(),
        ),
    );
    Json::Obj(root)
}

/// Renders a terminal table of measurements.
#[must_use]
pub fn table(runs: &[Measurement]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<20} {:>8} {:>12} {:>12} {:>10} {:>14} {:>12} {:>12}",
        "workload/system",
        "cores",
        "events",
        "cycles",
        "wall ms",
        "events/sec",
        "commits/sec",
        "peak RSS kB"
    );
    for m in runs {
        let _ = writeln!(
            s,
            "{:<20} {:>8} {:>12} {:>12} {:>10.1} {:>14.0} {:>12.0} {:>12}",
            m.name,
            m.cores,
            m.events,
            m.cycles,
            m.wall.as_secs_f64() * 1000.0,
            m.events_per_sec(),
            m.commits_per_sec(),
            m.peak_rss_kb
        );
    }
    s
}

/// Extracts the section to gate against from a committed
/// `BENCH_simcore.json` document: the `after` section when present
/// (before/after trajectory layout), else the document itself (a plain
/// section as written by `--out`).
fn gate_section(doc: &Json) -> &Json {
    // A dedicated "gate" section holds the regression floors: the "after"
    // numbers are same-conditions A/B evidence (per-case best of several
    // rounds), which host noise alone can undercut by >10%. The gate
    // floors bake in that noise margin so the CI check trips on real
    // regressions, not on a loaded runner.
    doc.get("gate").or_else(|| doc.get("after")).unwrap_or(doc)
}

/// Diffs `measured` against the committed baseline document: every
/// measured case that also appears in the baseline must reach at least
/// `1 - tolerance` of each committed throughput floor — events/sec
/// always, commits/sec (user-txns/sec) where the committed entry records
/// one. Returns a human-readable report; `Err` when any case regresses
/// past the gate.
///
/// # Errors
///
/// Returns the offending cases, with measured vs committed numbers.
pub fn check_against(
    baseline_doc: &Json,
    measured: &[Measurement],
    tolerance: f64,
) -> Result<String, String> {
    let section = gate_section(baseline_doc);
    let Some(Json::Arr(runs)) = section.get("runs") else {
        return Err("baseline document has no 'runs' array".to_string());
    };
    let committed: BTreeMap<String, (Option<f64>, Option<f64>)> = runs
        .iter()
        .filter_map(|r| {
            let name = r.get("name").and_then(Json::as_str)?;
            let eps = r.get("events_per_sec").and_then(Json::as_f64);
            let cps = r.get("commits_per_sec").and_then(Json::as_f64);
            (eps.is_some() || cps.is_some()).then(|| (name.to_string(), (eps, cps)))
        })
        .collect();
    let mut report = String::new();
    let mut failures = String::new();
    use std::fmt::Write as _;
    for m in measured {
        let Some(&(eps, cps)) = committed.get(&m.name) else {
            let _ = writeln!(report, "{}: not in committed baseline, skipped", m.name);
            continue;
        };
        let gates = [
            ("ev/s", m.events_per_sec(), eps),
            ("commits/s", m.commits_per_sec(), cps),
        ];
        for (unit, got, floor) in gates {
            let Some(base) = floor else { continue };
            let ratio = got / base;
            let verdict = if ratio >= 1.0 - tolerance {
                "ok"
            } else {
                "REGRESSION"
            };
            let line = format!(
                "{}: measured {:.0} {unit} vs committed {:.0} {unit} ({:+.1}%) {}",
                m.name,
                got,
                base,
                (ratio - 1.0) * 100.0,
                verdict
            );
            let _ = writeln!(report, "{line}");
            if verdict == "REGRESSION" {
                let _ = writeln!(failures, "{line}");
            }
        }
    }
    if failures.is_empty() {
        Ok(report)
    } else {
        Err(format!(
            "throughput regressed more than {:.0}% against the committed \
             baseline:\n{failures}\nfull diff:\n{report}",
            tolerance * 100.0
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(name: &str, events: u64, wall_ms: u64) -> Measurement {
        Measurement {
            name: name.to_string(),
            cores: 16,
            events,
            cycles: events * 4,
            instructions: events,
            commits: events / 2,
            wall: Duration::from_millis(wall_ms),
            peak_rss_kb: 1,
        }
    }

    #[test]
    fn mix_has_quick_subset() {
        let quick = workload_mix(true);
        let full = workload_mix(false);
        assert!(quick.len() < full.len());
        let full_names: Vec<String> = full.iter().map(Case::name).collect();
        for c in &quick {
            assert!(
                full_names.contains(&c.name()),
                "{} not in full mix",
                c.name()
            );
        }
    }

    #[test]
    fn section_json_round_trips() {
        let runs = vec![fake("contended/chats", 10_000, 10)];
        let doc = section_json("test", true, &runs);
        let back = Json::parse(&doc.to_pretty()).unwrap();
        assert_eq!(back, doc);
        let arr = back.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].get("events").and_then(Json::as_u64), Some(10_000u64));
    }

    #[test]
    fn gate_accepts_within_tolerance_and_rejects_regressions() {
        let committed = section_json("base", true, &[fake("contended/chats", 1_000_000, 1000)]);
        // 5% slower than committed: inside a 10% gate.
        let ok = check_against(&committed, &[fake("contended/chats", 950_000, 1000)], 0.10);
        assert!(ok.is_ok(), "{ok:?}");
        // 20% slower: outside the gate.
        let bad = check_against(&committed, &[fake("contended/chats", 800_000, 1000)], 0.10);
        let err = bad.unwrap_err();
        assert!(err.contains("REGRESSION"), "{err}");
        // Unknown cases are skipped, not failed.
        let skip = check_against(&committed, &[fake("novel/chats", 1, 1000)], 0.10);
        assert!(skip.unwrap().contains("skipped"));
    }

    #[test]
    fn commits_floor_gates_independently_of_events() {
        // A hand-written gate entry may carry only the user-txns/sec
        // floor (no events_per_sec): the commits gate must still trip.
        let entry = Json::Obj(
            [
                (
                    "name".to_string(),
                    Json::Str("evm-token-storm/chats".to_string()),
                ),
                ("commits_per_sec".to_string(), Json::F64(100_000.0)),
            ]
            .into_iter()
            .collect(),
        );
        let doc = Json::Obj(
            [("runs".to_string(), Json::Arr(vec![entry]))]
                .into_iter()
                .collect(),
        );
        // fake() commits = events/2, wall 1s: 240k commits/s clears the
        // 100k floor even though no events floor exists.
        let ok = check_against(&doc, &[fake("evm-token-storm/chats", 480_000, 1000)], 0.10);
        assert!(ok.unwrap().contains("commits/s"));
        // 80k commits/s is below floor * (1 - 0.10).
        let bad = check_against(&doc, &[fake("evm-token-storm/chats", 160_000, 1000)], 0.10);
        let err = bad.unwrap_err();
        assert!(
            err.contains("commits/s") && err.contains("REGRESSION"),
            "{err}"
        );
    }

    #[test]
    fn gate_prefers_after_section() {
        let mut root = BTreeMap::new();
        root.insert(
            "before".to_string(),
            section_json("old", true, &[fake("contended/chats", 100, 1000)]),
        );
        root.insert(
            "after".to_string(),
            section_json("new", true, &[fake("contended/chats", 1_000, 1000)]),
        );
        let doc = Json::Obj(root);
        // Measured matches `after`, which would fail against `before`'s
        // stale number if the gate picked the wrong section.
        let res = check_against(&doc, &[fake("contended/chats", 1_000, 1000)], 0.10);
        assert!(res.is_ok(), "{res:?}");
    }

    #[test]
    fn gate_prefers_dedicated_gate_floors() {
        let mut root = BTreeMap::new();
        root.insert(
            "after".to_string(),
            section_json("new", true, &[fake("contended/chats", 1_000, 1000)]),
        );
        root.insert(
            "gate".to_string(),
            section_json("floor", true, &[fake("contended/chats", 700, 1000)]),
        );
        let doc = Json::Obj(root);
        // 75% of the `after` number, but above the explicit gate floor.
        let res = check_against(&doc, &[fake("contended/chats", 750, 1000)], 0.10);
        assert!(res.is_ok(), "{res:?}");
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_kb() > 0);
        }
    }
}
