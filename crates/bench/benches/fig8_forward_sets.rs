//! Figure 8 bench: forwardable-block-set (R/W, W, Rrestrict/W) sweeps.

mod common;

use chats_core::{ForwardSet, HtmSystem, PolicyConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_forward_sets");
    g.sample_size(10);
    for fs in [
        ForwardSet::ReadWrite,
        ForwardSet::WriteOnly,
        ForwardSet::RestrictedReadWrite,
    ] {
        g.bench_function(format!("llb-h/CHATS/{}", fs.label()), |b| {
            b.iter(|| {
                black_box(common::simulate(
                    "llb-h",
                    PolicyConfig::for_system(HtmSystem::Chats).with_forward_set(fs),
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
