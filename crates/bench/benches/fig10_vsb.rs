//! Figure 10 bench: VSB size × validation interval sweeps.

mod common;

use chats_core::{HtmSystem, PolicyConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_vsb");
    g.sample_size(10);
    for vsb in [1usize, 4, 32] {
        for interval in [50u64, 400] {
            g.bench_function(format!("kmeans-h/CHATS/vsb{vsb}/iv{interval}"), |b| {
                b.iter(|| {
                    black_box(common::simulate(
                        "kmeans-h",
                        PolicyConfig::for_system(HtmSystem::Chats)
                            .with_vsb_size(vsb)
                            .with_validation_interval(interval),
                    ))
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
