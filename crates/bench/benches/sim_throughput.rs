//! Simulator-engineering bench: raw throughput of the timing machine
//! itself, plus the cost of the pure CHATS decision function (which in
//! hardware would be a handful of gates on the L1 probe path).

use chats_core::{chats_resolve, HtmSystem, Pic, PicContext, PolicyConfig};
use chats_machine::{Machine, Tuning};
use chats_sim::SystemConfig;
use chats_tvm::{ProgramBuilder, Reg, Vm};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn contended_machine(system: HtmSystem) -> u64 {
    let mut b = ProgramBuilder::new();
    let (i, n, addr, v, bound) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
    b.imm(i, 0).imm(n, 50);
    let top = b.label();
    b.bind(top);
    b.tx_begin();
    b.imm(bound, 8);
    b.rand(addr, bound);
    b.shli(addr, addr, 3);
    b.load(v, addr);
    b.addi(v, v, 1);
    b.store(addr, v);
    b.tx_end();
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    let prog = b.build();
    let mut m = Machine::new(
        SystemConfig::small_test(),
        PolicyConfig::for_system(system),
        Tuning::default(),
        3,
    );
    for t in 0..4 {
        m.load_thread(t, Vm::new(prog.clone(), t as u64));
    }
    m.run(50_000_000).expect("bench machine completes").cycles
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(20);
    g.bench_function("machine/baseline", |b| {
        b.iter(|| black_box(contended_machine(HtmSystem::Baseline)))
    });
    g.bench_function("machine/chats", |b| {
        b.iter(|| black_box(contended_machine(HtmSystem::Chats)))
    });
    g.bench_function("decision/chats_resolve", |b| {
        let ctx = PicContext {
            pic: Pic::new(7),
            cons: false,
        };
        b.iter(|| black_box(chats_resolve(black_box(ctx), black_box(Pic::new(12)))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
