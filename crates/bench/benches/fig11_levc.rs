//! Figure 11 bench: CHATS / PCHATS vs LEVC-BE-Idealized.

mod common;

use chats_core::HtmSystem;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_levc");
    g.sample_size(10);
    for wl in ["intruder", "kmeans-h", "yada"] {
        for sys in [
            HtmSystem::Chats,
            HtmSystem::Pchats,
            HtmSystem::LevcBeIdealized,
        ] {
            g.bench_function(format!("{wl}/{}", sys.label()), |b| {
                b.iter(|| black_box(common::simulate_sys(wl, sys)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
