//! Shared helpers for the per-figure Criterion benches.
//!
//! Criterion measures wall-clock time of the *simulations that regenerate
//! each figure*; the figure's scientific output (the normalized series) is
//! printed by the `figures` binary. Benches run at `Scale::Quick` so a full
//! `cargo bench` stays in CI budgets; pass-through of the measured cell is
//! identical to the paper-scale harness apart from the machine size.
#![allow(dead_code)] // not every per-figure bench uses every helper

use chats_bench::{Harness, Scale};
use chats_core::{HtmSystem, PolicyConfig};
use chats_workloads::{registry, run_workload};

/// Runs one (workload, policy) cell from scratch (no memoization — this is
/// the timed body).
pub fn simulate(workload: &str, policy: PolicyConfig) -> u64 {
    let w = registry::by_name(workload).expect("workload exists");
    let cfg = Scale::Quick.run_config();
    run_workload(w.as_ref(), policy, &cfg)
        .expect("simulation succeeds")
        .stats
        .cycles
}

/// Runs one cell by system shorthand.
pub fn simulate_sys(workload: &str, system: HtmSystem) -> u64 {
    simulate(workload, PolicyConfig::for_system(system))
}

/// A memoizing harness for benches that assert figure shapes once.
pub fn quick_harness() -> Harness {
    Harness::new(Scale::Quick)
}
