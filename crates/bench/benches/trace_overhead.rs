//! Observability-engineering bench: what tracing costs the simulator.
//!
//! The null path (tracing off) must stay free — emission sites guard on
//! `trace.enabled()` and build no events — while the ring and vec sinks
//! bound the cost of full-fidelity capture.

use chats_core::{HtmSystem, PolicyConfig};
use chats_machine::{Machine, RingSink, Tuning};
use chats_obs::VecSink;
use chats_sim::SystemConfig;
use chats_tvm::{Program, ProgramBuilder, Reg, Vm};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn contended_program() -> Program {
    let mut b = ProgramBuilder::new();
    let (i, n, addr, v, bound) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));
    b.imm(i, 0).imm(n, 50);
    let top = b.label();
    b.bind(top);
    b.tx_begin();
    b.imm(bound, 8);
    b.rand(addr, bound);
    b.shli(addr, addr, 3);
    b.load(v, addr);
    b.addi(v, v, 1);
    b.store(addr, v);
    b.tx_end();
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    b.build()
}

fn machine(prog: &Program) -> Machine {
    let mut m = Machine::new(
        SystemConfig::small_test(),
        PolicyConfig::for_system(HtmSystem::Chats),
        Tuning::default(),
        3,
    );
    for t in 0..4 {
        m.load_thread(t, Vm::new(prog.clone(), t as u64));
    }
    m
}

fn bench(c: &mut Criterion) {
    let prog = contended_program();
    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(20);
    g.bench_function("sink/off", |b| {
        b.iter(|| {
            let mut m = machine(&prog);
            black_box(m.run(50_000_000).expect("completes").cycles)
        })
    });
    g.bench_function("sink/ring1k", |b| {
        b.iter(|| {
            let mut m = machine(&prog);
            m.set_trace_sink(Box::new(RingSink::new(1024)));
            black_box(m.run(50_000_000).expect("completes").cycles)
        })
    });
    g.bench_function("sink/vec", |b| {
        b.iter(|| {
            let mut m = machine(&prog);
            m.set_trace_sink(Box::new(VecSink::new()));
            black_box(m.run(50_000_000).expect("completes").cycles)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
