//! Figure 1 bench: naive requester-speculates vs the best-effort baseline.
//!
//! Times the simulations that produce the Fig. 1 series on a contended and
//! an uncontended benchmark.

mod common;

use chats_core::HtmSystem;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_naive");
    g.sample_size(10);
    for wl in ["kmeans-h", "ssca2"] {
        for sys in [HtmSystem::Baseline, HtmSystem::NaiveRs] {
            g.bench_function(format!("{wl}/{}", sys.label()), |b| {
                b.iter(|| black_box(common::simulate_sys(wl, sys)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
