//! Figure 6 bench: forwarding-outcome accounting simulations.

mod common;

use chats_bench::Scale;
use chats_core::{HtmSystem, PolicyConfig};
use chats_workloads::{registry, run_workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn forwarder_commits(workload: &str, system: HtmSystem) -> u64 {
    let w = registry::by_name(workload).unwrap();
    let cfg = Scale::Quick.run_config();
    run_workload(w.as_ref(), PolicyConfig::for_system(system), &cfg)
        .unwrap()
        .stats
        .forwarder_outcomes
        .committed
}

fn bench(c: &mut Criterion) {
    // Shape assertion: under CHATS, forwarding transactions commit.
    assert!(
        forwarder_commits("kmeans-h", HtmSystem::Chats) > 0,
        "fig6 shape violated: no forwarder ever committed"
    );

    let mut g = c.benchmark_group("fig6_forwarding");
    g.sample_size(10);
    for wl in ["kmeans-h", "genome", "cadd"] {
        g.bench_function(format!("{wl}/CHATS"), |b| {
            b.iter(|| black_box(forwarder_commits(wl, HtmSystem::Chats)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
