//! Figure 5 bench: abort-cause breakdown simulations.

mod common;

use chats_bench::Scale;
use chats_core::{HtmSystem, PolicyConfig};
use chats_workloads::{registry, run_workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn aborts(workload: &str, system: HtmSystem) -> u64 {
    let w = registry::by_name(workload).unwrap();
    let cfg = Scale::Quick.run_config();
    run_workload(w.as_ref(), PolicyConfig::for_system(system), &cfg)
        .unwrap()
        .stats
        .total_aborts()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_aborts");
    g.sample_size(10);
    for wl in ["yada", "intruder"] {
        for sys in [HtmSystem::Baseline, HtmSystem::Chats] {
            g.bench_function(format!("{wl}/{}", sys.label()), |b| {
                b.iter(|| black_box(aborts(wl, sys)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
