//! Figure 4 bench: normalized execution time of the five main systems.
//!
//! Times one representative contended cell per system and checks the
//! headline ordering (CHATS faster than the baseline) once per run.

mod common;

use chats_core::HtmSystem;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Shape assertion (not timed): CHATS must beat the baseline on the
    // contended benchmark this figure's story hinges on.
    let base = common::simulate_sys("kmeans-h", HtmSystem::Baseline);
    let chats = common::simulate_sys("kmeans-h", HtmSystem::Chats);
    assert!(
        chats < base,
        "fig4 shape violated: CHATS {chats} !< baseline {base}"
    );

    let mut g = c.benchmark_group("fig4_exectime");
    g.sample_size(10);
    for sys in [
        HtmSystem::Baseline,
        HtmSystem::NaiveRs,
        HtmSystem::Chats,
        HtmSystem::Power,
        HtmSystem::Pchats,
    ] {
        g.bench_function(format!("kmeans-h/{}", sys.label()), |b| {
            b.iter(|| black_box(common::simulate_sys("kmeans-h", sys)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
