//! Figure 9 bench: retry-threshold sensitivity sweeps.

mod common;

use chats_core::{HtmSystem, PolicyConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_retries");
    g.sample_size(10);
    for retries in [1u32, 6, 32] {
        for sys in [HtmSystem::Baseline, HtmSystem::Chats] {
            g.bench_function(format!("kmeans-h/{}/r{retries}", sys.label()), |b| {
                b.iter(|| {
                    black_box(common::simulate(
                        "kmeans-h",
                        PolicyConfig::for_system(sys).with_retries(retries),
                    ))
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
