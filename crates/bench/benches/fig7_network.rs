//! Figure 7 bench: interconnect flit-accounting simulations.

mod common;

use chats_bench::Scale;
use chats_core::{HtmSystem, PolicyConfig};
use chats_workloads::{registry, run_workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn flits(workload: &str, system: HtmSystem) -> u64 {
    let w = registry::by_name(workload).unwrap();
    let cfg = Scale::Quick.run_config();
    run_workload(w.as_ref(), PolicyConfig::for_system(system), &cfg)
        .unwrap()
        .stats
        .flits
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_network");
    g.sample_size(10);
    for wl in ["kmeans-h", "yada"] {
        for sys in [HtmSystem::Baseline, HtmSystem::Chats, HtmSystem::NaiveRs] {
            g.bench_function(format!("{wl}/{}", sys.label()), |b| {
                b.iter(|| black_box(flits(wl, sys)))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
