//! Shape regressions: the qualitative results each figure's story depends
//! on, asserted at quick scale so CI catches a regression in any layer —
//! policy logic, protocol, workloads or harness.

use chats_bench::{Harness, Scale};
use chats_core::{ForwardSet, HtmSystem, PolicyConfig};
use chats_workloads::registry;

fn harness() -> Harness {
    Harness::new(Scale::Quick)
}

#[test]
fn chats_beats_baseline_on_contended_benchmarks() {
    let h = harness();
    for name in ["kmeans-h", "genome", "yada"] {
        let base = h.measure_named(name, HtmSystem::Baseline).cycles;
        let chats = h.measure_named(name, HtmSystem::Chats).cycles;
        assert!(
            chats < base,
            "{name}: CHATS {chats} must beat baseline {base}"
        );
    }
}

#[test]
fn uncontended_benchmarks_are_flat() {
    let h = harness();
    for name in ["ssca2", "vacation-l"] {
        let base = h.measure_named(name, HtmSystem::Baseline).cycles as f64;
        for sys in [HtmSystem::Chats, HtmSystem::Pchats, HtmSystem::Power] {
            let v = h.measure_named(name, sys).cycles as f64 / base;
            assert!(
                (0.9..=1.1).contains(&v),
                "{name} under {sys:?}: {v:.3} should be ~1.0"
            );
        }
    }
}

#[test]
fn chats_cuts_aborts_on_contention() {
    let h = harness();
    let base = h
        .measure_named("kmeans-h", HtmSystem::Baseline)
        .total_aborts();
    let chats = h.measure_named("kmeans-h", HtmSystem::Chats).total_aborts();
    assert!(chats < base, "CHATS aborts {chats} !< baseline {base}");
}

#[test]
fn chats_cuts_network_flits_on_contention() {
    let h = harness();
    let base = h.measure_named("kmeans-h", HtmSystem::Baseline).flits;
    let chats = h.measure_named("kmeans-h", HtmSystem::Chats).flits;
    assert!(
        chats < base,
        "Fig. 7 shape: CHATS flits {chats} !< baseline {base}"
    );
}

#[test]
fn forwarding_systems_forward_and_others_do_not() {
    let h = harness();
    for sys in HtmSystem::ALL {
        let fwd = h.measure_named("kmeans-h", sys).forwardings;
        if sys.forwards() {
            assert!(fwd > 0, "{sys:?} should forward on kmeans-h");
        } else {
            assert_eq!(fwd, 0, "{sys:?} must never forward");
        }
    }
}

#[test]
fn restricted_forward_set_is_not_worse_than_write_only() {
    let h = harness();
    let w = registry::by_name("llb-h").unwrap();
    let restricted = h
        .measure(
            w.as_ref(),
            PolicyConfig::for_system(HtmSystem::Chats)
                .with_forward_set(ForwardSet::RestrictedReadWrite),
        )
        .cycles;
    let write_only = h
        .measure(
            w.as_ref(),
            PolicyConfig::for_system(HtmSystem::Chats).with_forward_set(ForwardSet::WriteOnly),
        )
        .cycles;
    assert!(
        restricted <= write_only,
        "Fig. 8 shape: Rrestrict/W {restricted} should not lose to W {write_only}"
    );
}

#[test]
fn chats_prefers_many_retries() {
    let h = harness();
    let w = registry::by_name("kmeans-h").unwrap();
    let one = h
        .measure(
            w.as_ref(),
            PolicyConfig::for_system(HtmSystem::Chats).with_retries(1),
        )
        .cycles;
    let many = h
        .measure(
            w.as_ref(),
            PolicyConfig::for_system(HtmSystem::Chats).with_retries(32),
        )
        .cycles;
    assert!(
        many <= one,
        "Fig. 9 shape: CHATS with 32 retries ({many}) should not lose to 1 retry ({one})"
    );
}

#[test]
fn vsb_four_matches_vsb_thirty_two() {
    let h = harness();
    let w = registry::by_name("kmeans-h").unwrap();
    let four = h
        .measure(
            w.as_ref(),
            PolicyConfig::for_system(HtmSystem::Chats).with_vsb_size(4),
        )
        .cycles as f64;
    let thirty_two = h
        .measure(
            w.as_ref(),
            PolicyConfig::for_system(HtmSystem::Chats).with_vsb_size(32),
        )
        .cycles as f64;
    let ratio = four / thirty_two;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "Fig. 10 shape: VSB=4 must be within 10% of VSB=32, ratio {ratio:.3}"
    );
}

#[test]
fn chats_beats_idealized_levc_on_intruder() {
    let h = harness();
    let chats = h.measure_named("intruder", HtmSystem::Chats).cycles;
    let levc = h
        .measure_named("intruder", HtmSystem::LevcBeIdealized)
        .cycles;
    assert!(
        chats < levc,
        "Fig. 11 shape: PiC context must beat static timestamps on intruder"
    );
}

#[test]
fn every_experiment_id_runs_at_quick_scale() {
    // Smoke the whole harness surface: most ids share the memoized cells,
    // so this stays fast while covering fig5/6/7 code paths.
    let h = harness();
    for id in [
        "table1",
        "table2",
        "fig5",
        "fig6",
        "chains",
        "ablations",
        "picwidth",
    ] {
        let t = chats_bench::figures::run_by_name(&h, id);
        assert!(!t.is_empty(), "{id} produced an empty table");
    }
}
