#![warn(missing_docs)]

//! Crossbar interconnect model.
//!
//! Models the paper's network configuration (Table I): a crossbar with
//! 1-cycle links, 16-byte flits, 1-flit control messages and 5-flit data
//! messages, 1 flit per cycle per link. Every node owns an egress port that
//! serializes outgoing flits, which provides first-order contention; the
//! crossbar itself is non-blocking.
//!
//! The model answers one question — *when does a message injected now
//! arrive?* — and counts flits for the Figure 7 network-usage experiment.
//!
//! # Example
//!
//! ```
//! use chats_noc::{MsgClass, Crossbar, NodeId};
//! use chats_sim::{Cycle, NocConfig};
//!
//! let mut xbar = Crossbar::new(NocConfig::default(), 3);
//! let arrive = xbar.send(Cycle(0), NodeId(0), NodeId(2), MsgClass::Data);
//! // 5 flits serialize over 5 cycles, then 1 cycle of link latency.
//! assert_eq!(arrive, Cycle(6));
//! assert_eq!(xbar.flits_sent(), 5);
//! ```

use chats_sim::{Cycle, NocConfig};
use std::fmt;

/// A network endpoint: core caches `0..n`, then the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Message size class, which determines the flit count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MsgClass {
    /// Requests, acks, nacks, unblocks: 1 flit.
    Control,
    /// Anything carrying a 64-byte line (including `SpecResp`): 5 flits.
    Data,
}

/// The crossbar network.
///
/// Deterministic and purely computational: `send` returns the arrival time
/// and updates port-occupancy bookkeeping and flit counters.
#[derive(Debug, Clone)]
pub struct Crossbar {
    cfg: NocConfig,
    egress_free: Vec<Cycle>,
    flits: u64,
    control_msgs: u64,
    data_msgs: u64,
}

impl Crossbar {
    /// Creates a crossbar connecting `nodes` endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(cfg: NocConfig, nodes: usize) -> Crossbar {
        assert!(nodes > 0, "a network needs at least one node");
        Crossbar {
            cfg,
            egress_free: vec![Cycle::ZERO; nodes],
            flits: 0,
            control_msgs: 0,
            data_msgs: 0,
        }
    }

    /// Number of flits in a message of class `class`.
    #[must_use]
    pub fn flits_of(&self, class: MsgClass) -> u64 {
        match class {
            MsgClass::Control => self.cfg.control_flits,
            MsgClass::Data => self.cfg.data_flits,
        }
    }

    /// Injects a message at `now` from `src` to `dst`; returns its arrival
    /// time at `dst`, accounting for egress serialization at `src` and link
    /// latency.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is out of range.
    pub fn send(&mut self, now: Cycle, src: NodeId, dst: NodeId, class: MsgClass) -> Cycle {
        assert!(src.0 < self.egress_free.len(), "src {src} out of range");
        assert!(dst.0 < self.egress_free.len(), "dst {dst} out of range");
        let flits = self.flits_of(class);
        self.flits += flits;
        match class {
            MsgClass::Control => self.control_msgs += 1,
            MsgClass::Data => self.data_msgs += 1,
        }
        let depart = now.max(self.egress_free[src.0]);
        let done = depart + flits; // 1 flit per cycle serialization
        self.egress_free[src.0] = done;
        done + self.cfg.link_latency
    }

    /// Total flits injected so far (the Figure 7 metric).
    #[must_use]
    pub fn flits_sent(&self) -> u64 {
        self.flits
    }

    /// Control messages injected so far.
    #[must_use]
    pub fn control_messages(&self) -> u64 {
        self.control_msgs
    }

    /// Data messages injected so far.
    #[must_use]
    pub fn data_messages(&self) -> u64 {
        self.data_msgs
    }

    /// Resets flit and message counters (port occupancy is preserved).
    pub fn reset_counters(&mut self) {
        self.flits = 0;
        self.control_msgs = 0;
        self.data_msgs = 0;
    }

    /// Serializes the dynamic network state: port occupancy and flit
    /// counters. The configuration is not written — a restored crossbar
    /// is rebuilt from the machine's config first.
    pub fn save_state(&self, w: &mut chats_snap::SnapWriter) {
        use chats_snap::Snap;
        self.egress_free.save(w);
        w.u64(self.flits);
        w.u64(self.control_msgs);
        w.u64(self.data_msgs);
    }

    /// Restores state captured by [`Crossbar::save_state`].
    ///
    /// # Errors
    ///
    /// Fails on a malformed stream or a node count that does not match
    /// this crossbar's geometry.
    pub fn restore_state(
        &mut self,
        r: &mut chats_snap::SnapReader<'_>,
    ) -> Result<(), chats_snap::SnapError> {
        use chats_snap::Snap;
        let egress_free: Vec<Cycle> = Snap::load(r)?;
        if egress_free.len() != self.egress_free.len() {
            return Err(r.err(format!(
                "crossbar has {} nodes, snapshot has {}",
                self.egress_free.len(),
                egress_free.len()
            )));
        }
        self.egress_free = egress_free;
        self.flits = r.u64()?;
        self.control_msgs = r.u64()?;
        self.data_msgs = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xbar(nodes: usize) -> Crossbar {
        Crossbar::new(NocConfig::default(), nodes)
    }

    #[test]
    fn control_message_latency() {
        let mut x = xbar(2);
        // 1 flit serialization + 1 cycle link.
        assert_eq!(
            x.send(Cycle(0), NodeId(0), NodeId(1), MsgClass::Control),
            Cycle(2)
        );
    }

    #[test]
    fn data_message_latency() {
        let mut x = xbar(2);
        assert_eq!(
            x.send(Cycle(10), NodeId(1), NodeId(0), MsgClass::Data),
            Cycle(16)
        );
    }

    #[test]
    fn egress_port_serializes() {
        let mut x = xbar(3);
        let a = x.send(Cycle(0), NodeId(0), NodeId(1), MsgClass::Data);
        let b = x.send(Cycle(0), NodeId(0), NodeId(2), MsgClass::Control);
        assert_eq!(a, Cycle(6));
        // Second message waits for the port: departs at 5, +1 flit, +1 link.
        assert_eq!(b, Cycle(7));
    }

    #[test]
    fn distinct_sources_do_not_contend() {
        let mut x = xbar(3);
        let a = x.send(Cycle(0), NodeId(0), NodeId(2), MsgClass::Data);
        let b = x.send(Cycle(0), NodeId(1), NodeId(2), MsgClass::Data);
        assert_eq!(a, b, "crossbar is non-blocking across sources");
    }

    #[test]
    fn idle_port_sends_immediately() {
        let mut x = xbar(2);
        x.send(Cycle(0), NodeId(0), NodeId(1), MsgClass::Data);
        // Long after the port drained, no queuing delay remains.
        assert_eq!(
            x.send(Cycle(100), NodeId(0), NodeId(1), MsgClass::Control),
            Cycle(102)
        );
    }

    #[test]
    fn flit_accounting() {
        let mut x = xbar(2);
        x.send(Cycle(0), NodeId(0), NodeId(1), MsgClass::Data);
        x.send(Cycle(0), NodeId(1), NodeId(0), MsgClass::Control);
        x.send(Cycle(0), NodeId(1), NodeId(0), MsgClass::Data);
        assert_eq!(x.flits_sent(), 5 + 1 + 5);
        assert_eq!(x.control_messages(), 1);
        assert_eq!(x.data_messages(), 2);
        x.reset_counters();
        assert_eq!(x.flits_sent(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_panics() {
        xbar(2).send(Cycle(0), NodeId(0), NodeId(5), MsgClass::Control);
    }
}
