//! Property tests for the crossbar interconnect.

use chats_noc::{Crossbar, MsgClass, NodeId};
use chats_sim::{Cycle, NocConfig};
use proptest::prelude::*;

fn class_strategy() -> impl Strategy<Value = MsgClass> {
    prop_oneof![Just(MsgClass::Control), Just(MsgClass::Data)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Messages from the same source never overtake each other: arrival
    /// times are strictly increasing for monotone injections.
    #[test]
    fn same_source_preserves_order(
        msgs in proptest::collection::vec((class_strategy(), 0u64..5), 1..60),
    ) {
        let mut x = Crossbar::new(NocConfig::default(), 3);
        let mut now = 0u64;
        let mut last_arrival = Cycle::ZERO;
        for (class, gap) in msgs {
            now += gap;
            let arrive = x.send(Cycle(now), NodeId(0), NodeId(2), class);
            prop_assert!(arrive > last_arrival,
                "message injected at {now} arrived at {arrive:?}, not after {last_arrival:?}");
            last_arrival = arrive;
        }
    }

    /// Flit conservation: the total flit count equals the sum of per-class
    /// message counts times their sizes.
    #[test]
    fn flit_accounting_balances(
        msgs in proptest::collection::vec((class_strategy(), 0usize..4, 0usize..4), 1..80),
    ) {
        let cfg = NocConfig::default();
        let mut x = Crossbar::new(cfg, 4);
        for (class, src, dst) in msgs {
            x.send(Cycle(0), NodeId(src), NodeId(dst), class);
        }
        let expect = x.control_messages() * cfg.control_flits
            + x.data_messages() * cfg.data_flits;
        prop_assert_eq!(x.flits_sent(), expect);
    }

    /// Latency lower bound: no message arrives sooner than its
    /// serialization plus link latency.
    #[test]
    fn latency_has_a_floor(
        at in 0u64..10_000,
        class in class_strategy(),
    ) {
        let cfg = NocConfig::default();
        let mut x = Crossbar::new(cfg, 2);
        let arrive = x.send(Cycle(at), NodeId(0), NodeId(1), class);
        let floor = x.flits_of(class) + cfg.link_latency;
        prop_assert!(arrive.0 >= at + floor);
    }

    /// Distinct sources never interfere: a burst from node 1 does not
    /// delay node 0's message.
    #[test]
    fn crossbar_is_non_blocking_across_sources(
        burst in 1usize..20,
    ) {
        let cfg = NocConfig::default();
        let mut quiet = Crossbar::new(cfg, 3);
        let baseline = quiet.send(Cycle(0), NodeId(0), NodeId(2), MsgClass::Data);

        let mut busy = Crossbar::new(cfg, 3);
        for _ in 0..burst {
            busy.send(Cycle(0), NodeId(1), NodeId(2), MsgClass::Data);
        }
        let under_load = busy.send(Cycle(0), NodeId(0), NodeId(2), MsgClass::Data);
        prop_assert_eq!(baseline, under_load);
    }
}
