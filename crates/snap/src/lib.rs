#![warn(missing_docs)]

//! Deterministic binary state codec for machine snapshots.
//!
//! Every piece of simulation state that participates in a checkpoint or a
//! state commitment is funnelled through this crate: a [`SnapWriter`]
//! produces one flat, fully deterministic byte stream (fixed-width
//! little-endian integers, length-prefixed containers, maps spilled in
//! sorted-key order), and a [`SnapReader`] decodes the same stream back.
//! The byte stream serves double duty:
//!
//! * hashed, it is the **state commitment** recorded at epoch boundaries
//!   (`chats_machine::commit`);
//! * stored, it is the body of a **checkpoint** that
//!   `Machine::restore` resumes from.
//!
//! Determinism rules (see DESIGN §16):
//!
//! * integers are fixed-width little-endian; `usize` travels as `u64`;
//! * dense structures are written in index order;
//! * hash maps and sets are written in **sorted key order** — iteration
//!   order of the underlying table must never leak into the stream;
//! * every container is length-prefixed, so streams are self-delimiting
//!   and a reader can't silently misalign.
//!
//! # Example
//!
//! ```
//! use chats_snap::{Snap, SnapReader, SnapWriter};
//!
//! let mut w = SnapWriter::new();
//! (42u64, vec![1u32, 2, 3]).save(&mut w);
//! let bytes = w.into_bytes();
//!
//! let mut r = SnapReader::new(&bytes);
//! let back: (u64, Vec<u32>) = Snap::load(&mut r).unwrap();
//! assert_eq!(back, (42, vec![1, 2, 3]));
//! assert!(r.is_empty());
//! ```

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::{BuildHasher, Hash};
use std::ops::Range;

/// A decode failure: where in the stream it happened and what was expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapError {
    /// Byte offset the reader was at when the failure was detected.
    pub at: usize,
    /// Human-readable description of the mismatch.
    pub what: String,
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "snapshot decode error at byte {}: {}",
            self.at, self.what
        )
    }
}

impl std::error::Error for SnapError {}

/// Deterministic byte-stream encoder with named section marks.
///
/// Sections exist so a machine-state stream can be sub-hashed per
/// subsystem: `mark("cores")` records the current offset under that name,
/// and [`SnapWriter::sections`] later yields each named byte range. The
/// marks are bookkeeping on the side — they do not appear in the byte
/// stream itself, so marked and unmarked writers produce identical bytes.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
    marks: Vec<(&'static str, usize)>,
}

impl SnapWriter {
    /// Fresh empty writer.
    #[must_use]
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    /// Opens a named section at the current offset. The previous section
    /// (if any) ends here.
    pub fn mark(&mut self, name: &'static str) {
        self.marks.push((name, self.buf.len()));
    }

    /// Named byte ranges, in mark order. Each section runs from its mark
    /// to the next mark (or the end of the stream for the last one).
    #[must_use]
    pub fn sections(&self) -> Vec<(&'static str, Range<usize>)> {
        let mut out = Vec::with_capacity(self.marks.len());
        for (i, &(name, start)) in self.marks.iter().enumerate() {
            let end = self
                .marks
                .get(i + 1)
                .map_or(self.buf.len(), |&(_, next)| next);
            out.push((name, start..end));
        }
        out
    }

    /// The bytes written so far.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the byte stream.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current stream length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes with a `u64` length prefix.
    pub fn bytes_prefixed(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }
}

/// Deterministic byte-stream decoder, the mirror of [`SnapWriter`].
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Wraps a byte stream for decoding from its start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> SnapReader<'a> {
        SnapReader { buf, pos: 0 }
    }

    /// Current read offset.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left in the stream.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` once the whole stream has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Builds a [`SnapError`] at the current offset.
    #[must_use]
    pub fn err(&self, what: impl Into<String>) -> SnapError {
        SnapError {
            at: self.pos,
            what: what.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(self.err(format!(
                "need {n} bytes, only {} remain (truncated snapshot?)",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one raw byte.
    ///
    /// # Errors
    ///
    /// Fails if the stream is exhausted.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Fails if the stream is exhausted.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Fails if the stream is exhausted.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `u64` length prefix, sanity-checked so a corrupt stream
    /// can't provoke a huge allocation: each element of the upcoming
    /// container needs at least `min_elem_bytes` bytes of stream.
    ///
    /// # Errors
    ///
    /// Fails on truncation or an implausible length.
    pub fn len_prefix(&mut self, min_elem_bytes: usize) -> Result<usize, SnapError> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| self.err(format!("length {n} overflows usize")))?;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(self.err(format!(
                "length {n} larger than the remaining {} bytes allow",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads a `u64`-length-prefixed byte slice.
    ///
    /// # Errors
    ///
    /// Fails on truncation or an implausible length.
    pub fn bytes_prefixed(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.len_prefix(1)?;
        self.take(n)
    }
}

/// State that can round-trip through the deterministic byte codec.
///
/// `save` followed by `load` must reproduce an equivalent value, and two
/// equal values must always produce identical bytes (no iteration-order
/// or capacity leakage) — the stream is hashed for state commitments.
pub trait Snap: Sized {
    /// Appends this value's canonical encoding to `w`.
    fn save(&self, w: &mut SnapWriter);
    /// Decodes a value from `r`.
    ///
    /// # Errors
    ///
    /// Fails on truncated or malformed input.
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

macro_rules! snap_int {
    ($($t:ty),*) => {$(
        impl Snap for $t {
            fn save(&self, w: &mut SnapWriter) {
                w.u64(*self as u64);
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                let v = r.u64()?;
                <$t>::try_from(v).map_err(|_| r.err(format!(
                    "value {v} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

snap_int!(u16, u32, u64, usize);

impl Snap for u8 {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(*self);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u8()
    }
}

impl Snap for i64 {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(*self as u64);
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(r.u64()? as i64)
    }
}

impl Snap for bool {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(u8::from(*self));
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(r.err(format!("bool byte must be 0 or 1, got {b}"))),
        }
    }
}

impl Snap for String {
    fn save(&self, w: &mut SnapWriter) {
        w.bytes_prefixed(self.as_bytes());
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let b = r.bytes_prefixed()?;
        String::from_utf8(b.to_vec()).map_err(|e| r.err(format!("invalid utf-8 string: {e}")))
    }
}

impl<T: Snap> Snap for Option<T> {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            b => Err(r.err(format!("Option tag must be 0 or 1, got {b}"))),
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.len() as u64);
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len_prefix(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.len() as u64);
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len_prefix(1)?;
        let mut out = VecDeque::with_capacity(n);
        for _ in 0..n {
            out.push_back(T::load(r)?);
        }
        Ok(out)
    }
}

impl<K: Snap + Ord, V: Snap> Snap for BTreeMap<K, V> {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.len() as u64);
        for (k, v) in self {
            k.save(w);
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len_prefix(2)?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::load(r)?;
            let v = V::load(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<K: Snap + Ord> Snap for BTreeSet<K> {
    fn save(&self, w: &mut SnapWriter) {
        w.u64(self.len() as u64);
        for k in self {
            k.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len_prefix(1)?;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            out.insert(K::load(r)?);
        }
        Ok(out)
    }
}

// Hash maps and sets are spilled in sorted-key order so that the byte
// stream never depends on table iteration order (commitment rule).
impl<K, V, S> Snap for HashMap<K, V, S>
where
    K: Snap + Ord + Hash + Eq,
    V: Snap,
    S: BuildHasher + Default,
{
    fn save(&self, w: &mut SnapWriter) {
        let mut keys: Vec<&K> = self.keys().collect();
        keys.sort_unstable();
        w.u64(keys.len() as u64);
        for k in keys {
            k.save(w);
            self[k].save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len_prefix(2)?;
        let mut out = HashMap::with_capacity_and_hasher(n, S::default());
        for _ in 0..n {
            let k = K::load(r)?;
            let v = V::load(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<K, S> Snap for HashSet<K, S>
where
    K: Snap + Ord + Hash + Eq,
    S: BuildHasher + Default,
{
    fn save(&self, w: &mut SnapWriter) {
        let mut keys: Vec<&K> = self.iter().collect();
        keys.sort_unstable();
        w.u64(keys.len() as u64);
        for k in keys {
            k.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len_prefix(1)?;
        let mut out = HashSet::with_capacity_and_hasher(n, S::default());
        for _ in 0..n {
            out.insert(K::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Snap + Copy + Default, const N: usize> Snap for [T; N] {
    fn save(&self, w: &mut SnapWriter) {
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::load(r)?;
        }
        Ok(out)
    }
}

macro_rules! snap_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Snap),+> Snap for ($($name,)+) {
            fn save(&self, w: &mut SnapWriter) {
                $(self.$idx.save(w);)+
            }
            fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
                Ok(($($name::load(r)?,)+))
            }
        }
    };
}

snap_tuple!(A: 0, B: 1);
snap_tuple!(A: 0, B: 1, C: 2);
snap_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Snap + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = SnapWriter::new();
        v.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = T::load(&mut r).expect("decode");
        assert_eq!(&back, v);
        assert!(r.is_empty(), "trailing bytes after {v:?}");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&0u8);
        roundtrip(&255u8);
        roundtrip(&u16::MAX);
        roundtrip(&u32::MAX);
        roundtrip(&u64::MAX);
        roundtrip(&usize::MAX);
        roundtrip(&-1i64);
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&String::from("héllo"));
        roundtrip(&Some(7u64));
        roundtrip(&Option::<u64>::None);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(&vec![1u64, 2, 3]);
        roundtrip(&Vec::<u64>::new());
        roundtrip(&VecDeque::from([1u32, 2, 3]));
        roundtrip(&BTreeMap::from([(1u64, 2u64), (3, 4)]));
        roundtrip(&BTreeSet::from([9u64, 1, 5]));
        roundtrip(&[1u64, 2, 3, 4]);
        roundtrip(&(1u64, true, String::from("x")));
        let mut hm: HashMap<u64, u64> = HashMap::new();
        for i in 0..100 {
            hm.insert(i * 7919 % 101, i);
        }
        roundtrip(&hm);
        let hs: HashSet<u64> = (0..50).map(|i| i * 31 % 97).collect();
        roundtrip(&hs);
    }

    #[test]
    fn hashmap_bytes_are_order_independent() {
        let mut a: HashMap<u64, u64> = HashMap::new();
        let mut b: HashMap<u64, u64> = HashMap::new();
        for i in 0..64u64 {
            a.insert(i, i * 2);
        }
        for i in (0..64u64).rev() {
            b.insert(i, i * 2);
        }
        let (mut wa, mut wb) = (SnapWriter::new(), SnapWriter::new());
        a.save(&mut wa);
        b.save(&mut wb);
        assert_eq!(wa.bytes(), wb.bytes());
    }

    #[test]
    fn sections_cover_stream() {
        let mut w = SnapWriter::new();
        w.mark("a");
        1u64.save(&mut w);
        w.mark("b");
        2u64.save(&mut w);
        3u64.save(&mut w);
        let sections = w.sections();
        assert_eq!(
            sections,
            vec![("a", 0..8), ("b", 8..24)],
            "sections must tile the stream"
        );
    }

    #[test]
    fn corrupt_length_is_rejected_without_allocation() {
        let mut w = SnapWriter::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(Vec::<u64>::load(&mut r).is_err());
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let mut w = SnapWriter::new();
        vec![1u64, 2, 3].save(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..bytes.len() - 1]);
        assert!(Vec::<u64>::load(&mut r).is_err());
    }
}
