//! Perfect read-set signature.
//!
//! Commercial RTM implementations track read sets that can exceed the
//! private cache with a hardware signature. Following the paper's
//! methodology (§VI-B: "we use a perfect signature to track read sets"),
//! this is a *perfect* — false-positive-free — set of line addresses.

use crate::addr::LineAddr;
use crate::fasthash::FastHashSet;

/// Direct-mapped span of the signature bitmap; lines above this spill
/// into a hash set. Matches the backing store's dense region.
const DENSE_SIG_LINES: u64 = 1 << 15;

/// An exact set of lines transactionally read by a core.
///
/// Membership tests and inserts run on the coherence hot path (every
/// load, every incoming exclusive request), so the low-address span is a
/// bitmap plus an insertion log: `contains` is one bit test, `insert`
/// sets a bit and appends, and `clear` — called at every commit and
/// abort — resets only the bits actually set instead of wiping the whole
/// bitmap.
///
/// # Example
///
/// ```
/// use chats_mem::{LineAddr, ReadSignature};
/// let mut sig = ReadSignature::new();
/// sig.insert(LineAddr(7));
/// assert!(sig.contains(LineAddr(7)));
/// sig.clear();
/// assert!(sig.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReadSignature {
    /// One bit per line in the dense span, grown on demand and kept
    /// across `clear` so steady state never reallocates.
    bits: Vec<u64>,
    /// Dense lines in insertion order, for targeted clearing and
    /// iteration.
    log: Vec<LineAddr>,
    /// Lines at or above `DENSE_SIG_LINES`.
    spill: FastHashSet<LineAddr>,
}

impl ReadSignature {
    /// Creates an empty signature.
    pub fn new() -> ReadSignature {
        ReadSignature::default()
    }

    /// Records a transactional read of `line`.
    pub fn insert(&mut self, line: LineAddr) {
        let idx = line.index();
        if idx < DENSE_SIG_LINES {
            let (word, bit) = (idx as usize / 64, idx % 64);
            if word >= self.bits.len() {
                self.bits.resize(word + 1, 0);
            }
            if self.bits[word] & (1u64 << bit) == 0 {
                self.bits[word] |= 1u64 << bit;
                self.log.push(line);
            }
        } else {
            self.spill.insert(line);
        }
    }

    /// Tests membership (conflict check on an incoming exclusive request).
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        let idx = line.index();
        if idx < DENSE_SIG_LINES {
            self.bits
                .get(idx as usize / 64)
                .is_some_and(|w| w & (1u64 << (idx % 64)) != 0)
        } else {
            self.spill.contains(&line)
        }
    }

    /// Empties the signature (commit or abort).
    pub fn clear(&mut self) {
        for line in self.log.drain(..) {
            self.bits[line.index() as usize / 64] &= !(1u64 << (line.index() % 64));
        }
        self.spill.clear();
    }

    /// Number of distinct lines read.
    #[must_use]
    pub fn len(&self) -> usize {
        self.log.len() + self.spill.len()
    }

    /// `true` when no reads are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the recorded lines (order unspecified).
    pub fn iter(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.log.iter().copied().chain(self.spill.iter().copied())
    }
}

// Canonical form: the insertion log (order is state — `clear` drains it)
// plus the spill set in sorted order. The bitmap is derived, so it is
// rebuilt on load rather than serialized; its grown-but-clear capacity
// never influences behaviour or future encodings.
impl chats_snap::Snap for ReadSignature {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        self.log.save(w);
        self.spill.save(w);
    }
    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        let log: Vec<LineAddr> = chats_snap::Snap::load(r)?;
        let spill: FastHashSet<LineAddr> = chats_snap::Snap::load(r)?;
        let mut sig = ReadSignature::new();
        for &line in &log {
            if line.index() >= DENSE_SIG_LINES {
                return Err(r.err("spill-region line in the dense log"));
            }
            sig.insert(line);
        }
        if sig.log != log {
            return Err(r.err("duplicate lines in the dense log"));
        }
        sig.spill = spill;
        Ok(sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_clear() {
        let mut s = ReadSignature::new();
        assert!(s.is_empty());
        s.insert(LineAddr(1));
        s.insert(LineAddr(2));
        s.insert(LineAddr(1)); // duplicate
        assert_eq!(s.len(), 2);
        assert!(s.contains(LineAddr(1)));
        assert!(!s.contains(LineAddr(3)));
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(LineAddr(1)));
    }

    #[test]
    fn iter_yields_all() {
        let mut s = ReadSignature::new();
        for i in 0..10 {
            s.insert(LineAddr(i));
        }
        let mut got: Vec<u64> = s.iter().map(|l| l.index()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn dense_and_spill_lines_coexist() {
        let mut s = ReadSignature::new();
        let lo = LineAddr(DENSE_SIG_LINES - 1);
        let hi = LineAddr(DENSE_SIG_LINES);
        let far = LineAddr(u64::MAX);
        s.insert(lo);
        s.insert(hi);
        s.insert(far);
        s.insert(hi); // duplicate in the spill region
        assert_eq!(s.len(), 3);
        assert!(s.contains(lo) && s.contains(hi) && s.contains(far));
        assert!(!s.contains(LineAddr(0)));
        s.clear();
        assert_eq!(s.len(), 0);
        assert!(!s.contains(lo) && !s.contains(hi) && !s.contains(far));
    }

    #[test]
    fn clear_then_reinsert_works() {
        let mut s = ReadSignature::new();
        s.insert(LineAddr(100));
        s.clear();
        s.insert(LineAddr(100));
        assert_eq!(s.len(), 1);
        assert!(s.contains(LineAddr(100)));
    }
}
