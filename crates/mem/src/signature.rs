//! Perfect read-set signature.
//!
//! Commercial RTM implementations track read sets that can exceed the
//! private cache with a hardware signature. Following the paper's
//! methodology (§VI-B: "we use a perfect signature to track read sets"),
//! this is a *perfect* — false-positive-free — set of line addresses.

use crate::addr::LineAddr;
use std::collections::HashSet;

/// An exact set of lines transactionally read by a core.
///
/// # Example
///
/// ```
/// use chats_mem::{LineAddr, ReadSignature};
/// let mut sig = ReadSignature::new();
/// sig.insert(LineAddr(7));
/// assert!(sig.contains(LineAddr(7)));
/// sig.clear();
/// assert!(sig.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReadSignature {
    lines: HashSet<LineAddr>,
}

impl ReadSignature {
    /// Creates an empty signature.
    pub fn new() -> ReadSignature {
        ReadSignature::default()
    }

    /// Records a transactional read of `line`.
    pub fn insert(&mut self, line: LineAddr) {
        self.lines.insert(line);
    }

    /// Tests membership (conflict check on an incoming exclusive request).
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.lines.contains(&line)
    }

    /// Empties the signature (commit or abort).
    pub fn clear(&mut self) {
        self.lines.clear();
    }

    /// Number of distinct lines read.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// `true` when no reads are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Iterates the recorded lines (order unspecified).
    pub fn iter(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.lines.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_clear() {
        let mut s = ReadSignature::new();
        assert!(s.is_empty());
        s.insert(LineAddr(1));
        s.insert(LineAddr(2));
        s.insert(LineAddr(1)); // duplicate
        assert_eq!(s.len(), 2);
        assert!(s.contains(LineAddr(1)));
        assert!(!s.contains(LineAddr(3)));
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(LineAddr(1)));
    }

    #[test]
    fn iter_yields_all() {
        let mut s = ReadSignature::new();
        for i in 0..10 {
            s.insert(LineAddr(i));
        }
        let mut got: Vec<u64> = s.iter().map(|l| l.index()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
