//! Cache-line data payloads.

use crate::addr::{Addr, WORDS_PER_LINE};
use std::fmt;

/// The data contents of one 64-byte cache line: eight 64-bit words.
///
/// CHATS validates speculation *by value* (§III-A of the paper), so the
/// simulator carries real data everywhere a real machine would. Two lines
/// compare equal exactly when a hardware word-by-word comparator would say
/// so.
///
/// # Example
///
/// ```
/// use chats_mem::{Addr, Line};
/// let mut l = Line::zeroed();
/// l.write(Addr(3), 42);
/// assert_eq!(l.read(Addr(3)), 42);
/// assert_eq!(l.read(Addr(11)), 42); // offsets wrap within the line
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Line {
    words: [u64; WORDS_PER_LINE as usize],
}

impl Line {
    /// An all-zero line, the initial content of simulated memory.
    #[must_use]
    pub fn zeroed() -> Line {
        Line::default()
    }

    /// A line with every word set to `v`; handy in tests.
    #[must_use]
    pub fn splat(v: u64) -> Line {
        Line {
            words: [v; WORDS_PER_LINE as usize],
        }
    }

    /// Reads the word that `addr` selects within this line (only the offset
    /// bits of `addr` are used).
    #[must_use]
    pub fn read(&self, addr: Addr) -> u64 {
        self.words[addr.offset_in_line()]
    }

    /// Writes the word that `addr` selects within this line.
    pub fn write(&mut self, addr: Addr, value: u64) {
        self.words[addr.offset_in_line()] = value;
    }

    /// All eight words, in order.
    #[must_use]
    pub fn words(&self) -> &[u64; WORDS_PER_LINE as usize] {
        &self.words
    }
}

impl chats_snap::Snap for Line {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        self.words.save(w);
    }
    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        Ok(Line {
            words: chats_snap::Snap::load(r)?,
        })
    }
}

impl fmt::Debug for Line {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Line{:x?}", self.words)
    }
}

impl From<[u64; WORDS_PER_LINE as usize]> for Line {
    fn from(words: [u64; WORDS_PER_LINE as usize]) -> Line {
        Line { words }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_reads_zero() {
        let l = Line::zeroed();
        for w in 0..8 {
            assert_eq!(l.read(Addr(w)), 0);
        }
    }

    #[test]
    fn write_then_read() {
        let mut l = Line::zeroed();
        for w in 0..8u64 {
            l.write(Addr(w), w * 10);
        }
        for w in 0..8u64 {
            assert_eq!(l.read(Addr(w)), w * 10);
        }
    }

    #[test]
    fn only_offset_bits_matter() {
        let mut l = Line::zeroed();
        l.write(Addr(1000), 7); // offset 1000 % 8 == 0
        assert_eq!(l.read(Addr(0)), 7);
        assert_eq!(l.read(Addr(8)), 7);
    }

    #[test]
    fn equality_is_wordwise() {
        let mut a = Line::splat(5);
        let b = Line::splat(5);
        assert_eq!(a, b);
        a.write(Addr(6), 6);
        assert_ne!(a, b);
    }

    #[test]
    fn from_array() {
        let l = Line::from([1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(l.read(Addr(4)), 5);
        assert_eq!(l.words(), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }
}
