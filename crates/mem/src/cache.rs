//! Set-associative L1 data cache with HTM support bits.
//!
//! The L1 is the speculative-versioning store of the best-effort HTM (the
//! paper's RTM-like baseline): each line carries
//!
//! * a MESI [`CoherenceState`],
//! * an **SM** (speculatively modified) bit marking write-set lines, and
//! * a **spec-received** bit marking lines obtained through a `SpecResp`
//!   and still pending validation (they also count as write-set lines,
//!   §III-A).
//!
//! Replacement is LRU but *favours* keeping write-set blocks, as the paper
//! notes real RTM replacement does; evicting an SM or spec-received line is
//! reported to the caller, which turns it into a capacity abort.

use crate::addr::LineAddr;
use crate::line::Line;
use std::fmt;

/// MESI stable states as seen by the private cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoherenceState {
    /// Not present / no permissions.
    Invalid,
    /// Read permission, possibly other sharers.
    Shared,
    /// Read/write permission, clean, no other copies.
    Exclusive,
    /// Read/write permission, dirty.
    Modified,
}

impl CoherenceState {
    /// `true` when the state grants store permission.
    #[must_use]
    pub fn is_writable(self) -> bool {
        matches!(self, CoherenceState::Exclusive | CoherenceState::Modified)
    }

    /// `true` when the state grants load permission.
    #[must_use]
    pub fn is_readable(self) -> bool {
        !matches!(self, CoherenceState::Invalid)
    }
}

/// One resident cache line.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Which line this is.
    pub addr: LineAddr,
    /// MESI state.
    pub state: CoherenceState,
    /// Current (possibly speculative) data.
    pub data: Line,
    /// Speculatively modified inside the running transaction (write set).
    pub sm: bool,
    /// Received via `SpecResp` and not yet validated.
    pub spec_received: bool,
    lru: u64,
}

/// What [`Cache::insert`] displaced, if anything.
#[derive(Debug, Clone)]
pub enum EvictOutcome {
    /// A way was free; nothing was displaced.
    None,
    /// `victim` was evicted to make room. The caller must inspect its `sm`
    /// and `spec_received` bits: displacing transactional state aborts the
    /// transaction, and `Modified` non-transactional data must be written
    /// back.
    Evicted(CacheEntry),
}

/// A set-associative write-back cache.
///
/// # Example
///
/// ```
/// use chats_mem::{Cache, CoherenceState, Line, LineAddr};
/// let mut c = Cache::new(4, 2);
/// c.insert(LineAddr(1), CoherenceState::Shared, Line::zeroed());
/// assert!(c.lookup(LineAddr(1)).is_some());
/// assert!(c.lookup(LineAddr(2)).is_none());
/// ```
pub struct Cache {
    sets: usize,
    ways: usize,
    entries: Vec<Vec<CacheEntry>>,
    lru_clock: u64,
}

impl fmt::Debug for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cache")
            .field("sets", &self.sets)
            .field("ways", &self.ways)
            .field(
                "resident",
                &self.entries.iter().map(Vec::len).sum::<usize>(),
            )
            .finish()
    }
}

impl Cache {
    /// Creates an empty cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Cache {
        assert!(sets > 0 && ways > 0, "cache geometry must be non-zero");
        Cache {
            sets,
            ways,
            entries: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            lru_clock: 0,
        }
    }

    fn set_of(&self, addr: LineAddr) -> usize {
        addr.set_index(self.sets)
    }

    /// Immutable lookup; does not touch LRU order.
    pub fn lookup(&self, addr: LineAddr) -> Option<&CacheEntry> {
        self.entries[self.set_of(addr)]
            .iter()
            .find(|e| e.addr == addr && e.state.is_readable())
    }

    /// Mutable lookup; refreshes LRU order.
    pub fn lookup_mut(&mut self, addr: LineAddr) -> Option<&mut CacheEntry> {
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let set = self.set_of(addr);
        let entry = self.entries[set]
            .iter_mut()
            .find(|e| e.addr == addr && e.state.is_readable());
        if let Some(e) = entry {
            e.lru = clock;
            Some(e)
        } else {
            None
        }
    }

    /// Inserts (or overwrites) a line, choosing a victim if the set is full.
    ///
    /// Victim selection prefers, in order: an invalid way, the LRU line that
    /// is *not* part of the write set, then the LRU line overall. The caller
    /// decides what an eviction means (writeback, capacity abort, ...).
    pub fn insert(&mut self, addr: LineAddr, state: CoherenceState, data: Line) -> EvictOutcome {
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let set = self.set_of(addr);
        let ways = self.ways;
        let lines = &mut self.entries[set];

        if let Some(e) = lines.iter_mut().find(|e| e.addr == addr) {
            e.state = state;
            e.data = data;
            e.lru = clock;
            return EvictOutcome::None;
        }

        let fresh = CacheEntry {
            addr,
            state,
            data,
            sm: false,
            spec_received: false,
            lru: clock,
        };

        if lines.len() < ways {
            lines.push(fresh);
            return EvictOutcome::None;
        }

        // Full set: evict. Prefer non-write-set LRU victims.
        let victim_idx = lines
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.sm && !e.spec_received)
            .min_by_key(|(_, e)| e.lru)
            .map(|(i, _)| i)
            .unwrap_or_else(|| {
                lines
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.lru)
                    .map(|(i, _)| i)
                    .expect("full set has at least one way")
            });
        let victim = std::mem::replace(&mut lines[victim_idx], fresh);
        EvictOutcome::Evicted(victim)
    }

    /// Drops a line entirely (external invalidation). Returns the removed
    /// entry so the caller can inspect its transactional bits and data.
    pub fn invalidate(&mut self, addr: LineAddr) -> Option<CacheEntry> {
        let set = self.set_of(addr);
        let lines = &mut self.entries[set];
        let idx = lines.iter().position(|e| e.addr == addr)?;
        Some(lines.swap_remove(idx))
    }

    /// Conditional gang invalidation of all speculative lines (write set and
    /// spec-received), as on transaction abort. Returns the dropped line
    /// addresses.
    pub fn gang_invalidate_speculative(&mut self) -> Vec<LineAddr> {
        let mut dropped = Vec::new();
        for set in &mut self.entries {
            set.retain(|e| {
                if e.sm || e.spec_received {
                    dropped.push(e.addr);
                    false
                } else {
                    true
                }
            });
        }
        dropped
    }

    /// [`Cache::gang_invalidate_speculative`] without collecting the
    /// dropped addresses — the abort hot path does not need them.
    pub fn drop_speculative(&mut self) {
        for set in &mut self.entries {
            set.retain(|e| !e.sm && !e.spec_received);
        }
    }

    /// Clears the SM and spec-received bits of every line (transaction
    /// commit): speculative data becomes the committed, `Modified` version.
    pub fn commit_speculative(&mut self) {
        for set in &mut self.entries {
            for e in set.iter_mut() {
                if e.sm || e.spec_received {
                    e.sm = false;
                    e.spec_received = false;
                    e.state = CoherenceState::Modified;
                }
            }
        }
    }

    /// Iterates over all resident lines.
    pub fn iter(&self) -> impl Iterator<Item = &CacheEntry> {
        self.entries.iter().flatten()
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.entries.iter().map(Vec::len).sum()
    }

    /// `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Ways per set.
    pub fn ways(&self) -> usize {
        self.ways
    }
}

impl chats_snap::Snap for CoherenceState {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        w.u8(match self {
            CoherenceState::Invalid => 0,
            CoherenceState::Shared => 1,
            CoherenceState::Exclusive => 2,
            CoherenceState::Modified => 3,
        });
    }
    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        Ok(match r.u8()? {
            0 => CoherenceState::Invalid,
            1 => CoherenceState::Shared,
            2 => CoherenceState::Exclusive,
            3 => CoherenceState::Modified,
            t => return Err(r.err(format!("bad CoherenceState tag {t}"))),
        })
    }
}

impl chats_snap::Snap for CacheEntry {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        self.addr.save(w);
        self.state.save(w);
        self.data.save(w);
        self.sm.save(w);
        self.spec_received.save(w);
        w.u64(self.lru);
    }
    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        Ok(CacheEntry {
            addr: chats_snap::Snap::load(r)?,
            state: chats_snap::Snap::load(r)?,
            data: chats_snap::Snap::load(r)?,
            sm: chats_snap::Snap::load(r)?,
            spec_received: chats_snap::Snap::load(r)?,
            lru: r.u64()?,
        })
    }
}

// Entries are saved in stored (set, way) order, not sorted: way order
// inside a set is deterministic machine state (`gang_invalidate_speculative`
// reports dropped lines in way order), so it must survive a round-trip
// exactly. The `lru` stamps and `lru_clock` travel verbatim for the same
// reason.
impl chats_snap::Snap for Cache {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        w.u64(self.sets as u64);
        w.u64(self.ways as u64);
        self.entries.save(w);
        w.u64(self.lru_clock);
    }
    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        let sets = usize::load(r)?;
        let ways = usize::load(r)?;
        if sets == 0 || ways == 0 {
            return Err(r.err("cache geometry must be non-zero"));
        }
        let entries: Vec<Vec<CacheEntry>> = chats_snap::Snap::load(r)?;
        if entries.len() != sets || entries.iter().any(|s| s.len() > ways) {
            return Err(r.err("cache entries do not fit the recorded geometry"));
        }
        Ok(Cache {
            sets,
            ways,
            entries,
            lru_clock: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::LineAddr;

    fn cache() -> Cache {
        Cache::new(2, 2)
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = cache();
        c.insert(LineAddr(0), CoherenceState::Shared, Line::splat(9));
        let e = c.lookup(LineAddr(0)).unwrap();
        assert_eq!(e.state, CoherenceState::Shared);
        assert_eq!(e.data, Line::splat(9));
    }

    #[test]
    fn miss_is_none() {
        assert!(cache().lookup(LineAddr(3)).is_none());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = cache();
        c.insert(LineAddr(0), CoherenceState::Shared, Line::splat(1));
        let out = c.insert(LineAddr(0), CoherenceState::Modified, Line::splat(2));
        assert!(matches!(out, EvictOutcome::None));
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(LineAddr(0)).unwrap().data, Line::splat(2));
    }

    #[test]
    fn eviction_picks_lru() {
        let mut c = cache();
        // Lines 0, 2, 4 all map to set 0 of a 2-set cache.
        c.insert(LineAddr(0), CoherenceState::Shared, Line::zeroed());
        c.insert(LineAddr(2), CoherenceState::Shared, Line::zeroed());
        c.lookup_mut(LineAddr(0)); // refresh 0, making 2 the LRU
        let out = c.insert(LineAddr(4), CoherenceState::Shared, Line::zeroed());
        match out {
            EvictOutcome::Evicted(v) => assert_eq!(v.addr, LineAddr(2)),
            EvictOutcome::None => panic!("expected an eviction"),
        }
        assert!(c.lookup(LineAddr(0)).is_some());
        assert!(c.lookup(LineAddr(4)).is_some());
    }

    #[test]
    fn replacement_favours_write_set() {
        let mut c = cache();
        c.insert(LineAddr(0), CoherenceState::Modified, Line::zeroed());
        c.lookup_mut(LineAddr(0)).unwrap().sm = true; // oldest, but in write set
        c.insert(LineAddr(2), CoherenceState::Shared, Line::zeroed());
        let out = c.insert(LineAddr(4), CoherenceState::Shared, Line::zeroed());
        match out {
            EvictOutcome::Evicted(v) => assert_eq!(v.addr, LineAddr(2), "SM line must survive"),
            EvictOutcome::None => panic!("expected an eviction"),
        }
        assert!(c.lookup(LineAddr(0)).is_some());
    }

    #[test]
    fn full_sm_set_still_evicts_something() {
        let mut c = cache();
        c.insert(LineAddr(0), CoherenceState::Modified, Line::zeroed());
        c.lookup_mut(LineAddr(0)).unwrap().sm = true;
        c.insert(LineAddr(2), CoherenceState::Modified, Line::zeroed());
        c.lookup_mut(LineAddr(2)).unwrap().sm = true;
        let out = c.insert(LineAddr(4), CoherenceState::Shared, Line::zeroed());
        match out {
            EvictOutcome::Evicted(v) => assert!(v.sm, "victim had to be a write-set line"),
            EvictOutcome::None => panic!("expected an eviction"),
        }
    }

    #[test]
    fn gang_invalidation_drops_only_speculative() {
        let mut c = Cache::new(4, 2);
        c.insert(LineAddr(0), CoherenceState::Modified, Line::zeroed());
        c.lookup_mut(LineAddr(0)).unwrap().sm = true;
        c.insert(LineAddr(1), CoherenceState::Shared, Line::zeroed());
        c.insert(LineAddr(2), CoherenceState::Exclusive, Line::zeroed());
        c.lookup_mut(LineAddr(2)).unwrap().spec_received = true;
        let dropped = c.gang_invalidate_speculative();
        assert_eq!(dropped.len(), 2);
        assert!(dropped.contains(&LineAddr(0)));
        assert!(dropped.contains(&LineAddr(2)));
        assert!(c.lookup(LineAddr(1)).is_some());
    }

    #[test]
    fn commit_clears_bits_and_marks_modified() {
        let mut c = cache();
        c.insert(LineAddr(0), CoherenceState::Exclusive, Line::splat(3));
        {
            let e = c.lookup_mut(LineAddr(0)).unwrap();
            e.sm = true;
            e.spec_received = true;
        }
        c.commit_speculative();
        let e = c.lookup(LineAddr(0)).unwrap();
        assert!(!e.sm && !e.spec_received);
        assert_eq!(e.state, CoherenceState::Modified);
        assert_eq!(e.data, Line::splat(3), "commit must not change data");
    }

    #[test]
    fn invalidate_returns_entry() {
        let mut c = cache();
        c.insert(LineAddr(0), CoherenceState::Modified, Line::splat(4));
        let gone = c.invalidate(LineAddr(0)).unwrap();
        assert_eq!(gone.data, Line::splat(4));
        assert!(c.lookup(LineAddr(0)).is_none());
        assert!(c.invalidate(LineAddr(0)).is_none());
    }

    #[test]
    fn state_predicates() {
        assert!(CoherenceState::Modified.is_writable());
        assert!(CoherenceState::Exclusive.is_writable());
        assert!(!CoherenceState::Shared.is_writable());
        assert!(!CoherenceState::Invalid.is_readable());
        assert!(CoherenceState::Shared.is_readable());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_geometry_panics() {
        Cache::new(0, 1);
    }
}
