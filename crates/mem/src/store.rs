//! Backing store: the committed version of every line.
//!
//! Models the folded L2/L3/DRAM level that sits behind the directory. In
//! the paper's lazy-versioning baseline, the non-speculative value of a line
//! is written back here *before* its first speculative modification, so an
//! abort can discard L1 state silently and later requests are serviced with
//! committed data.

use crate::addr::{Addr, LineAddr};
use crate::line::Line;
use std::collections::HashMap;

/// Sparse word-accurate simulated memory.
///
/// Untouched lines read as zero, like freshly mapped pages.
///
/// # Example
///
/// ```
/// use chats_mem::{Addr, BackingStore};
/// let mut m = BackingStore::new();
/// m.write_word(Addr(100), 5);
/// assert_eq!(m.read_word(Addr(100)), 5);
/// assert_eq!(m.read_word(Addr(101)), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BackingStore {
    lines: HashMap<LineAddr, Line>,
}

impl BackingStore {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> BackingStore {
        BackingStore::default()
    }

    /// Reads a whole line; absent lines are zero.
    #[must_use]
    pub fn read_line(&self, addr: LineAddr) -> Line {
        self.lines.get(&addr).copied().unwrap_or_else(Line::zeroed)
    }

    /// Replaces a whole line (a writeback from a private cache).
    pub fn write_line(&mut self, addr: LineAddr, data: Line) {
        self.lines.insert(addr, data);
    }

    /// Reads one word.
    #[must_use]
    pub fn read_word(&self, addr: Addr) -> u64 {
        self.read_line(addr.line()).read(addr)
    }

    /// Writes one word (read-modify-write of the containing line).
    pub fn write_word(&mut self, addr: Addr, value: u64) {
        let mut line = self.read_line(addr.line());
        line.write(addr, value);
        self.lines.insert(addr.line(), line);
    }

    /// Number of lines ever written.
    #[must_use]
    pub fn touched_lines(&self) -> usize {
        self.lines.len()
    }

    /// Every line ever written, in no particular order (callers that need
    /// determinism must sort; see `Machine::memory_image`).
    pub fn lines(&self) -> impl Iterator<Item = (LineAddr, &Line)> {
        self.lines.iter().map(|(a, l)| (*a, l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_reads_zero() {
        let m = BackingStore::new();
        assert_eq!(m.read_word(Addr(12345)), 0);
        assert_eq!(m.read_line(LineAddr(99)), Line::zeroed());
    }

    #[test]
    fn word_write_preserves_neighbours() {
        let mut m = BackingStore::new();
        m.write_word(Addr(8), 1);
        m.write_word(Addr(9), 2);
        assert_eq!(m.read_word(Addr(8)), 1);
        assert_eq!(m.read_word(Addr(9)), 2);
        assert_eq!(m.read_word(Addr(10)), 0);
    }

    #[test]
    fn line_write_replaces_whole_line() {
        let mut m = BackingStore::new();
        m.write_word(Addr(0), 42);
        m.write_line(LineAddr(0), Line::splat(7));
        assert_eq!(m.read_word(Addr(0)), 7);
        assert_eq!(m.read_word(Addr(7)), 7);
    }

    #[test]
    fn lines_iterates_written_lines() {
        let mut m = BackingStore::new();
        m.write_word(Addr(0), 1);
        m.write_word(Addr(16), 2);
        let mut seen: Vec<u64> = m.lines().map(|(a, _)| a.index()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 2]);
    }

    #[test]
    fn touched_lines_counts_distinct() {
        let mut m = BackingStore::new();
        m.write_word(Addr(0), 1);
        m.write_word(Addr(1), 1); // same line
        m.write_word(Addr(8), 1); // next line
        assert_eq!(m.touched_lines(), 2);
    }
}
