//! Backing store: the committed version of every line.
//!
//! Models the folded L2/L3/DRAM level that sits behind the directory. In
//! the paper's lazy-versioning baseline, the non-speculative value of a line
//! is written back here *before* its first speculative modification, so an
//! abort can discard L1 state silently and later requests are serviced with
//! committed data.

use crate::addr::{Addr, LineAddr};
use crate::fasthash::FastHashMap;
use crate::line::Line;

/// Line indices below this are held in a flat, open-addressed-by-identity
/// array (index == line index) instead of a hash map. Every workload in
/// the registry allocates its heap from word 0 upward, so effectively all
/// backing-store traffic takes the direct path; 2^15 lines is 2 MiB of
/// payload, grown lazily in line-sized steps only as far as actually
/// touched.
const DENSE_LINES: usize = 1 << 15;

/// Sparse word-accurate simulated memory.
///
/// Untouched lines read as zero, like freshly mapped pages.
///
/// Low line addresses — the region every registry workload lives in — are
/// a direct-mapped `Vec<Line>` with a presence bitmap: a committed-line
/// lookup on the simulation hot path is one bounds check and one array
/// index, no hashing. Lines above [`DENSE_LINES`] spill into a
/// deterministic-hash map ([`FastHashMap`]), preserving full 64-bit
/// sparse addressing.
///
/// # Example
///
/// ```
/// use chats_mem::{Addr, BackingStore};
/// let mut m = BackingStore::new();
/// m.write_word(Addr(100), 5);
/// assert_eq!(m.read_word(Addr(100)), 5);
/// assert_eq!(m.read_word(Addr(101)), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BackingStore {
    /// Direct-mapped lines `0..DENSE_LINES`; grown on first touch.
    dense: Vec<Line>,
    /// One bit per `dense` slot: has this line ever been written? (A
    /// zeroed slot is indistinguishable from an untouched one by value,
    /// but `touched_lines`/`lines` must not invent entries.)
    present: Vec<u64>,
    /// Count of set bits in `present`.
    dense_touched: usize,
    /// Everything at or above `DENSE_LINES`.
    sparse: FastHashMap<LineAddr, Line>,
}

impl BackingStore {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> BackingStore {
        BackingStore::default()
    }

    #[inline]
    fn is_present(&self, idx: usize) -> bool {
        self.present
            .get(idx / 64)
            .is_some_and(|w| w & (1u64 << (idx % 64)) != 0)
    }

    /// Grows the dense array to cover `idx` and marks it present.
    #[inline]
    fn mark_present(&mut self, idx: usize) {
        if idx >= self.dense.len() {
            self.dense.resize(idx + 1, Line::zeroed());
            self.present.resize(idx / 64 + 1, 0);
        }
        let bit = 1u64 << (idx % 64);
        let w = &mut self.present[idx / 64];
        if *w & bit == 0 {
            *w |= bit;
            self.dense_touched += 1;
        }
    }

    /// Reads a whole line; absent lines are zero.
    #[must_use]
    pub fn read_line(&self, addr: LineAddr) -> Line {
        let idx = addr.index();
        if (idx as usize) < DENSE_LINES {
            // Beyond the grown prefix ⇒ never written ⇒ zero.
            self.dense
                .get(idx as usize)
                .copied()
                .unwrap_or_else(Line::zeroed)
        } else {
            self.sparse.get(&addr).copied().unwrap_or_else(Line::zeroed)
        }
    }

    /// Replaces a whole line (a writeback from a private cache).
    pub fn write_line(&mut self, addr: LineAddr, data: Line) {
        let idx = addr.index();
        if (idx as usize) < DENSE_LINES {
            self.mark_present(idx as usize);
            self.dense[idx as usize] = data;
        } else {
            self.sparse.insert(addr, data);
        }
    }

    /// Reads one word.
    #[must_use]
    pub fn read_word(&self, addr: Addr) -> u64 {
        let idx = addr.line().index();
        if (idx as usize) < DENSE_LINES {
            match self.dense.get(idx as usize) {
                Some(line) => line.read(addr),
                None => 0,
            }
        } else {
            self.read_line(addr.line()).read(addr)
        }
    }

    /// Writes one word (in place; no whole-line read-modify-write).
    pub fn write_word(&mut self, addr: Addr, value: u64) {
        let line = addr.line();
        let idx = line.index();
        if (idx as usize) < DENSE_LINES {
            self.mark_present(idx as usize);
            self.dense[idx as usize].write(addr, value);
        } else {
            self.sparse
                .entry(line)
                .or_insert_with(Line::zeroed)
                .write(addr, value);
        }
    }

    /// Number of lines ever written.
    #[must_use]
    pub fn touched_lines(&self) -> usize {
        self.dense_touched + self.sparse.len()
    }

    /// Every line ever written, in no particular order (callers that need
    /// determinism must sort; see `Machine::memory_image`).
    pub fn lines(&self) -> impl Iterator<Item = (LineAddr, &Line)> {
        let dense = self
            .dense
            .iter()
            .enumerate()
            .filter(|(i, _)| self.is_present(*i))
            .map(|(i, l)| (LineAddr(i as u64), l));
        dense.chain(self.sparse.iter().map(|(a, l)| (*a, l)))
    }
}

// Canonical form: present dense lines in index order, then the sparse
// map in sorted-key order. Replaying them through `write_line` on load
// regrows the dense array and presence bitmap to exactly the sizes the
// original reached (both depend only on the highest touched line), so a
// restored store is indistinguishable from the original.
impl chats_snap::Snap for BackingStore {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        w.u64(self.dense_touched as u64);
        for (i, line) in self.dense.iter().enumerate() {
            if self.is_present(i) {
                w.u64(i as u64);
                line.save(w);
            }
        }
        self.sparse.save(w);
    }
    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        let n = r.len_prefix(8 + 64)?;
        let mut store = BackingStore::new();
        for _ in 0..n {
            let idx = r.u64()?;
            if idx as usize >= DENSE_LINES {
                return Err(r.err(format!("dense line index {idx} out of range")));
            }
            let line = Line::load(r)?;
            store.write_line(LineAddr(idx), line);
        }
        if store.dense_touched != n {
            return Err(r.err("duplicate dense line index"));
        }
        store.sparse = chats_snap::Snap::load(r)?;
        if store
            .sparse
            .keys()
            .any(|a| (a.index() as usize) < DENSE_LINES)
        {
            return Err(r.err("dense-region line in the sparse map"));
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_reads_zero() {
        let m = BackingStore::new();
        assert_eq!(m.read_word(Addr(12345)), 0);
        assert_eq!(m.read_line(LineAddr(99)), Line::zeroed());
    }

    #[test]
    fn word_write_preserves_neighbours() {
        let mut m = BackingStore::new();
        m.write_word(Addr(8), 1);
        m.write_word(Addr(9), 2);
        assert_eq!(m.read_word(Addr(8)), 1);
        assert_eq!(m.read_word(Addr(9)), 2);
        assert_eq!(m.read_word(Addr(10)), 0);
    }

    #[test]
    fn line_write_replaces_whole_line() {
        let mut m = BackingStore::new();
        m.write_word(Addr(0), 42);
        m.write_line(LineAddr(0), Line::splat(7));
        assert_eq!(m.read_word(Addr(0)), 7);
        assert_eq!(m.read_word(Addr(7)), 7);
    }

    #[test]
    fn lines_iterates_written_lines() {
        let mut m = BackingStore::new();
        m.write_word(Addr(0), 1);
        m.write_word(Addr(16), 2);
        let mut seen: Vec<u64> = m.lines().map(|(a, _)| a.index()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 2]);
    }

    #[test]
    fn touched_lines_counts_distinct() {
        let mut m = BackingStore::new();
        m.write_word(Addr(0), 1);
        m.write_word(Addr(1), 1); // same line
        m.write_word(Addr(8), 1); // next line
        assert_eq!(m.touched_lines(), 2);
    }

    #[test]
    fn dense_and_sparse_regions_agree() {
        let mut m = BackingStore::new();
        let edge = DENSE_LINES as u64; // first sparse line
        let dense_word = Addr((edge - 1) * 8 + 3);
        let sparse_word = Addr(edge * 8 + 3);
        let far_word = Addr(u64::MAX - 7);
        m.write_word(dense_word, 11);
        m.write_word(sparse_word, 22);
        m.write_word(far_word, 33);
        assert_eq!(m.read_word(dense_word), 11);
        assert_eq!(m.read_word(sparse_word), 22);
        assert_eq!(m.read_word(far_word), 33);
        assert_eq!(m.touched_lines(), 3);
        let mut seen: Vec<u64> = m.lines().map(|(a, _)| a.index()).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![edge - 1, edge, (u64::MAX - 7) / 8]);
    }

    #[test]
    fn line_writes_at_the_boundary_round_trip() {
        let mut m = BackingStore::new();
        let edge = LineAddr(DENSE_LINES as u64);
        let below = LineAddr(DENSE_LINES as u64 - 1);
        m.write_line(edge, Line::splat(5));
        m.write_line(below, Line::splat(6));
        assert_eq!(m.read_line(edge), Line::splat(5));
        assert_eq!(m.read_line(below), Line::splat(6));
        // Untouched neighbours on both sides still read zero.
        assert_eq!(
            m.read_line(LineAddr(DENSE_LINES as u64 + 1)),
            Line::zeroed()
        );
        assert_eq!(m.read_line(LineAddr(0)), Line::zeroed());
    }

    #[test]
    fn zero_valued_writes_still_count_as_touched() {
        let mut m = BackingStore::new();
        m.write_word(Addr(40), 0); // writes an explicit zero
        assert_eq!(m.touched_lines(), 1);
        assert_eq!(m.lines().count(), 1);
    }
}
