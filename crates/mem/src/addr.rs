//! Word and cache-line addresses.

use std::fmt;

/// Words per 64-byte cache line (8 × u64).
pub const WORDS_PER_LINE: u64 = 8;

/// A word address: one 8-byte word of simulated memory.
///
/// All workload-visible accesses operate on whole words; the memory system
/// groups them into 64-byte lines ([`LineAddr`]).
///
/// # Example
///
/// ```
/// use chats_mem::{Addr, WORDS_PER_LINE};
/// let a = Addr(19);
/// assert_eq!(a.line().index(), 19 / WORDS_PER_LINE);
/// assert_eq!(a.offset_in_line(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Addr(pub u64);

impl Addr {
    /// The cache line containing this word.
    #[must_use]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / WORDS_PER_LINE)
    }

    /// Word offset within its cache line, in `0..8`.
    #[must_use]
    pub fn offset_in_line(self) -> usize {
        (self.0 % WORDS_PER_LINE) as usize
    }

    /// The address `n` words after this one.
    #[must_use]
    pub fn offset(self, n: u64) -> Addr {
        Addr(self.0 + n)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{:#x}", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A cache-line address (word address divided by 8).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The raw line index.
    #[must_use]
    pub fn index(self) -> u64 {
        self.0
    }

    /// Word address of the first word in this line.
    #[must_use]
    pub fn base_word(self) -> Addr {
        Addr(self.0 * WORDS_PER_LINE)
    }

    /// Cache set this line maps to, for a cache with `sets` sets.
    ///
    /// # Panics
    ///
    /// Panics if `sets == 0`.
    #[must_use]
    pub fn set_index(self, sets: usize) -> usize {
        assert!(sets > 0, "a cache needs at least one set");
        (self.0 % sets as u64) as usize
    }
}

impl chats_snap::Snap for Addr {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        w.u64(self.0);
    }
    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        Ok(Addr(r.u64()?))
    }
}

impl chats_snap::Snap for LineAddr {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        w.u64(self.0);
    }
    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        Ok(LineAddr(r.u64()?))
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_map_to_lines() {
        for w in 0..64 {
            let a = Addr(w);
            assert_eq!(a.line().index(), w / 8);
            assert_eq!(a.offset_in_line() as u64, w % 8);
        }
    }

    #[test]
    fn base_word_round_trip() {
        let l = LineAddr(5);
        assert_eq!(l.base_word(), Addr(40));
        assert_eq!(l.base_word().line(), l);
    }

    #[test]
    fn set_index_wraps() {
        assert_eq!(LineAddr(0).set_index(16), 0);
        assert_eq!(LineAddr(16).set_index(16), 0);
        assert_eq!(LineAddr(17).set_index(16), 1);
    }

    #[test]
    fn offset_walks_words() {
        assert_eq!(Addr(3).offset(9), Addr(12));
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_sets_panics() {
        let _ = LineAddr(1).set_index(0);
    }
}
