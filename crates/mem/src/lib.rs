#![warn(missing_docs)]

//! Memory substrate of the CHATS simulator.
//!
//! This crate models everything that holds data or metadata about data:
//!
//! * [`addr`] — word and line addresses (64-byte lines, 8 words each),
//! * [`mod@line`] — the data payload of a cache line, with word-level access
//!   (CHATS validation is *value-based*, so real values matter),
//! * [`cache`] — a set-associative L1 array with MESI state, LRU
//!   replacement that favours write-set blocks, and speculatively-modified
//!   (SM) bits for lazy versioning,
//! * [`signature`] — the perfect read signature used for read-set tracking,
//! * [`store`] — the backing store holding the committed version of every
//!   line (the folded L2/L3/DRAM level behind the directory).
//!
//! # Example
//!
//! ```
//! use chats_mem::{Addr, LineAddr};
//! let a = Addr(0x1234);
//! let l: LineAddr = a.line();
//! assert_eq!(l.base_word().0 & 7, 0);
//! assert!(a.offset_in_line() < 8);
//! ```

pub mod addr;
pub mod cache;
pub mod fasthash;
pub mod line;
pub mod signature;
pub mod store;

pub use addr::{Addr, LineAddr, WORDS_PER_LINE};
pub use cache::{Cache, CacheEntry, CoherenceState, EvictOutcome};
pub use fasthash::{FastHashMap, FastHashSet, FxBuildHasher, FxHasher};
pub use line::Line;
pub use signature::ReadSignature;
pub use store::BackingStore;
