//! Deterministic, fast hashing for simulator-internal maps.
//!
//! `std`'s default `HashMap` hasher is SipHash-1-3 with a per-process
//! random key: robust against adversarial keys, but an order of
//! magnitude slower than needed for the simulator's hot maps, whose keys
//! are line addresses and core indices the simulator itself generates.
//! [`FxHasher`] is a multiply-xor hash in the Firefox/rustc lineage:
//! a couple of arithmetic ops per 8 bytes, **no randomness** — the same
//! keys hash the same way in every process, which is exactly what a
//! deterministic simulator wants.
//!
//! Two rules keep this sound:
//!
//! * keys are simulator-internal values (addresses, ids), never
//!   user-controlled strings — HashDoS is out of scope by construction;
//! * **iteration order must never influence simulation behaviour.** It
//!   was unspecified under SipHash and stays unspecified here; every
//!   consumer that materializes map contents into the schedule sorts
//!   first (see DESIGN.md §14).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the 64-bit Fibonacci-hashing constant family
/// (`2^64 / φ`, forced odd): consecutive keys — the common case for line
/// indices — scatter across the whole 64-bit range.
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;
/// Rotation applied between words; breaks up the pure multiplicative
/// structure so low-entropy high bits still affect the bucket index.
const ROTATE: u32 = 26;

/// A fast, deterministic, non-cryptographic hasher.
///
/// Produces identical output for identical input in every process and on
/// every platform (no random state), so map *contents* are reproducible
/// across runs. Iteration order remains unspecified — do not let it leak
/// into schedules.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Length byte keeps "ab" + "c" distinct from "a" + "bc".
            tail[7] = rest.len() as u8;
            self.mix(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.mix(n as u64);
        self.mix((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; zero-sized, `Default`-constructed.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`] — drop-in for simulator-internal
/// hot maps.
pub type FastHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FastHashSet<K> = HashSet<K, FxBuildHasher>;

/// A [`FastHashMap`] pre-sized for `cap` entries, for hot maps whose
/// rough population is known up front (rehash on growth is the other
/// hidden cost of `HashMap::new` on a hot path).
#[must_use]
pub fn map_with_capacity<K, V>(cap: usize) -> FastHashMap<K, V> {
    FastHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// A [`FastHashSet`] pre-sized for `cap` entries.
#[must_use]
pub fn set_with_capacity<K>(cap: usize) -> FastHashSet<K> {
    FastHashSet::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        for k in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(hash_of(&k), hash_of(&k));
        }
        assert_eq!(hash_of(&"genome"), hash_of(&"genome"));
    }

    #[test]
    fn consecutive_keys_scatter() {
        // Fibonacci-style multiplicative hashing must not map consecutive
        // integers to consecutive (clustered) hashes.
        let hashes: Vec<u64> = (0u64..64).map(|k| hash_of(&k)).collect();
        let mut top_bytes: Vec<u8> = hashes.iter().map(|h| (h >> 56) as u8).collect();
        top_bytes.sort_unstable();
        top_bytes.dedup();
        assert!(
            top_bytes.len() > 32,
            "only {} distinct top bytes over 64 consecutive keys",
            top_bytes.len()
        );
    }

    #[test]
    fn byte_streams_with_different_splits_collide_identically() {
        // Hash depends only on the byte content fed through `write`, not
        // on how callers chunk it (std Hash impls feed whole values, but
        // keep the invariant anyway).
        let mut a = FxHasher::default();
        a.write(b"abcdefgh12345678");
        let mut b = FxHasher::default();
        b.write(b"abcdefgh");
        b.write(b"12345678");
        assert_eq!(a.finish(), b.finish());
        // And the length-tagged tail keeps shifted splits distinct.
        let mut c = FxHasher::default();
        c.write(b"abc");
        let mut d = FxHasher::default();
        d.write(b"ab");
        d.write(b"c");
        // Not asserting inequality of every split (that's a quality
        // property, not a contract), but these must at least be
        // well-defined and deterministic.
        assert_eq!(c.finish(), c.finish());
        assert_eq!(d.finish(), d.finish());
    }

    #[test]
    fn map_and_set_behave_like_std() {
        let mut m: FastHashMap<u64, &str> = map_with_capacity(8);
        assert!(m.capacity() >= 8);
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.remove(&2), Some("two"));
        assert_eq!(m.len(), 1);

        let mut s: FastHashSet<u64> = set_with_capacity(4);
        s.insert(7);
        assert!(s.contains(&7));
        assert!(!s.contains(&8));
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        for k in 0u64..10_000 {
            seen.insert(hash_of(&(k * 64))); // line-address-like strides
        }
        assert_eq!(seen.len(), 10_000, "collisions on stride-64 keys");
    }
}
