//! Property tests for the backing store against a plain map reference,
//! exercising the word/line aliasing that the machine's writeback paths
//! depend on.

use chats_mem::{Addr, BackingStore, Line, LineAddr, WORDS_PER_LINE};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    WriteWord(u64, u64),
    WriteLine(u64, u64), // line, splat value
    ReadWord(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..256, any::<u64>()).prop_map(|(a, v)| Op::WriteWord(a, v)),
        2 => (0u64..32, any::<u64>()).prop_map(|(l, v)| Op::WriteLine(l, v)),
        4 => (0u64..256).prop_map(Op::ReadWord),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Word writes, line writes and reads agree with a word-granular
    /// reference map at all times.
    #[test]
    fn store_matches_reference(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut store = BackingStore::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            match op {
                Op::WriteWord(a, v) => {
                    store.write_word(Addr(a), v);
                    reference.insert(a, v);
                }
                Op::WriteLine(l, v) => {
                    store.write_line(LineAddr(l), Line::splat(v));
                    for w in 0..WORDS_PER_LINE {
                        reference.insert(l * WORDS_PER_LINE + w, v);
                    }
                }
                Op::ReadWord(a) => {
                    let got = store.read_word(Addr(a));
                    let want = reference.get(&a).copied().unwrap_or(0);
                    prop_assert_eq!(got, want, "word {}", a);
                }
            }
        }
        // Full sweep at the end.
        for a in 0..256u64 {
            prop_assert_eq!(
                store.read_word(Addr(a)),
                reference.get(&a).copied().unwrap_or(0)
            );
        }
    }

    /// Line reads reassemble exactly the words written.
    #[test]
    fn line_read_reassembles_words(line in 0u64..64, values in proptest::collection::vec(any::<u64>(), 8)) {
        let mut store = BackingStore::new();
        for (w, v) in values.iter().enumerate() {
            store.write_word(Addr(line * WORDS_PER_LINE + w as u64), *v);
        }
        let l = store.read_line(LineAddr(line));
        for (w, v) in values.iter().enumerate() {
            prop_assert_eq!(l.read(Addr(w as u64)), *v);
        }
    }
}
