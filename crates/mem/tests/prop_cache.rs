//! Property tests for the L1 model against a simple reference map.

use chats_mem::{Addr, Cache, CoherenceState, EvictOutcome, Line, LineAddr};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64), // line, value splat
    Invalidate(u64),
    Lookup(u64),
    MarkSm(u64),
    GangInvalidate,
    Commit,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0u64..64, any::<u64>()).prop_map(|(l, v)| Op::Insert(l, v)),
        2 => (0u64..64).prop_map(Op::Invalidate),
        4 => (0u64..64).prop_map(Op::Lookup),
        2 => (0u64..64).prop_map(Op::MarkSm),
        1 => Just(Op::GangInvalidate),
        1 => Just(Op::Commit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The cache agrees with a reference map on every lookup: a resident
    /// line always has the last value written for it; a reported eviction
    /// always removes exactly that victim.
    #[test]
    fn cache_matches_reference(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut cache = Cache::new(4, 2);
        // Reference: line -> (value, sm)
        let mut reference: HashMap<u64, (u64, bool)> = HashMap::new();

        for op in ops {
            match op {
                Op::Insert(l, v) => {
                    match cache.insert(LineAddr(l), CoherenceState::Exclusive, Line::splat(v)) {
                        EvictOutcome::Evicted(victim) => {
                            let gone = reference.remove(&victim.addr.index());
                            prop_assert!(gone.is_some(), "evicted a non-resident line");
                        }
                        EvictOutcome::None => {}
                    }
                    reference.insert(l, (v, reference.get(&l).map(|e| e.1).unwrap_or(false)));
                }
                Op::Invalidate(l) => {
                    let got = cache.invalidate(LineAddr(l)).is_some();
                    let expect = reference.remove(&l).is_some();
                    prop_assert_eq!(got, expect);
                }
                Op::Lookup(l) => {
                    match (cache.lookup(LineAddr(l)), reference.get(&l)) {
                        (Some(e), Some((v, _))) => {
                            prop_assert_eq!(e.data.read(Addr(0)), *v);
                        }
                        (None, None) => {}
                        (got, want) => {
                            prop_assert!(false, "residency mismatch on {l}: cache={:?} ref={:?}",
                                got.map(|e| e.addr), want);
                        }
                    }
                }
                Op::MarkSm(l) => {
                    if let Some(e) = cache.lookup_mut(LineAddr(l)) {
                        e.sm = true;
                    }
                    if let Some(r) = reference.get_mut(&l) {
                        r.1 = true;
                    }
                }
                Op::GangInvalidate => {
                    let dropped = cache.gang_invalidate_speculative();
                    for d in &dropped {
                        let r = reference.remove(&d.index());
                        prop_assert!(matches!(r, Some((_, true))),
                            "gang invalidation dropped a non-speculative line");
                    }
                    // Nothing speculative may survive.
                    prop_assert!(reference.values().all(|(_, sm)| !sm));
                }
                Op::Commit => {
                    cache.commit_speculative();
                    for r in reference.values_mut() {
                        r.1 = false;
                    }
                }
            }
            // Geometry invariant: never more than ways lines per set.
            prop_assert!(cache.len() <= cache.sets() * cache.ways());
            prop_assert_eq!(cache.len(), reference.len());
        }
    }

    /// Speculative lines are never silently lost: as long as every insert
    /// into a set with speculative lines leaves at least one non-SM way,
    /// the SM lines survive all traffic.
    #[test]
    fn write_set_lines_are_sticky(
        sm_line in 0u64..4,
        clean_lines in proptest::collection::vec(0u64..32, 1..40),
    ) {
        let mut cache = Cache::new(4, 2);
        cache.insert(LineAddr(sm_line), CoherenceState::Modified, Line::splat(1));
        cache.lookup_mut(LineAddr(sm_line)).unwrap().sm = true;
        for l in clean_lines {
            // Never collide exactly with the SM line.
            let l = if l == sm_line { l + 32 } else { l };
            cache.insert(LineAddr(l), CoherenceState::Shared, Line::zeroed());
            prop_assert!(
                cache.lookup(LineAddr(sm_line)).is_some(),
                "SM line displaced by a clean fill"
            );
        }
    }
}
