//! Scaling-knob tests: every kernel's `with_iterations` must change the
//! amount of committed work proportionally while keeping the invariant
//! checker satisfied.

use chats_core::{HtmSystem, PolicyConfig};
use chats_workloads::kernels::{
    cadd::Cadd, genome::Genome, intruder::Intruder, kmeans::Kmeans, labyrinth::Labyrinth, llb::Llb,
    ssca2::Ssca2, vacation::Vacation, yada::Yada,
};
use chats_workloads::{run_workload, RunConfig, Workload};

fn commits_of(w: &dyn Workload) -> u64 {
    let cfg = RunConfig::quick_test();
    run_workload(w, PolicyConfig::for_system(HtmSystem::Chats), &cfg)
        .unwrap_or_else(|e| panic!("{e}"))
        .stats
        .commits
}

/// Doubling the iteration count must (at least) increase committed
/// transactions, with the checker still passing.
fn scales(small: &dyn Workload, large: &dyn Workload) {
    let a = commits_of(small);
    let b = commits_of(large);
    assert!(
        b > a,
        "{}: {b} commits at double scale !> {a} at base scale",
        small.name()
    );
}

#[test]
fn genome_scales() {
    scales(
        &Genome::new().with_iterations(8),
        &Genome::new().with_iterations(16),
    );
}

#[test]
fn intruder_scales() {
    scales(
        &Intruder::new().with_iterations(8),
        &Intruder::new().with_iterations(16),
    );
}

#[test]
fn kmeans_scales() {
    scales(
        &Kmeans::high().with_iterations(8),
        &Kmeans::high().with_iterations(16),
    );
}

#[test]
fn labyrinth_scales() {
    scales(
        &Labyrinth::new().with_iterations(2),
        &Labyrinth::new().with_iterations(4),
    );
}

#[test]
fn ssca2_scales() {
    scales(
        &Ssca2::new().with_iterations(16),
        &Ssca2::new().with_iterations(32),
    );
}

#[test]
fn vacation_scales() {
    scales(
        &Vacation::low().with_iterations(8),
        &Vacation::low().with_iterations(16),
    );
}

#[test]
fn yada_scales() {
    scales(
        &Yada::new().with_iterations(4),
        &Yada::new().with_iterations(8),
    );
}

#[test]
fn llb_scales() {
    scales(
        &Llb::high().with_iterations(8),
        &Llb::high().with_iterations(16),
    );
}

#[test]
fn cadd_scales() {
    scales(
        &Cadd::new().with_iterations(8),
        &Cadd::new().with_iterations(16),
    );
}

#[test]
#[should_panic(expected = "positive")]
fn zero_iterations_rejected() {
    let _ = Genome::new().with_iterations(0);
}
