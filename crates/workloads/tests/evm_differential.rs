//! Differential correctness for the evm frontier: every HTM policy,
//! clean and under an unreliable interconnect, must produce a final
//! state the sequential ground truth accepts.
//!
//! The scenario builder replays each user-transaction stream on the
//! reference contract machine and bakes the result into the workload's
//! checker (exact word-for-word agreement for the commutative
//! scenarios, conservation sums for the order-dependent dex flows), so
//! `run_workload` returning `Ok` *is* the differential check; these
//! tests sweep it across the whole policy matrix and add the
//! no-lost-update side: exactly one commit per user transaction.

use chats_core::{HtmSystem, PolicyConfig};
use chats_workloads::kernels::evm::EvmWorkload;
use chats_workloads::{run_workload, FaultPlan, RunConfig, Workload};

/// User transactions per thread — scaled down from the paper's 6500 so
/// the 3 scenarios x 6 policies x {clean, lossy} matrix stays fast.
const TXS: u64 = 40;

fn scenarios() -> [EvmWorkload; 3] {
    [
        EvmWorkload::transfers().with_txs_per_thread(TXS),
        EvmWorkload::token_storm().with_txs_per_thread(TXS),
        EvmWorkload::dex().with_txs_per_thread(TXS),
    ]
}

fn check_matrix(cfg: &RunConfig) {
    for w in scenarios() {
        for s in HtmSystem::ALL {
            let out = run_workload(&w, PolicyConfig::for_system(s), cfg)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", w.name(), s.label()));
            // No lost and no phantom user transaction: each stream
            // entry completes exactly once — as a commit, or (on the
            // lock-based systems) as a non-speculative fallback
            // execution. Power-token grants retry *transactionally*, so
            // there every completion is a commit.
            let done = if s.uses_power_token() {
                out.stats.commits
            } else {
                out.stats.commits + out.stats.fallback_acquisitions
            };
            assert_eq!(done, cfg.threads as u64 * TXS, "{}/{}", w.name(), s.label());
        }
    }
}

#[test]
fn every_policy_matches_sequential_ground_truth() {
    // quick_test arms the atomicity oracle: each commit is additionally
    // checked against the serializability criterion as it happens.
    check_matrix(&RunConfig::quick_test());
}

#[test]
fn ground_truth_holds_under_a_lossy_interconnect() {
    let plan = FaultPlan::shipped()
        .into_iter()
        .find(|p| p.name == "lossy-noc")
        .expect("lossy-noc ships with chats-faults");
    check_matrix(&RunConfig::quick_test().with_faults(plan));
}
