//! Workload registry: every benchmark of the paper's evaluation by name.

use crate::kernels::{
    bayes::Bayes, cadd::Cadd, evm::EvmWorkload, genome::Genome, intruder::Intruder, kmeans::Kmeans,
    labyrinth::Labyrinth, llb::Llb, ssca2::Ssca2, vacation::Vacation, yada::Yada,
};
use crate::spec::Workload;

/// All workloads in the paper's plotting order: the seven STAMP benchmarks
/// (two flavours for kmeans and vacation) followed by the microbenchmarks.
#[must_use]
pub fn all() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(Genome::new()),
        Box::new(Intruder::new()),
        Box::new(Kmeans::low()),
        Box::new(Kmeans::high()),
        Box::new(Labyrinth::new()),
        Box::new(Ssca2::new()),
        Box::new(Vacation::low()),
        Box::new(Vacation::high()),
        Box::new(Yada::new()),
        Box::new(Llb::low()),
        Box::new(Llb::high()),
        Box::new(Cadd::new()),
    ]
}

/// Everything, including `bayes`, which the paper excludes from its
/// evaluation because its search does varying amounts of work for the
/// same input (§VI-C). Use this for correctness sweeps; use [`all`] to
/// mirror the paper's figures.
#[must_use]
pub fn extended() -> Vec<Box<dyn Workload>> {
    let mut v = all();
    v.push(Box::new(Bayes::new()));
    v
}

/// The STAMP subset (included in the paper's means).
#[must_use]
pub fn stamp() -> Vec<Box<dyn Workload>> {
    all().into_iter().filter(|w| !w.is_micro()).collect()
}

/// The microbenchmarks (excluded from means).
#[must_use]
pub fn micro() -> Vec<Box<dyn Workload>> {
    all().into_iter().filter(|w| w.is_micro()).collect()
}

/// The `evm` family: smart-contract user-transaction streams (see the
/// `chats-evm` crate). Kept out of [`all`] so the paper's figure grids
/// and means stay exactly the paper's benchmark set.
#[must_use]
pub fn evm() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(EvmWorkload::transfers()),
        Box::new(EvmWorkload::token_storm()),
        Box::new(EvmWorkload::dex()),
    ]
}

/// Workloads of one family tag (`stamp`, `micro` or `evm`); an unknown
/// tag yields an empty list.
#[must_use]
pub fn family(tag: &str) -> Vec<Box<dyn Workload>> {
    all()
        .into_iter()
        .chain(evm())
        .filter(|w| w.family() == tag)
        .collect()
}

/// Looks a workload up by its registry name.
#[must_use]
pub fn by_name(name: &str) -> Option<Box<dyn Workload>> {
    all().into_iter().chain(evm()).find(|w| w.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_workloads_registered() {
        assert_eq!(all().len(), 12);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = all().iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn stamp_and_micro_partition() {
        assert_eq!(stamp().len(), 9);
        assert_eq!(micro().len(), 3);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("kmeans-h").is_some());
        assert!(by_name("cadd").is_some());
        assert!(by_name("evm-token-storm").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn evm_family_is_separate_from_the_paper_set() {
        assert_eq!(evm().len(), 3);
        assert!(all().iter().all(|w| w.family() != "evm"));
        for w in evm() {
            assert_eq!(w.family(), "evm");
            assert!(w.spec().is_some(), "{} must carry a spec key", w.name());
        }
    }

    #[test]
    fn family_tags_partition_the_registry() {
        assert_eq!(family("stamp").len(), 9);
        assert_eq!(family("micro").len(), 3);
        assert_eq!(family("evm").len(), 3);
        assert!(family("no-such-family").is_empty());
    }

    #[test]
    fn bayes_is_extended_only() {
        // The paper excludes bayes from its evaluation; the default list
        // must mirror that, with the kernel still available.
        assert!(by_name("bayes").is_none());
        assert!(extended().iter().any(|w| w.name() == "bayes"));
        assert_eq!(extended().len(), 13);
    }
}
