#![warn(missing_docs)]

//! Transactional workloads: STAMP-like kernels and the paper's two
//! microbenchmarks, compiled to TxVM bytecode.
//!
//! Each kernel reproduces the *transactional access pattern* the paper's
//! evaluation (§VII) attributes to the corresponding STAMP benchmark — the
//! sharing pattern, transaction footprint and contention level — rather
//! than the benchmark's full application logic (see DESIGN.md for the
//! substitution table):
//!
//! | name | pattern |
//! |---|---|
//! | `genome` | producer-consumer inserts over hashed buckets |
//! | `intruder` | hot FIFO pop with a read-to-write gap + tree inserts with periodic rebalances |
//! | `kmeans-l` / `kmeans-h` | migratory center updates, each line written once per transaction |
//! | `labyrinth` | long transactions with a large read set over a shared grid |
//! | `ssca2` | tiny transactions on a huge array (no contention) |
//! | `vacation-l` / `vacation-h` | read-mostly reservations over large tables |
//! | `yada` | long read-modify-write transactions with migratory locations |
//! | `llb-l` / `llb-h` (µ) | linked-list walk then modify |
//! | `cadd` (µ) | hot shared variable written once early, then long read-only sums |
//! | `evm-transfers` / `evm-token-storm` / `evm-dex` (evm) | smart-contract user-transaction streams compiled to TxVM (see `chats-evm`) |
//!
//! Every workload carries an *invariant checker* run against final memory:
//! committed transactional effects must be exactly serializable (no lost or
//! phantom updates), which turns every benchmark run into a correctness
//! test of the HTM under test.
//!
//! # Example
//!
//! ```
//! use chats_workloads::{registry, run_workload, RunConfig};
//! use chats_core::{HtmSystem, PolicyConfig};
//!
//! let w = registry::by_name("kmeans-h").unwrap();
//! let cfg = RunConfig::quick_test();
//! let out = run_workload(w.as_ref(), PolicyConfig::for_system(HtmSystem::Chats), &cfg).unwrap();
//! assert!(out.stats.commits > 0);
//! ```

pub mod kernels;
pub mod registry;
pub mod replay;
pub mod spec;

pub use replay::{ThreadTrace, TraceOp, TraceWorkload};
// Re-exported so runner/check can attach fault plans without a direct
// `chats-machine` (or `chats-faults`) dependency.
pub use chats_machine::FaultPlan;
pub use spec::{
    prepare_run, run_workload, run_workload_partial, run_workload_traced, Checker, MemRegion,
    PreparedRun, RunConfig, RunFailure, RunOutput, ThreadProgram, Workload, WorkloadSetup,
};
