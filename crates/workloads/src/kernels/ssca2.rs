//! `ssca2`: graph kernel with near-zero contention.
//!
//! The paper (§VII): *"ssca2 and vacation exhibit very low contention
//! between transactions (the total number of aborts ranges between 0 and
//! 10 for the entire execution) [...] there are no opportunities to forward
//! values between transactions."* Tiny transactions update two cells of a
//! huge adjacency array; collisions are vanishingly rare.

use crate::kernels::{check_region_sum, R_TID};
use crate::spec::{ThreadProgram, Workload, WorkloadSetup};
use chats_sim::SimRng;
use chats_tvm::{ProgramBuilder, Reg};

const ARRAY_LINES: u64 = 1 << 14;
const UPDATES_PER_TX: u64 = 2;

/// The ssca2 kernel.
#[derive(Debug, Clone)]
pub struct Ssca2 {
    nodes_per_thread: u64,
}

impl Ssca2 {
    /// Default scale.
    #[must_use]
    pub fn new() -> Ssca2 {
        Ssca2 {
            nodes_per_thread: 64,
        }
    }
}

impl Default for Ssca2 {
    fn default() -> Self {
        Self::new()
    }
}

impl Ssca2 {
    /// Overrides the number of nodes each thread processes (scaling runs up or down).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_iterations(mut self, n: u64) -> Ssca2 {
        assert!(n > 0, "iteration count must be positive");
        self.nodes_per_thread = n;
        self
    }
}

impl Workload for Ssca2 {
    fn name(&self) -> &'static str {
        "ssca2"
    }

    fn setup(&self, threads: usize, seed: u64, _rng: &mut SimRng) -> WorkloadSetup {
        let iters = self.nodes_per_thread;
        let (i, n, addr, v, bound) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));

        let mut b = ProgramBuilder::new();
        b.imm(i, 0).imm(n, iters);
        let outer = b.label();
        b.bind(outer);
        b.pause(60);
        b.tx_begin();
        for _ in 0..UPDATES_PER_TX {
            b.imm(bound, ARRAY_LINES);
            b.rand(addr, bound);
            b.shli(addr, addr, 3);
            b.load(v, addr);
            b.addi(v, v, 1);
            b.store(addr, v);
        }
        b.tx_end();
        b.addi(i, i, 1);
        b.blt(i, n, outer);
        b.halt();
        let program = b.build();

        let programs = (0..threads)
            .map(|t| ThreadProgram {
                program: program.clone(),
                presets: vec![(R_TID, t as u64)],
                seed: seed ^ (t as u64).wrapping_mul(0x0BAD_F00D),
            })
            .collect();

        let expect = threads as u64 * iters * UPDATES_PER_TX;
        let checker = Box::new(move |m: &chats_machine::Machine| {
            check_region_sum(m, "adjacency updates", 0, ARRAY_LINES, expect)
        });

        WorkloadSetup {
            programs,
            init: Vec::new(),
            checker,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{smoke, SMOKE_SYSTEMS};

    #[test]
    fn ssca2_is_serializable() {
        smoke(&Ssca2::new(), &SMOKE_SYSTEMS);
    }

    #[test]
    fn ssca2_has_negligible_aborts() {
        use crate::spec::{run_workload, RunConfig};
        use chats_core::{HtmSystem, PolicyConfig};
        let out = run_workload(
            &Ssca2::new(),
            PolicyConfig::for_system(HtmSystem::Baseline),
            &RunConfig::quick_test(),
        )
        .unwrap();
        assert!(
            out.stats.total_aborts() <= 10,
            "ssca2 must be almost conflict-free, got {} aborts",
            out.stats.total_aborts()
        );
    }
}
