//! The `evm` workload family: smart-contract user-transaction streams
//! (see the `chats-evm` crate) registered as standard workloads.
//!
//! Each wrapper builds one deterministic scenario — per-thread TxVM
//! driver programs over shared account/storage lines, one hardware
//! transaction per user transaction — and turns the scenario's
//! [`StateCheck`](chats_evm::scenario::StateCheck) into the standard
//! final-memory invariant checker: total-balance conservation always,
//! plus word-for-word agreement with the sequential ground truth for the
//! commutative scenarios.

use crate::spec::{MemRegion, ThreadProgram, Workload, WorkloadSetup};
use chats_evm::scenario::{build, ScenarioKind};
use chats_evm::storage::StateLayout;
use chats_sim::SimRng;

/// Default user transactions per thread: at the paper's 16 cores this is
/// 104 000 user transactions per scenario run.
pub const DEFAULT_TXS_PER_THREAD: u64 = 6_500;

/// A scenario from the `chats-evm` frontier, as a registry workload.
#[derive(Debug, Clone)]
pub struct EvmWorkload {
    kind: ScenarioKind,
    txs_per_thread: u64,
}

impl EvmWorkload {
    /// Pairwise native transfers (`evm-transfers`).
    #[must_use]
    pub fn transfers() -> EvmWorkload {
        EvmWorkload {
            kind: ScenarioKind::Transfers,
            txs_per_thread: DEFAULT_TXS_PER_THREAD,
        }
    }

    /// Hot-contract token storm with Zipf-skewed accounts
    /// (`evm-token-storm`).
    #[must_use]
    pub fn token_storm() -> EvmWorkload {
        EvmWorkload {
            kind: ScenarioKind::TokenStorm,
            txs_per_thread: DEFAULT_TXS_PER_THREAD,
        }
    }

    /// Dex swaps with nested calls over background token transfers
    /// (`evm-dex`).
    #[must_use]
    pub fn dex() -> EvmWorkload {
        EvmWorkload {
            kind: ScenarioKind::Dex,
            txs_per_thread: DEFAULT_TXS_PER_THREAD,
        }
    }

    /// Overrides the per-thread user-transaction count (scaling runs up
    /// or down).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_txs_per_thread(mut self, n: u64) -> EvmWorkload {
        assert!(n > 0, "transaction count must be positive");
        self.txs_per_thread = n;
        self
    }

    /// The wrapped scenario kind.
    #[must_use]
    pub fn kind(&self) -> ScenarioKind {
        self.kind
    }

    /// User transactions one thread submits.
    #[must_use]
    pub fn txs_per_thread(&self) -> u64 {
        self.txs_per_thread
    }
}

impl Workload for EvmWorkload {
    fn name(&self) -> &'static str {
        match self.kind {
            ScenarioKind::Transfers => "evm-transfers",
            ScenarioKind::TokenStorm => "evm-token-storm",
            ScenarioKind::Dex => "evm-dex",
        }
    }

    fn family(&self) -> &'static str {
        "evm"
    }

    fn spec(&self) -> Option<String> {
        let l = StateLayout::standard();
        Some(format!(
            "evm:v1:kind={}:txs={}:accounts={}:slots={}",
            self.kind.name(),
            self.txs_per_thread,
            l.accounts,
            l.slots_per_contract
        ))
    }

    fn regions(&self) -> Vec<MemRegion> {
        let l = StateLayout::standard();
        // The parameter tables span from the end of state to wherever
        // the thread count puts them; attribute the whole tail.
        vec![
            MemRegion {
                name: "accounts",
                base_line: l.account_base_line,
                lines: l.accounts,
            },
            MemRegion {
                name: "token.storage",
                base_line: l.storage_base_line,
                lines: l.slots_per_contract,
            },
            MemRegion {
                name: "dex.storage",
                base_line: l.storage_base_line + l.slots_per_contract,
                lines: l.slots_per_contract,
            },
            MemRegion {
                name: "params",
                base_line: l.end_line(),
                lines: (1 << 15) - l.end_line(),
            },
        ]
    }

    fn setup(&self, threads: usize, seed: u64, _rng: &mut SimRng) -> WorkloadSetup {
        let scenario = build(self.kind, threads, self.txs_per_thread, seed);
        let programs = scenario
            .programs
            .into_iter()
            .map(|p| ThreadProgram {
                program: p.program,
                presets: p.presets,
                seed: p.seed,
            })
            .collect();
        let check = scenario.check;
        let checker =
            Box::new(move |m: &chats_machine::Machine| check.verify(&mut |a| m.inspect_word(a)));
        WorkloadSetup {
            programs,
            init: scenario.init,
            checker,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{smoke, SMOKE_SYSTEMS};
    use crate::spec::{run_workload, RunConfig};
    use chats_core::{HtmSystem, PolicyConfig};

    fn small(w: EvmWorkload) -> EvmWorkload {
        w.with_txs_per_thread(40)
    }

    #[test]
    fn evm_transfers_is_serializable() {
        smoke(&small(EvmWorkload::transfers()), &SMOKE_SYSTEMS);
    }

    #[test]
    fn evm_token_storm_is_serializable() {
        smoke(&small(EvmWorkload::token_storm()), &SMOKE_SYSTEMS);
    }

    #[test]
    fn evm_dex_is_serializable() {
        smoke(&small(EvmWorkload::dex()), &SMOKE_SYSTEMS);
    }

    #[test]
    fn one_commit_per_user_transaction() {
        let w = small(EvmWorkload::token_storm());
        let cfg = RunConfig::quick_test();
        let out = run_workload(&w, PolicyConfig::for_system(HtmSystem::Chats), &cfg).unwrap();
        assert_eq!(out.stats.commits, cfg.threads as u64 * w.txs_per_thread());
    }

    #[test]
    fn family_and_spec_are_tagged() {
        let w = EvmWorkload::dex();
        assert_eq!(w.family(), "evm");
        let spec = w.spec().unwrap();
        assert!(spec.contains("kind=dex"), "{spec}");
        assert!(spec.contains("txs=6500"), "{spec}");
        assert_ne!(
            spec,
            EvmWorkload::dex().with_txs_per_thread(7).spec().unwrap()
        );
        assert!(!w.is_micro());
    }

    #[test]
    fn regions_name_the_contract_footprint() {
        let w = EvmWorkload::token_storm();
        let regions = w.regions();
        let names: Vec<_> = regions.iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            ["accounts", "token.storage", "dex.storage", "params"]
        );
        // Regions tile without overlap.
        for pair in regions.windows(2) {
            assert_eq!(pair[0].base_line + pair[0].lines, pair[1].base_line);
        }
    }
}
