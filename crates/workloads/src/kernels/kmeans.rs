//! `kmeans`: migratory center updates.
//!
//! The paper (§VII): *"kmeans is a benchmark that hugely benefits from
//! correct data forwarding as contending threads have the same data access
//! patterns. Once a transaction modifies one of the dimensions for the
//! center, there is no further update, so this data can be safely forwarded
//! to other threads."*
//!
//! Per point, a thread runs three transactions: the contended center
//! update (one increment per dimension, **each dimension on its own cache
//! line** so every line is written exactly once per transaction — the
//! property that makes forwarding profitable) and two global-counter
//! updates. `kmeans-l` spreads updates over 16 centers, `kmeans-h` over 4.

use crate::kernels::{check_region_sum, line_word, R_TID};
use crate::spec::{ThreadProgram, Workload, WorkloadSetup};
use chats_mem::Addr;
use chats_sim::SimRng;
use chats_tvm::{ProgramBuilder, Reg};

/// Dimensions per center, one line each.
pub const DIMS: u64 = 4;
/// First line of the two global counters.
const GLOBALS_BASE: u64 = 4096;

/// The kmeans kernel.
#[derive(Debug, Clone)]
pub struct Kmeans {
    name: &'static str,
    centers: u64,
    points_per_thread: u64,
}

impl Kmeans {
    /// Low-contention flavour: 16 centers.
    #[must_use]
    pub fn low() -> Kmeans {
        Kmeans {
            name: "kmeans-l",
            centers: 16,
            points_per_thread: 32,
        }
    }

    /// High-contention flavour: 4 centers.
    #[must_use]
    pub fn high() -> Kmeans {
        Kmeans {
            name: "kmeans-h",
            centers: 4,
            points_per_thread: 32,
        }
    }
}

impl Kmeans {
    /// Overrides the number of points each thread classifies (scaling runs up or down).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_iterations(mut self, n: u64) -> Kmeans {
        assert!(n > 0, "iteration count must be positive");
        self.points_per_thread = n;
        self
    }
}

impl Workload for Kmeans {
    fn name(&self) -> &'static str {
        self.name
    }

    fn setup(&self, threads: usize, seed: u64, _rng: &mut SimRng) -> WorkloadSetup {
        let centers = self.centers;
        let points = self.points_per_thread;
        let (i, n, c, addr, v, bound) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));

        let mut b = ProgramBuilder::new();
        b.imm(i, 0).imm(n, points);
        let outer = b.label();
        b.bind(outer);
        // Pick the center this point belongs to.
        b.imm(bound, centers);
        b.rand(c, bound);
        // Classify the point: some non-transactional work.
        b.pause(150);
        // Transaction 1: update all dimensions of the chosen center.
        b.tx_begin();
        for d in 0..DIMS {
            b.muli(addr, c, DIMS * 8);
            b.addi(addr, addr, d * 8);
            b.load(v, addr);
            b.addi(v, v, 1);
            b.store(addr, v);
        }
        b.tx_end();
        // Transactions 2 and 3: the two global accumulators.
        for g in 0..2u64 {
            b.tx_begin();
            b.imm(addr, line_word(GLOBALS_BASE + g));
            b.load(v, addr);
            b.addi(v, v, 1);
            b.store(addr, v);
            b.tx_end();
        }
        b.addi(i, i, 1);
        b.blt(i, n, outer);
        b.halt();
        let program = b.build();

        let programs = (0..threads)
            .map(|t| ThreadProgram {
                program: program.clone(),
                presets: vec![(R_TID, t as u64)],
                seed: seed ^ (t as u64).wrapping_mul(0x9E37_79B9),
            })
            .collect();

        let total_points = threads as u64 * points;
        let c_lines = centers * DIMS;
        let checker = Box::new(move |m: &chats_machine::Machine| {
            check_region_sum(m, "center updates", 0, c_lines, total_points * DIMS)?;
            for g in 0..2u64 {
                let got = m.inspect_word(Addr(line_word(GLOBALS_BASE + g)));
                if got != total_points {
                    return Err(format!("global {g}: {got} != {total_points}"));
                }
            }
            Ok(())
        });

        WorkloadSetup {
            programs,
            init: Vec::new(),
            checker,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{smoke, SMOKE_SYSTEMS};

    #[test]
    fn kmeans_low_is_serializable() {
        smoke(&Kmeans::low(), &SMOKE_SYSTEMS);
    }

    #[test]
    fn kmeans_high_is_serializable() {
        smoke(&Kmeans::high(), &SMOKE_SYSTEMS);
    }

    #[test]
    fn flavours_differ_in_contention() {
        assert!(Kmeans::high().centers < Kmeans::low().centers);
    }
}
