//! `llb` microbenchmark: linked-list traversal then modification.
//!
//! The paper (§VI-C): *"llb emulates several threads traversing a linked
//! list where elements are searched, then modified"*, in low- and
//! high-contention flavours over a 512-element list.
//!
//! The traversal is a real pointer chase: each node's `next` field is read
//! from memory, so under CHATS the chase consumes forwarded speculative
//! values and builds chains. The low-contention flavour modifies elements
//! spread over the whole list; the high-contention flavour hammers a small
//! hot prefix that every walk also traverses.

use crate::kernels::{line_word, R_TID};
use crate::spec::{ThreadProgram, Workload, WorkloadSetup};
use chats_mem::Addr;
use chats_sim::SimRng;
use chats_tvm::{ProgramBuilder, Reg};

const LIST_LEN: u64 = 512;
/// Sentinel `next` for the last node.
const NIL: u64 = u64::MAX;

/// The llb kernel.
#[derive(Debug, Clone)]
pub struct Llb {
    name: &'static str,
    /// Targets are drawn uniformly from `0..hot_span`.
    hot_span: u64,
    iterations: u64,
}

impl Llb {
    /// Low-contention flavour: targets spread over the first 64 elements.
    #[must_use]
    pub fn low() -> Llb {
        Llb {
            name: "llb-l",
            hot_span: 64,
            iterations: 24,
        }
    }

    /// High-contention flavour: all threads modify the first 16 elements.
    #[must_use]
    pub fn high() -> Llb {
        Llb {
            name: "llb-h",
            hot_span: 16,
            iterations: 24,
        }
    }
}

impl Llb {
    /// Overrides the number of list operations each thread performs (scaling runs up or down).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_iterations(mut self, n: u64) -> Llb {
        assert!(n > 0, "iteration count must be positive");
        self.iterations = n;
        self
    }
}

impl Workload for Llb {
    fn name(&self) -> &'static str {
        self.name
    }

    fn is_micro(&self) -> bool {
        true
    }

    fn setup(&self, threads: usize, seed: u64, _rng: &mut SimRng) -> WorkloadSetup {
        let iters = self.iterations;
        let span = self.hot_span;
        // Node i lives on line i: word 0 = next node index, word 1 = value.
        let (i, n, cur, target, addr, v, bound, steps, max_steps) = (
            Reg(0),
            Reg(1),
            Reg(2),
            Reg(3),
            Reg(4),
            Reg(5),
            Reg(6),
            Reg(7),
            Reg(8),
        );

        let mut b = ProgramBuilder::new();
        b.imm(i, 0).imm(n, iters).imm(max_steps, LIST_LEN * 2);
        let outer = b.label();
        b.bind(outer);
        b.imm(bound, span);
        b.rand(target, bound);
        b.tx_begin();
        // Chase `next` pointers from the head until we reach the target.
        b.imm(cur, 0);
        b.imm(steps, 0);
        let walk = b.label();
        let found = b.label();
        b.bind(walk);
        b.beq(cur, target, found);
        b.shli(addr, cur, 3);
        b.load(cur, addr); // cur = node.next (a *forwardable* value)
        b.addi(steps, steps, 1);
        b.blt(steps, max_steps, walk);
        // Safety valve: a wrong speculative pointer sent us off the list;
        // fall through and modify whatever node we hold (validation will
        // abort us if the chase consumed a bad value).
        b.bind(found);
        b.shli(addr, target, 3);
        b.addi(addr, addr, 1); // value word (second word of the node line)
        b.load(v, addr);
        b.addi(v, v, 1);
        b.store(addr, v);
        b.tx_end();
        b.pause(100);
        b.addi(i, i, 1);
        b.blt(i, n, outer);
        b.halt();
        let program = b.build();

        let programs = (0..threads)
            .map(|t| ThreadProgram {
                program: program.clone(),
                presets: vec![(R_TID, t as u64)],
                seed: seed ^ (t as u64).wrapping_mul(0x1111_F0F0),
            })
            .collect();

        // Build the list: node i -> i + 1.
        let mut init = Vec::new();
        for node in 0..LIST_LEN {
            let next = if node + 1 == LIST_LEN { NIL } else { node + 1 };
            init.push((Addr(line_word(node)), next));
        }

        let expect = threads as u64 * iters;
        let checker = Box::new(move |m: &chats_machine::Machine| {
            // Values sum to the number of committed modifications.
            let total: u64 = (0..LIST_LEN)
                .map(|node| m.inspect_word(Addr(line_word(node) + 1)))
                .sum();
            if total != expect {
                return Err(format!("list values sum {total} != {expect}"));
            }
            // The structure itself must be intact: next pointers are never
            // written, so a corrupted pointer means speculation leaked.
            for node in 0..LIST_LEN {
                let next = m.inspect_word(Addr(line_word(node)));
                let want = if node + 1 == LIST_LEN { NIL } else { node + 1 };
                if next != want {
                    return Err(format!("node {node} next pointer corrupted: {next}"));
                }
            }
            Ok(())
        });

        WorkloadSetup {
            programs,
            init,
            checker,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{smoke, SMOKE_SYSTEMS};

    #[test]
    fn llb_low_is_serializable() {
        smoke(&Llb::low(), &SMOKE_SYSTEMS);
    }

    #[test]
    fn llb_high_is_serializable() {
        smoke(&Llb::high(), &SMOKE_SYSTEMS);
    }

    #[test]
    fn llb_is_micro() {
        assert!(Llb::low().is_micro());
    }
}
