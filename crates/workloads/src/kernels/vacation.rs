//! `vacation`: travel-reservation system.
//!
//! Read-mostly transactions over large reservation tables; contention is
//! very low in both flavours (§VII groups vacation with ssca2). The `-h`
//! flavour issues more queries and updates per reservation over a smaller
//! table, so its (still rare) conflicts are slightly more frequent.

use crate::kernels::{check_region_sum, R_TID};
use crate::spec::{ThreadProgram, Workload, WorkloadSetup};
use chats_sim::SimRng;
use chats_tvm::{ProgramBuilder, Reg};

/// The vacation kernel.
#[derive(Debug, Clone)]
pub struct Vacation {
    name: &'static str,
    table_lines: u64,
    queries_per_tx: u64,
    updates_per_tx: u64,
    reservations_per_thread: u64,
}

impl Vacation {
    /// Low-contention flavour.
    #[must_use]
    pub fn low() -> Vacation {
        Vacation {
            name: "vacation-l",
            table_lines: 4096,
            queries_per_tx: 6,
            updates_per_tx: 2,
            reservations_per_thread: 32,
        }
    }

    /// Higher-rate flavour.
    #[must_use]
    pub fn high() -> Vacation {
        Vacation {
            name: "vacation-h",
            table_lines: 2048,
            queries_per_tx: 10,
            updates_per_tx: 3,
            reservations_per_thread: 32,
        }
    }
}

impl Vacation {
    /// Overrides the number of reservations each thread makes (scaling runs up or down).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_iterations(mut self, n: u64) -> Vacation {
        assert!(n > 0, "iteration count must be positive");
        self.reservations_per_thread = n;
        self
    }
}

impl Workload for Vacation {
    fn name(&self) -> &'static str {
        self.name
    }

    fn setup(&self, threads: usize, seed: u64, _rng: &mut SimRng) -> WorkloadSetup {
        let iters = self.reservations_per_thread;
        let table = self.table_lines;
        let queries = self.queries_per_tx;
        let updates = self.updates_per_tx;
        let (i, n, addr, v, bound) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));

        let mut b = ProgramBuilder::new();
        b.imm(i, 0).imm(n, iters);
        let outer = b.label();
        b.bind(outer);
        b.pause(120);
        b.tx_begin();
        for _ in 0..queries {
            b.imm(bound, table);
            b.rand(addr, bound);
            b.shli(addr, addr, 3);
            b.load(v, addr);
        }
        for _ in 0..updates {
            b.imm(bound, table);
            b.rand(addr, bound);
            b.shli(addr, addr, 3);
            b.load(v, addr);
            b.addi(v, v, 1);
            b.store(addr, v);
        }
        b.tx_end();
        b.addi(i, i, 1);
        b.blt(i, n, outer);
        b.halt();
        let program = b.build();

        let programs = (0..threads)
            .map(|t| ThreadProgram {
                program: program.clone(),
                presets: vec![(R_TID, t as u64)],
                seed: seed ^ (t as u64).wrapping_mul(0x7A3B_11C5),
            })
            .collect();

        let expect = threads as u64 * iters * updates;
        let checker = Box::new(move |m: &chats_machine::Machine| {
            check_region_sum(m, "reservations", 0, table, expect)
        });

        WorkloadSetup {
            programs,
            init: Vec::new(),
            checker,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{smoke, SMOKE_SYSTEMS};

    #[test]
    fn vacation_low_is_serializable() {
        smoke(&Vacation::low(), &SMOKE_SYSTEMS);
    }

    #[test]
    fn vacation_high_is_serializable() {
        smoke(&Vacation::high(), &SMOKE_SYSTEMS);
    }
}
