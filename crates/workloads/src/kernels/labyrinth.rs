//! `labyrinth`: path routing over a shared grid.
//!
//! The paper (§VII): *"labyrinth shows no improvements given its scarce
//! parallelism when its shared data structure cannot be early released from
//! the read set of its main transaction."* Long transactions keep a large
//! slice of the grid in their read set while carving a path of writes;
//! every committed path invalidates everyone else's read set.

use crate::kernels::{check_region_sum, R_TID};
use crate::spec::{ThreadProgram, Workload, WorkloadSetup};
use chats_sim::SimRng;
use chats_tvm::{ProgramBuilder, Reg};

const GRID_LINES: u64 = 192;
const READS_PER_PATH: u64 = 64;
const WRITES_PER_PATH: u64 = 6;

/// The labyrinth kernel.
#[derive(Debug, Clone)]
pub struct Labyrinth {
    paths_per_thread: u64,
}

impl Labyrinth {
    /// Default scale.
    #[must_use]
    pub fn new() -> Labyrinth {
        Labyrinth {
            paths_per_thread: 6,
        }
    }
}

impl Default for Labyrinth {
    fn default() -> Self {
        Self::new()
    }
}

impl Labyrinth {
    /// Overrides the number of paths each thread routes (scaling runs up or down).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_iterations(mut self, n: u64) -> Labyrinth {
        assert!(n > 0, "iteration count must be positive");
        self.paths_per_thread = n;
        self
    }
}

impl Workload for Labyrinth {
    fn name(&self) -> &'static str {
        "labyrinth"
    }

    fn setup(&self, threads: usize, seed: u64, _rng: &mut SimRng) -> WorkloadSetup {
        let iters = self.paths_per_thread;
        let (i, n, addr, v, bound) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));

        let mut b = ProgramBuilder::new();
        b.imm(i, 0).imm(n, iters);
        let outer = b.label();
        b.bind(outer);
        b.tx_begin();
        // Route search: read a large slice of the grid into the read set.
        for _ in 0..READS_PER_PATH {
            b.imm(bound, GRID_LINES);
            b.rand(addr, bound);
            b.shli(addr, addr, 3);
            b.load(v, addr);
        }
        b.pause(80); // path computation
                     // Carve the path: write a handful of cells.
        for _ in 0..WRITES_PER_PATH {
            b.imm(bound, GRID_LINES);
            b.rand(addr, bound);
            b.shli(addr, addr, 3);
            b.load(v, addr);
            b.addi(v, v, 1);
            b.store(addr, v);
        }
        b.tx_end();
        b.pause(200);
        b.addi(i, i, 1);
        b.blt(i, n, outer);
        b.halt();
        let program = b.build();

        let programs = (0..threads)
            .map(|t| ThreadProgram {
                program: program.clone(),
                presets: vec![(R_TID, t as u64)],
                seed: seed ^ (t as u64).wrapping_mul(0x1F2E_3D4C),
            })
            .collect();

        let expect = threads as u64 * iters * WRITES_PER_PATH;
        let checker = Box::new(move |m: &chats_machine::Machine| {
            check_region_sum(m, "grid paths", 0, GRID_LINES, expect)
        });

        WorkloadSetup {
            programs,
            init: Vec::new(),
            checker,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{smoke, SMOKE_SYSTEMS};

    #[test]
    fn labyrinth_is_serializable() {
        smoke(&Labyrinth::new(), &SMOKE_SYSTEMS);
    }
}
