//! `yada`: long-running retriangulation transactions.
//!
//! The paper (§VII): *"yada implements long-running transactions [...]
//! several random memory locations are accessed in a read-modify-write
//! fashion which CHATS can easily exploit. Whenever a transaction modifies
//! a memory location, it would not modify it again, following a migration
//! pattern."*
//!
//! Each transaction touches `TOUCHES` random mesh cavities: reads, local
//! geometry work (pauses), then one increment per cavity — each line
//! written at most once per transaction.

use crate::kernels::{check_region_sum, R_TID};
use crate::spec::{ThreadProgram, Workload, WorkloadSetup};
use chats_sim::SimRng;
use chats_tvm::{ProgramBuilder, Reg};

const MESH_LINES: u64 = 192;
const TOUCHES: u64 = 6;

/// The yada kernel.
#[derive(Debug, Clone)]
pub struct Yada {
    triangles_per_thread: u64,
}

impl Yada {
    /// Default scale.
    #[must_use]
    pub fn new() -> Yada {
        Yada {
            triangles_per_thread: 20,
        }
    }
}

impl Default for Yada {
    fn default() -> Self {
        Self::new()
    }
}

impl Yada {
    /// Overrides the number of triangles each thread retriangulates (scaling runs up or down).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_iterations(mut self, n: u64) -> Yada {
        assert!(n > 0, "iteration count must be positive");
        self.triangles_per_thread = n;
        self
    }
}

impl Workload for Yada {
    fn name(&self) -> &'static str {
        "yada"
    }

    fn setup(&self, threads: usize, seed: u64, _rng: &mut SimRng) -> WorkloadSetup {
        let iters = self.triangles_per_thread;
        let (i, n, addr, v, bound) = (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4));

        let mut b = ProgramBuilder::new();
        b.imm(i, 0).imm(n, iters);
        let outer = b.label();
        b.bind(outer);
        b.tx_begin();
        for _ in 0..TOUCHES {
            // Pick a cavity element, read-modify-write it, then do the
            // geometric work for that element (a long transaction).
            b.imm(bound, MESH_LINES);
            b.rand(addr, bound);
            b.shli(addr, addr, 3);
            b.load(v, addr);
            b.pause(25);
            b.addi(v, v, 1);
            b.store(addr, v);
        }
        b.tx_end();
        // Non-transactional work between retriangulations.
        b.pause(200);
        b.addi(i, i, 1);
        b.blt(i, n, outer);
        b.halt();
        let program = b.build();

        let programs = (0..threads)
            .map(|t| ThreadProgram {
                program: program.clone(),
                presets: vec![(R_TID, t as u64)],
                seed: seed ^ (t as u64).wrapping_mul(0x51ED_270B),
            })
            .collect();

        let expect = threads as u64 * iters * TOUCHES;
        let checker = Box::new(move |m: &chats_machine::Machine| {
            check_region_sum(m, "mesh updates", 0, MESH_LINES, expect)
        });

        WorkloadSetup {
            programs,
            init: Vec::new(),
            checker,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{smoke, SMOKE_SYSTEMS};

    #[test]
    fn yada_is_serializable() {
        smoke(&Yada::new(), &SMOKE_SYSTEMS);
    }
}
