//! `intruder`: network-intrusion detection pipeline.
//!
//! The paper (§VII): capture pops from a FIFO queue where *"there is a
//! time gap between reading and modifying the structure pointer, which can
//! be read by multiple transactions simultaneously"* (the starving-writers
//! / false-cycle pathology), and reassembly traverses a tree that is
//! *"occasionally re-balanced"*, causing generalized aborts. A third
//! transaction drains the results queue.

use crate::kernels::{check_region_sum, line_word, R_TID};
use crate::spec::{ThreadProgram, Workload, WorkloadSetup};
use chats_mem::Addr;
use chats_sim::SimRng;
use chats_tvm::{ProgramBuilder, Reg};

/// FIFO head counter.
const FIFO_HEAD: u64 = 0;
/// Packet payload region (read-only).
const PACKETS_BASE: u64 = 64;
const PACKETS: u64 = 128;
/// Reassembly tree nodes.
const TREE_BASE: u64 = 1024;
const TREE_NODES: u64 = 64;
/// Results queue counter.
const RESULTS: u64 = 4096;
/// Every `REBALANCE_PERIOD`-th reassembly rewrites several tree nodes.
const REBALANCE_PERIOD: u64 = 8;
const REBALANCE_TOUCHES: u64 = 6;

/// The intruder kernel.
#[derive(Debug, Clone)]
pub struct Intruder {
    flows_per_thread: u64,
}

impl Intruder {
    /// Default scale.
    #[must_use]
    pub fn new() -> Intruder {
        Intruder {
            flows_per_thread: 24,
        }
    }
}

impl Default for Intruder {
    fn default() -> Self {
        Self::new()
    }
}

impl Intruder {
    /// Overrides the number of flows each thread processes (scaling runs up or down).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_iterations(mut self, n: u64) -> Intruder {
        assert!(n > 0, "iteration count must be positive");
        self.flows_per_thread = n;
        self
    }
}

impl Workload for Intruder {
    fn name(&self) -> &'static str {
        "intruder"
    }

    fn setup(&self, threads: usize, seed: u64, _rng: &mut SimRng) -> WorkloadSetup {
        let iters = self.flows_per_thread;
        let (i, n, addr, v, bound, pkt, tmp) =
            (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));

        let mut b = ProgramBuilder::new();
        b.imm(i, 0).imm(n, iters);
        let outer = b.label();
        b.bind(outer);

        // --- capture: pop the FIFO with a read-to-modify gap -------------
        b.tx_begin();
        b.imm(addr, line_word(FIFO_HEAD));
        b.load(v, addr);
        // Read the packet the head points at (time gap before the store).
        b.andi(pkt, v, PACKETS - 1);
        b.addi(pkt, pkt, PACKETS_BASE);
        b.shli(pkt, pkt, 3);
        b.load(tmp, pkt);
        b.pause(60);
        b.addi(v, v, 1);
        b.store(addr, v);
        b.tx_end();

        // --- reassembly: tree walk + insert, periodic rebalance ----------
        b.pause(100);
        b.tx_begin();
        b.andi(tmp, i, REBALANCE_PERIOD - 1);
        b.imm(v, REBALANCE_PERIOD - 1);
        let rebalance = b.label();
        let after = b.label();
        b.beq(tmp, v, rebalance);
        // Normal insert: read a root-to-leaf path, update the leaf.
        for depth in 0..3u64 {
            b.imm(bound, 1 << (depth + 1));
            b.rand(addr, bound);
            b.addi(addr, addr, TREE_BASE + (1 << (depth + 1)) - 2);
            b.shli(addr, addr, 3);
            b.load(v, addr);
        }
        b.imm(bound, TREE_NODES);
        b.rand(addr, bound);
        b.addi(addr, addr, TREE_BASE);
        b.shli(addr, addr, 3);
        b.load(v, addr);
        b.addi(v, v, 1);
        b.store(addr, v);
        b.jmp(after);
        // Rebalance: rewrite several nodes.
        b.bind(rebalance);
        for _ in 0..REBALANCE_TOUCHES {
            b.imm(bound, TREE_NODES);
            b.rand(addr, bound);
            b.addi(addr, addr, TREE_BASE);
            b.shli(addr, addr, 3);
            b.load(v, addr);
            b.addi(v, v, 1);
            b.store(addr, v);
        }
        b.bind(after);
        b.tx_end();

        // --- results: push into the results queue ------------------------
        b.tx_begin();
        b.imm(addr, line_word(RESULTS));
        b.load(v, addr);
        b.addi(v, v, 1);
        b.store(addr, v);
        b.tx_end();

        b.addi(i, i, 1);
        b.blt(i, n, outer);
        b.halt();
        let program = b.build();

        let programs = (0..threads)
            .map(|t| ThreadProgram {
                program: program.clone(),
                presets: vec![(R_TID, t as u64)],
                seed: seed ^ (t as u64).wrapping_mul(0xDEAD_BEEF),
            })
            .collect();

        // Packet payloads (read-only).
        let init: Vec<(Addr, u64)> = (0..PACKETS)
            .map(|p| (Addr(line_word(PACKETS_BASE + p)), p + 7))
            .collect();

        let total = threads as u64 * iters;
        // Iterations with i % PERIOD == PERIOD-1 rebalance (6 increments);
        // the rest insert (1 increment).
        let per_thread_rebalances = (0..iters)
            .filter(|i| i % REBALANCE_PERIOD == REBALANCE_PERIOD - 1)
            .count() as u64;
        let tree_expect = threads as u64
            * ((iters - per_thread_rebalances) + per_thread_rebalances * REBALANCE_TOUCHES);
        let checker = Box::new(move |m: &chats_machine::Machine| {
            let head = m.inspect_word(Addr(line_word(FIFO_HEAD)));
            if head != total {
                return Err(format!("fifo head {head} != {total}"));
            }
            let res = m.inspect_word(Addr(line_word(RESULTS)));
            if res != total {
                return Err(format!("results {res} != {total}"));
            }
            check_region_sum(m, "tree updates", TREE_BASE, TREE_NODES, tree_expect)
        });

        WorkloadSetup {
            programs,
            init,
            checker,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{smoke, SMOKE_SYSTEMS};

    #[test]
    fn intruder_is_serializable() {
        smoke(&Intruder::new(), &SMOKE_SYSTEMS);
    }
}
