//! `cadd` microbenchmark: cluster sums under a hot shared variable.
//!
//! The paper (§VI-C): *"every thread modifies a shared variable and
//! iterates over all the elements in the cluster calculating the sum of
//! every element plus the modified version of the variable"* — and §VII:
//! *"even if transactions hold a shared modified memory address for a long
//! time, CHATS manages to exploit parallelism by allowing several
//! transactions to have local copies of those locations."*
//!
//! The shared variable is written once at transaction start and then only
//! held, which is the ideal forwarding scenario: consumers receive a value
//! that will not change again before the producer commits.

use crate::kernels::{line_word, R_TID};
use crate::spec::{ThreadProgram, Workload, WorkloadSetup};
use chats_mem::Addr;
use chats_sim::SimRng;
use chats_tvm::{ProgramBuilder, Reg};

/// The hot shared variable.
const SHARED_VAR: u64 = 0;
const CLUSTERS_BASE: u64 = 8;
const CLUSTERS: u64 = 32;
const CLUSTER_LEN: u64 = 16;
/// Per-thread result slots.
const RESULTS_BASE: u64 = 1 << 16;

/// The cadd kernel.
#[derive(Debug, Clone)]
pub struct Cadd {
    iterations: u64,
}

impl Cadd {
    /// Default scale.
    #[must_use]
    pub fn new() -> Cadd {
        Cadd { iterations: 20 }
    }
}

impl Default for Cadd {
    fn default() -> Self {
        Self::new()
    }
}

impl Cadd {
    /// Overrides the number of cluster sums each thread computes (scaling runs up or down).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_iterations(mut self, n: u64) -> Cadd {
        assert!(n > 0, "iteration count must be positive");
        self.iterations = n;
        self
    }
}

impl Workload for Cadd {
    fn name(&self) -> &'static str {
        "cadd"
    }

    fn is_micro(&self) -> bool {
        true
    }

    fn setup(&self, threads: usize, seed: u64, _rng: &mut SimRng) -> WorkloadSetup {
        let iters = self.iterations;
        let (i, n, c, addr, v, sum, bound, e, res) = (
            Reg(0),
            Reg(1),
            Reg(2),
            Reg(3),
            Reg(4),
            Reg(5),
            Reg(6),
            Reg(7),
            Reg(8),
        );

        let mut b = ProgramBuilder::new();
        b.imm(i, 0).imm(n, iters);
        // Per-thread result slot address.
        b.addi(res, R_TID, RESULTS_BASE / 8);
        b.shli(res, res, 3);
        let outer = b.label();
        b.bind(outer);
        b.imm(bound, CLUSTERS);
        b.rand(c, bound);
        b.tx_begin();
        // Modify the shared variable first (then hold it for the rest of
        // the long transaction).
        b.imm(addr, line_word(SHARED_VAR));
        b.load(v, addr);
        b.addi(v, v, 1);
        b.store(addr, v);
        // Sum the whole cluster plus the modified variable.
        b.mov(sum, v);
        b.imm(e, 0);
        let inner = b.label();
        b.bind(inner);
        b.muli(addr, c, CLUSTER_LEN);
        b.add(addr, addr, e);
        b.addi(addr, addr, CLUSTERS_BASE);
        b.shli(addr, addr, 3);
        b.load(v, addr);
        b.add(sum, sum, v);
        b.addi(e, e, 1);
        b.imm(v, CLUSTER_LEN);
        b.blt(e, v, inner);
        b.store(res, sum);
        b.tx_end();
        b.pause(100);
        b.addi(i, i, 1);
        b.blt(i, n, outer);
        b.halt();
        let program = b.build();

        let programs = (0..threads)
            .map(|t| ThreadProgram {
                program: program.clone(),
                presets: vec![(R_TID, t as u64)],
                seed: seed ^ (t as u64).wrapping_mul(0xCADD_CADD),
            })
            .collect();

        // Populate the clusters with ones.
        let mut init = Vec::new();
        for k in 0..CLUSTERS * CLUSTER_LEN {
            init.push((Addr(line_word(CLUSTERS_BASE + k)), 1));
        }

        let total = threads as u64 * iters;
        let n_threads = threads as u64;
        let checker = Box::new(move |m: &chats_machine::Machine| {
            let var = m.inspect_word(Addr(line_word(SHARED_VAR)));
            if var != total {
                return Err(format!("shared variable {var} != {total}"));
            }
            // Each result is (cluster sum = CLUSTER_LEN) + (some value of
            // the shared variable in 1..=total).
            for t in 0..n_threads {
                let r = m.inspect_word(Addr(RESULTS_BASE + t * 8));
                let base = CLUSTER_LEN;
                if !(base + 1..=base + total).contains(&r) {
                    return Err(format!(
                        "thread {t} result {r} outside [{}, {}]",
                        base + 1,
                        base + total
                    ));
                }
            }
            Ok(())
        });

        WorkloadSetup {
            programs,
            init,
            checker,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{smoke, SMOKE_SYSTEMS};

    #[test]
    fn cadd_is_serializable() {
        smoke(&Cadd::new(), &SMOKE_SYSTEMS);
    }

    #[test]
    fn cadd_is_micro() {
        assert!(Cadd::new().is_micro());
    }
}
