//! `bayes`: Bayesian network structure learning.
//!
//! The paper **excludes** bayes from its evaluation (§VI-C): *"Due to the
//! inherent randomness exhibited by bayes, whose search algorithm may
//! result in varying amounts of work for the same input, we opted to
//! exclude it."* It is implemented here for completeness — available via
//! [`crate::registry::extended`] but deliberately absent from
//! [`crate::registry::all`], mirroring the paper.
//!
//! The kernel captures the benchmark's hill-climbing shape: long
//! transactions that read a variable-sized neighbourhood of the adjacency
//! structure, then apply an edge flip — and whose *work per transaction
//! depends on the data read*, the property that makes run time vary.

use crate::kernels::{line_word, R_TID};
use crate::spec::{ThreadProgram, Workload, WorkloadSetup};
use chats_mem::Addr;
use chats_sim::SimRng;
use chats_tvm::{ProgramBuilder, Reg};

const NODES: u64 = 48;
/// Edge-flip counter per node (word 0 of the node's line).
const GRAPH_BASE: u64 = 0;
/// Global learned-edges counter (line number).
const EDGES_LINE: u64 = 512;

/// The bayes kernel.
#[derive(Debug, Clone)]
pub struct Bayes {
    flips_per_thread: u64,
}

impl Bayes {
    /// Default scale.
    #[must_use]
    pub fn new() -> Bayes {
        Bayes {
            flips_per_thread: 12,
        }
    }

    /// Overrides the number of edge flips each thread attempts.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_iterations(mut self, n: u64) -> Bayes {
        assert!(n > 0, "iteration count must be positive");
        self.flips_per_thread = n;
        self
    }
}

impl Default for Bayes {
    fn default() -> Self {
        Self::new()
    }
}

impl Workload for Bayes {
    fn name(&self) -> &'static str {
        "bayes"
    }

    fn setup(&self, threads: usize, seed: u64, _rng: &mut SimRng) -> WorkloadSetup {
        let iters = self.flips_per_thread;
        let (i, n, node, addr, v, bound, deg, k) = (
            Reg(0),
            Reg(1),
            Reg(2),
            Reg(3),
            Reg(4),
            Reg(5),
            Reg(6),
            Reg(7),
        );

        let mut b = ProgramBuilder::new();
        b.imm(i, 0).imm(n, iters);
        let outer = b.label();
        b.bind(outer);
        b.pause(120); // score computation outside the transaction
        b.imm(bound, NODES);
        b.rand(node, bound);
        b.tx_begin();
        // Read the chosen node's current degree: the amount of further
        // work *depends on the data* (bayes's variable-work property).
        b.shli(addr, node, 3);
        b.load(deg, addr);
        // Scan `4 + deg % 8` neighbour nodes.
        b.remi(k, deg, 8);
        b.addi(k, k, 4);
        b.imm(v, 0);
        let scan = b.label();
        let done = b.label();
        b.bind(scan);
        b.bge(v, k, done);
        b.add(bound, node, v);
        b.remi(bound, bound, NODES);
        b.shli(addr, bound, 3);
        b.load(Reg(8), addr);
        b.pause(15);
        b.addi(v, v, 1);
        b.jmp(scan);
        b.bind(done);
        // Apply the flip: bump the node's degree and the global counter.
        b.shli(addr, node, 3);
        b.load(deg, addr);
        b.addi(deg, deg, 1);
        b.store(addr, deg);
        b.imm(addr, line_word(EDGES_LINE));
        b.load(v, addr);
        b.addi(v, v, 1);
        b.store(addr, v);
        b.tx_end();
        b.addi(i, i, 1);
        b.blt(i, n, outer);
        b.halt();
        let program = b.build();

        let programs = (0..threads)
            .map(|t| ThreadProgram {
                program: program.clone(),
                presets: vec![(R_TID, t as u64)],
                seed: seed ^ (t as u64).wrapping_mul(0xBA1E_5BA1),
            })
            .collect();

        let total = threads as u64 * iters;
        let checker = Box::new(move |m: &chats_machine::Machine| {
            let degrees: u64 = (0..NODES)
                .map(|nd| m.inspect_word(Addr(line_word(GRAPH_BASE + nd))))
                .sum();
            if degrees != total {
                return Err(format!("degree sum {degrees} != flips {total}"));
            }
            let edges = m.inspect_word(Addr(line_word(EDGES_LINE)));
            if edges != total {
                return Err(format!("edge counter {edges} != flips {total}"));
            }
            Ok(())
        });

        WorkloadSetup {
            programs,
            init: Vec::new(),
            checker,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{smoke, SMOKE_SYSTEMS};

    #[test]
    fn bayes_is_serializable() {
        smoke(&Bayes::new(), &SMOKE_SYSTEMS);
    }

    #[test]
    fn bayes_work_varies_with_data() {
        // The defining property: runtime differs across seeds more than a
        // fixed-work kernel would, because transaction length depends on
        // the degrees read. Just assert both seeds complete and differ.
        use crate::spec::{run_workload, RunConfig};
        use chats_core::{HtmSystem, PolicyConfig};
        let a = run_workload(
            &Bayes::new(),
            PolicyConfig::for_system(HtmSystem::Chats),
            &RunConfig::quick_test().with_seed(1),
        )
        .unwrap()
        .stats
        .cycles;
        let b = run_workload(
            &Bayes::new(),
            PolicyConfig::for_system(HtmSystem::Chats),
            &RunConfig::quick_test().with_seed(2),
        )
        .unwrap()
        .stats
        .cycles;
        assert_ne!(a, b, "bayes runs should vary with the seed");
    }
}
