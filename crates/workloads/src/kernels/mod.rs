//! The kernel collection plus shared bytecode-emission helpers.

pub mod bayes;
pub mod cadd;
pub mod evm;
pub mod genome;
pub mod intruder;
pub mod kmeans;
pub mod labyrinth;
pub mod llb;
pub mod ssca2;
pub mod vacation;
pub mod yada;

use chats_machine::Machine;
use chats_mem::Addr;
use chats_tvm::{ProgramBuilder, Reg};

/// Word address of the first word of line `line`.
#[must_use]
pub fn line_word(line: u64) -> u64 {
    line * 8
}

/// Thread id register convention (preset by every kernel).
pub const R_TID: Reg = Reg(31);

/// Emits `dst = (base_line + rand_below(lines)) * 8`, i.e. the word address
/// of a uniformly random line in a region. Clobbers `scratch`.
pub fn emit_rand_line_addr(
    b: &mut ProgramBuilder,
    dst: Reg,
    scratch: Reg,
    base_line: u64,
    lines: u64,
) {
    b.imm(scratch, lines);
    b.rand(dst, scratch);
    b.addi(dst, dst, base_line);
    b.shli(dst, dst, 3);
}

/// Emits an increment-by-one read-modify-write of the word at `addr_reg`.
/// Clobbers `tmp`.
pub fn emit_rmw_inc(b: &mut ProgramBuilder, addr_reg: Reg, tmp: Reg) {
    b.load(tmp, addr_reg);
    b.addi(tmp, tmp, 1);
    b.store(addr_reg, tmp);
}

/// Sums the first words of `lines` consecutive lines starting at
/// `base_line` in final memory.
#[must_use]
pub fn sum_region(m: &Machine, base_line: u64, lines: u64) -> u64 {
    (0..lines)
        .map(|i| m.inspect_word(Addr(line_word(base_line + i))))
        .sum()
}

/// Standard serializability check: the first words of a region must sum to
/// exactly `expect` (each committed transaction contributed exactly its
/// increments — no lost updates, no phantom speculative writes).
pub fn check_region_sum(
    m: &Machine,
    what: &str,
    base_line: u64,
    lines: u64,
    expect: u64,
) -> Result<(), String> {
    let got = sum_region(m, base_line, lines);
    if got == expect {
        Ok(())
    } else {
        Err(format!("{what}: region sum {got} != expected {expect}"))
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::spec::{run_workload, RunConfig, Workload};
    use chats_core::{HtmSystem, PolicyConfig};

    /// Runs `w` at test scale under the given systems; panics on any
    /// invariant violation.
    pub fn smoke(w: &dyn Workload, systems: &[HtmSystem]) {
        for &s in systems {
            let cfg = RunConfig::quick_test();
            let out = run_workload(w, PolicyConfig::for_system(s), &cfg)
                .unwrap_or_else(|e| panic!("{e}"));
            assert!(
                out.stats.commits > 0,
                "{} under {s:?}: no commits",
                w.name()
            );
        }
    }

    pub const SMOKE_SYSTEMS: [HtmSystem; 3] =
        [HtmSystem::Baseline, HtmSystem::Chats, HtmSystem::Pchats];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_word_is_word_address() {
        assert_eq!(line_word(0), 0);
        assert_eq!(line_word(3), 24);
    }
}
