//! `genome`: producer-consumer segment insertion.
//!
//! The paper (§VII): *"In genome, the same behavior [as kmeans] is
//! expected since genome sequencing follows an analogous behavior of
//! producer-consumer dependencies"*, at lower contention.
//!
//! Threads insert segments into hashed buckets: a transaction bumps the
//! bucket's insertion counter (the contended producer-consumer value) and
//! publishes the segment into the slot the old counter selected. Collisions
//! on the counter are exactly the values CHATS forwards.

use crate::kernels::{check_region_sum, line_word, R_TID};
use crate::spec::{ThreadProgram, Workload, WorkloadSetup};
use chats_mem::Addr;
use chats_sim::SimRng;
use chats_tvm::{ProgramBuilder, Reg};

const BUCKETS: u64 = 48;
/// Max insertions per bucket the slot region accommodates.
const SLOTS_PER_BUCKET: u64 = 512;
const SLOTS_BASE: u64 = 1 << 16;

/// The genome kernel.
#[derive(Debug, Clone)]
pub struct Genome {
    segments_per_thread: u64,
}

impl Genome {
    /// Default scale.
    #[must_use]
    pub fn new() -> Genome {
        Genome {
            segments_per_thread: 48,
        }
    }
}

impl Default for Genome {
    fn default() -> Self {
        Self::new()
    }
}

impl Genome {
    /// Overrides the number of segments each thread inserts (scaling runs up or down).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_iterations(mut self, n: u64) -> Genome {
        assert!(n > 0, "iteration count must be positive");
        self.segments_per_thread = n;
        self
    }
}

impl Workload for Genome {
    fn name(&self) -> &'static str {
        "genome"
    }

    fn setup(&self, threads: usize, seed: u64, _rng: &mut SimRng) -> WorkloadSetup {
        let segs = self.segments_per_thread;
        let (i, n, h, cnt, addr, slot, bound, tidv) = (
            Reg(0),
            Reg(1),
            Reg(2),
            Reg(3),
            Reg(4),
            Reg(5),
            Reg(6),
            Reg(7),
        );

        let mut b = ProgramBuilder::new();
        b.imm(i, 0).imm(n, segs);
        b.addi(tidv, R_TID, 1); // published segment payload: tid + 1
        let outer = b.label();
        b.bind(outer);
        // Hash the segment (local work), pick a bucket.
        b.pause(120);
        b.imm(bound, BUCKETS);
        b.rand(h, bound);
        b.tx_begin();
        // Bump the bucket counter...
        b.shli(addr, h, 3);
        b.load(cnt, addr);
        b.addi(slot, cnt, 1);
        b.store(addr, slot);
        // ...and publish into the slot the old counter picked:
        // slot_line = SLOTS_BASE + h * SLOTS_PER_BUCKET + cnt.
        b.muli(slot, h, SLOTS_PER_BUCKET);
        b.add(slot, slot, cnt);
        b.addi(slot, slot, SLOTS_BASE);
        b.shli(slot, slot, 3);
        b.store(slot, tidv);
        b.tx_end();
        b.addi(i, i, 1);
        b.blt(i, n, outer);
        b.halt();
        let program = b.build();

        let programs = (0..threads)
            .map(|t| ThreadProgram {
                program: program.clone(),
                presets: vec![(R_TID, t as u64)],
                seed: seed ^ (t as u64).wrapping_mul(0xA5A5_5A5A),
            })
            .collect();

        let total = threads as u64 * segs;
        let checker = Box::new(move |m: &chats_machine::Machine| {
            check_region_sum(m, "bucket counters", 0, BUCKETS, total)?;
            // Atomicity of counter-bump + publish: every insertion landed in
            // a distinct slot, so exactly `total` slots are non-zero.
            let mut published = 0u64;
            for bkt in 0..BUCKETS {
                let cnt = m.inspect_word(Addr(line_word(bkt)));
                for s in 0..cnt.min(SLOTS_PER_BUCKET) {
                    let v =
                        m.inspect_word(Addr(line_word(SLOTS_BASE + bkt * SLOTS_PER_BUCKET + s)));
                    if v != 0 {
                        published += 1;
                    } else {
                        return Err(format!("bucket {bkt} slot {s} empty below its counter"));
                    }
                }
            }
            if published != total {
                return Err(format!("published {published} != inserted {total}"));
            }
            Ok(())
        });

        WorkloadSetup {
            programs,
            init: Vec::new(),
            checker,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::testutil::{smoke, SMOKE_SYSTEMS};

    #[test]
    fn genome_is_serializable() {
        smoke(&Genome::new(), &SMOKE_SYSTEMS);
    }
}
