//! Trace replay: run recorded transactional access traces through the
//! simulator.
//!
//! Users who have per-thread memory traces of a transactional application
//! (from instrumentation, a binary translator, or another simulator) can
//! replay them under any HTM system without writing TxVM assembly. A trace
//! is a sequence of [`TraceOp`]s per thread; [`TraceWorkload`] compiles
//! each into a TxVM program and plugs into the normal [`Workload`] runner.
//!
//! A simple line-oriented text format is supported via
//! [`ThreadTrace::parse`]:
//!
//! ```text
//! # comments and blank lines are ignored
//! begin
//! load 0x40
//! compute 25
//! store 0x48 7
//! end
//! ```

use crate::spec::{ThreadProgram, Workload, WorkloadSetup};
use chats_mem::Addr;
use chats_sim::SimRng;
use chats_tvm::{Program, ProgramBuilder, Reg};

/// One recorded operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Transaction begin.
    Begin,
    /// Transactional (or plain, if outside begin/end) load of a word.
    Load(u64),
    /// Store of `value` to a word address.
    Store(u64, u64),
    /// Non-memory work in cycles.
    Compute(u64),
    /// Transaction end (commit point).
    End,
}

/// A per-thread operation sequence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadTrace {
    /// The operations, in program order.
    pub ops: Vec<TraceOp>,
}

/// A parse failure, with the offending line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// Line the error occurred on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

fn parse_num(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

impl ThreadTrace {
    /// Parses the line-oriented text format (see the [module docs](self)).
    ///
    /// # Errors
    ///
    /// Returns the first malformed line.
    pub fn parse(text: &str) -> Result<ThreadTrace, ParseTraceError> {
        let mut ops = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let l = raw.trim();
            if l.is_empty() || l.starts_with('#') {
                continue;
            }
            let mut parts = l.split_whitespace();
            let op = parts.next().expect("non-empty line has a token");
            let err = |message: String| ParseTraceError { line, message };
            let parsed = match op {
                "begin" => TraceOp::Begin,
                "end" => TraceOp::End,
                "load" => {
                    let a = parts
                        .next()
                        .and_then(parse_num)
                        .ok_or_else(|| err("load needs an address".into()))?;
                    TraceOp::Load(a)
                }
                "store" => {
                    let a = parts
                        .next()
                        .and_then(parse_num)
                        .ok_or_else(|| err("store needs an address".into()))?;
                    let v = parts
                        .next()
                        .and_then(parse_num)
                        .ok_or_else(|| err("store needs a value".into()))?;
                    TraceOp::Store(a, v)
                }
                "compute" => {
                    let c = parts
                        .next()
                        .and_then(parse_num)
                        .ok_or_else(|| err("compute needs a cycle count".into()))?;
                    TraceOp::Compute(c)
                }
                other => return Err(err(format!("unknown op {other:?}"))),
            };
            if parts.next().is_some() {
                return Err(err("trailing tokens".into()));
            }
            ops.push(parsed);
        }
        Ok(ThreadTrace { ops })
    }

    /// Compiles the trace into a TxVM program.
    ///
    /// # Panics
    ///
    /// Panics on unbalanced `begin`/`end` pairs.
    #[must_use]
    pub fn compile(&self) -> Program {
        let (a, v, dummy) = (Reg(0), Reg(1), Reg(2));
        let mut b = ProgramBuilder::new();
        let mut depth = 0u32;
        for op in &self.ops {
            match *op {
                TraceOp::Begin => {
                    assert_eq!(depth, 0, "nested begin in trace");
                    depth = 1;
                    b.tx_begin();
                }
                TraceOp::End => {
                    assert_eq!(depth, 1, "end without begin in trace");
                    depth = 0;
                    b.tx_end();
                }
                TraceOp::Load(addr) => {
                    b.imm(a, addr);
                    b.load(dummy, a);
                }
                TraceOp::Store(addr, value) => {
                    b.imm(a, addr);
                    b.imm(v, value);
                    b.store(a, v);
                }
                TraceOp::Compute(c) => {
                    b.pause(c.max(1));
                }
            }
        }
        assert_eq!(depth, 0, "trace ends inside a transaction");
        b.halt();
        b.build()
    }
}

/// A workload built from one trace per thread.
pub struct TraceWorkload {
    traces: Vec<ThreadTrace>,
    init: Vec<(Addr, u64)>,
    expect: Vec<(Addr, u64)>,
}

impl TraceWorkload {
    /// A workload replaying `traces` (one per thread).
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    #[must_use]
    pub fn new(traces: Vec<ThreadTrace>) -> TraceWorkload {
        assert!(!traces.is_empty(), "need at least one thread trace");
        TraceWorkload {
            traces,
            init: Vec::new(),
            expect: Vec::new(),
        }
    }

    /// Adds an initial memory word.
    #[must_use]
    pub fn with_init(mut self, addr: u64, value: u64) -> TraceWorkload {
        self.init.push((Addr(addr), value));
        self
    }

    /// Adds an expected final memory word, checked after the run.
    #[must_use]
    pub fn with_expectation(mut self, addr: u64, value: u64) -> TraceWorkload {
        self.expect.push((Addr(addr), value));
        self
    }
}

impl Workload for TraceWorkload {
    fn name(&self) -> &'static str {
        "trace-replay"
    }

    fn setup(&self, threads: usize, seed: u64, _rng: &mut SimRng) -> WorkloadSetup {
        assert_eq!(
            threads,
            self.traces.len(),
            "trace-replay needs exactly one trace per thread (set RunConfig::threads)"
        );
        let programs = self
            .traces
            .iter()
            .enumerate()
            .map(|(t, tr)| ThreadProgram {
                program: tr.compile(),
                presets: vec![],
                seed: seed ^ t as u64,
            })
            .collect();
        let expect = self.expect.clone();
        let checker = Box::new(move |m: &chats_machine::Machine| {
            for (addr, want) in &expect {
                let got = m.inspect_word(*addr);
                if got != *want {
                    return Err(format!("word {addr:?}: {got} != expected {want}"));
                }
            }
            Ok(())
        });
        WorkloadSetup {
            programs,
            init: self.init.clone(),
            checker,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{run_workload, RunConfig};
    use chats_core::{HtmSystem, PolicyConfig};

    #[test]
    fn parses_the_text_format() {
        let t = ThreadTrace::parse(
            "# header\n\
             begin\n\
             load 0x40\n\
             compute 25\n\
             store 0x48 7\n\
             end\n",
        )
        .unwrap();
        assert_eq!(
            t.ops,
            vec![
                TraceOp::Begin,
                TraceOp::Load(0x40),
                TraceOp::Compute(25),
                TraceOp::Store(0x48, 7),
                TraceOp::End,
            ]
        );
    }

    #[test]
    fn parse_reports_line_numbers() {
        let e = ThreadTrace::parse("begin\nstore 5\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("value"));
    }

    #[test]
    fn parse_rejects_unknown_ops() {
        let e = ThreadTrace::parse("frobnicate 1\n").unwrap_err();
        assert!(e.message.contains("unknown op"));
    }

    #[test]
    #[should_panic(expected = "ends inside")]
    fn unbalanced_trace_panics_at_compile() {
        let t = ThreadTrace {
            ops: vec![TraceOp::Begin, TraceOp::Load(0)],
        };
        let _ = t.compile();
    }

    #[test]
    fn replay_runs_under_every_system() {
        // Two threads transactionally store to distinct words of the same
        // line, a classic false-sharing conflict.
        let t0 = ThreadTrace::parse("begin\nload 0x0\nstore 0x0 5\nend\n").unwrap();
        let t1 = ThreadTrace::parse("compute 50\nbegin\nload 0x1\nstore 0x1 6\nend\n").unwrap();
        for sys in [HtmSystem::Baseline, HtmSystem::Chats] {
            let w = TraceWorkload::new(vec![t0.clone(), t1.clone()])
                .with_expectation(0, 5)
                .with_expectation(1, 6);
            let mut cfg = RunConfig::quick_test();
            cfg.threads = 2;
            let out = run_workload(&w, PolicyConfig::for_system(sys), &cfg)
                .unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(out.stats.commits, 2, "{sys:?}");
        }
    }

    #[test]
    fn replay_respects_initial_memory() {
        let t = ThreadTrace::parse("begin\nload 0x10\nend\n").unwrap();
        let w = TraceWorkload::new(vec![t])
            .with_init(0x10, 42)
            .with_expectation(0x10, 42);
        let mut cfg = RunConfig::quick_test();
        cfg.threads = 1;
        run_workload(&w, PolicyConfig::for_system(HtmSystem::Chats), &cfg).unwrap();
    }
}
