//! The workload abstraction and the standard runner.

use chats_core::PolicyConfig;
use chats_machine::{FaultPlan, Machine, SimError, TraceSink, Tuning};
use chats_mem::Addr;
use chats_sim::{SimRng, SystemConfig};
use chats_stats::RunStats;
use chats_tvm::{Program, Reg, Vm};

/// Final-memory invariant checker: returns a description of the violation
/// if transactional semantics were broken.
pub type Checker = Box<dyn Fn(&Machine) -> Result<(), String>>;

/// One thread's program plus its initial register file.
#[derive(Debug, Clone)]
pub struct ThreadProgram {
    /// The bytecode to execute.
    pub program: Program,
    /// Registers preset before execution (thread id, base addresses, ...).
    pub presets: Vec<(Reg, u64)>,
    /// Seed for the thread's private random stream.
    pub seed: u64,
}

/// A fully instantiated workload: programs, initial memory, and the
/// invariant checker.
pub struct WorkloadSetup {
    /// One program per thread.
    pub programs: Vec<ThreadProgram>,
    /// Initial memory contents (word address, value).
    pub init: Vec<(Addr, u64)>,
    /// Validates final memory; returns a description of the violation if
    /// transactional semantics were broken.
    pub checker: Checker,
}

/// A named line region of a workload's memory footprint, for hot-line
/// attribution in observability reports (accounts vs contract storage vs
/// read-only parameter tables, say).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemRegion {
    /// Region name (e.g. `"token.storage"`).
    pub name: &'static str,
    /// First line of the region.
    pub base_line: u64,
    /// Line count.
    pub lines: u64,
}

impl MemRegion {
    /// `true` if `line` falls inside this region.
    #[must_use]
    pub fn contains(&self, line: u64) -> bool {
        (self.base_line..self.base_line + self.lines).contains(&line)
    }
}

/// A named transactional kernel.
pub trait Workload {
    /// Registry name (e.g. `"kmeans-h"`).
    fn name(&self) -> &'static str;
    /// `true` for the microbenchmarks excluded from the paper's means.
    fn is_micro(&self) -> bool {
        false
    }
    /// Family tag for registry and CLI filtering: `"stamp"`, `"micro"`,
    /// or `"evm"`. The default derives it from [`Workload::is_micro`];
    /// only new families need to override.
    fn family(&self) -> &'static str {
        if self.is_micro() {
            "micro"
        } else {
            "stamp"
        }
    }
    /// Content key of the workload's generator parameters, joined into
    /// job identities by the runner. `None` (the default) means the name
    /// alone identifies the setup — parameterised generators (the evm
    /// scenarios) return a string covering every knob, so changing a
    /// default scale can never alias a stale cache entry.
    fn spec(&self) -> Option<String> {
        None
    }
    /// Named line regions of the workload's footprint, for per-region
    /// attribution in reports. Empty (the default) means no attribution.
    fn regions(&self) -> Vec<MemRegion> {
        Vec::new()
    }
    /// Builds the programs, memory image and checker for `threads` threads.
    fn setup(&self, threads: usize, seed: u64, rng: &mut SimRng) -> WorkloadSetup;
}

/// How to run a workload.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Hardware description.
    pub system: SystemConfig,
    /// Machine tuning.
    pub tuning: Tuning,
    /// Number of threads (defaults to the core count).
    pub threads: usize,
    /// Root seed.
    pub seed: u64,
    /// Cycle budget.
    pub max_cycles: u64,
    /// Fault plan installed before the run (`None`, the default, leaves
    /// the machine bit-identical to one that never heard of faults).
    pub faults: Option<FaultPlan>,
}

impl RunConfig {
    /// The paper's 16-core configuration.
    #[must_use]
    pub fn paper() -> RunConfig {
        let system = SystemConfig::default();
        RunConfig {
            threads: system.core.cores,
            system,
            tuning: Tuning::default(),
            seed: 0xC4A75,
            max_cycles: 2_000_000_000,
            faults: None,
        }
    }

    /// A scaled-down 4-core machine for fast unit tests, with the
    /// atomicity oracle armed: every commit in every test run is checked
    /// against the §III-C serializability criterion.
    #[must_use]
    pub fn quick_test() -> RunConfig {
        let system = SystemConfig::small_test();
        RunConfig {
            threads: system.core.cores,
            system,
            tuning: Tuning {
                check_atomicity: true,
                ..Tuning::default()
            },
            seed: 0xC4A75,
            max_cycles: 500_000_000,
            faults: None,
        }
    }

    /// Builder-style seed override.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> RunConfig {
        self.seed = seed;
        self
    }

    /// Builder-style fault-plan override.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> RunConfig {
        self.faults = Some(plan);
        self
    }
}

/// Result of one workload run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The statistics gathered by the machine.
    pub stats: RunStats,
}

/// A failed workload run: the reason, plus whatever statistics the
/// machine had gathered when it stopped — so a timed-out or stalled job
/// can still be reported with its partial progress instead of nothing.
#[derive(Debug, Clone)]
pub struct RunFailure {
    /// Human-readable cause (workload, system, error).
    pub message: String,
    /// Statistics at the moment of failure (`cycles` is set to the cycle
    /// the run stopped at). Boxed to keep the `Err` variant small.
    pub partial: Option<Box<RunStats>>,
    /// The run exceeded its cycle budget (as opposed to deadlocking,
    /// tripping the watchdog, or violating an invariant).
    pub timed_out: bool,
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Instantiates `workload`, runs it under `policy`, checks its invariant
/// and returns the statistics.
///
/// # Errors
///
/// Returns an error string on simulation timeout/deadlock or invariant
/// violation (an HTM correctness bug).
pub fn run_workload(
    workload: &dyn Workload,
    policy: PolicyConfig,
    cfg: &RunConfig,
) -> Result<RunOutput, String> {
    run_machine(workload, policy, cfg, None)
        .map(|(out, _)| out)
        .map_err(|fail| fail.message)
}

/// Like [`run_workload`], but failures keep their partial statistics
/// (see [`RunFailure`]).
///
/// # Errors
///
/// Returns a [`RunFailure`] on simulation timeout/deadlock/watchdog stall
/// or invariant violation.
pub fn run_workload_partial(
    workload: &dyn Workload,
    policy: PolicyConfig,
    cfg: &RunConfig,
) -> Result<RunOutput, RunFailure> {
    run_machine(workload, policy, cfg, None).map(|(out, _)| out)
}

/// Like [`run_workload`], but routes every protocol trace event into
/// `sink` and hands the sink back with the statistics, so callers can
/// reconstruct the run's timeline (see the `chats-obs` crate).
///
/// # Errors
///
/// Returns an error string on simulation timeout/deadlock or invariant
/// violation (an HTM correctness bug). The sink is lost on error.
pub fn run_workload_traced(
    workload: &dyn Workload,
    policy: PolicyConfig,
    cfg: &RunConfig,
    sink: Box<dyn TraceSink>,
) -> Result<(RunOutput, Box<dyn TraceSink>), String> {
    run_machine(workload, policy, cfg, Some(sink))
        .map(|(out, sink)| (out, sink.expect("machine returns the installed sink")))
        .map_err(|fail| fail.message)
}

/// A machine built and loaded for one `(workload, policy, config)` run,
/// plus the workload's invariant checker.
///
/// This is **the** construction path: `run_workload`, the runner's resume
/// machinery and the dissection tool all build machines through here, so
/// an identically parameterised [`prepare_run`] always yields an
/// identically constructed machine — the property `Machine::restore`'s
/// configuration guard relies on.
pub struct PreparedRun {
    /// The loaded machine, ready to run (trace sinks and commit intervals
    /// are installed by the caller).
    pub machine: Machine,
    /// Validates final memory after the run.
    pub checker: Checker,
}

/// Builds the machine for `(workload, policy, cfg)`: deterministic
/// workload setup from the config seed, fault plan installation, initial
/// memory image, and one VM per thread.
///
/// # Panics
///
/// Panics if the workload produces a thread count different from
/// `cfg.threads`.
#[must_use]
pub fn prepare_run(workload: &dyn Workload, policy: PolicyConfig, cfg: &RunConfig) -> PreparedRun {
    let mut sys = cfg.system;
    sys.core.cores = cfg.threads;
    let mut rng = SimRng::seed_from(cfg.seed);
    let setup = workload.setup(cfg.threads, cfg.seed, &mut rng);
    assert_eq!(
        setup.programs.len(),
        cfg.threads,
        "workload produced a wrong thread count"
    );
    let mut m = Machine::new(sys, policy, cfg.tuning, cfg.seed);
    if let Some(plan) = &cfg.faults {
        m.set_fault_plan(plan);
    }
    for (addr, v) in &setup.init {
        m.store_init(*addr, *v);
    }
    for (t, tp) in setup.programs.into_iter().enumerate() {
        let mut vm = Vm::new(tp.program, tp.seed);
        for (r, v) in tp.presets {
            vm.preset_reg(r, v);
        }
        m.load_thread(t, vm);
    }
    PreparedRun {
        machine: m,
        checker: setup.checker,
    }
}

fn run_machine(
    workload: &dyn Workload,
    policy: PolicyConfig,
    cfg: &RunConfig,
    sink: Option<Box<dyn TraceSink>>,
) -> Result<(RunOutput, Option<Box<dyn TraceSink>>), RunFailure> {
    let PreparedRun {
        machine: mut m,
        checker,
    } = prepare_run(workload, policy, cfg);
    if let Some(sink) = sink {
        m.set_trace_sink(sink);
    }
    let stats = match m.run(cfg.max_cycles) {
        Ok(s) => s,
        Err(e) => {
            let (message, stopped_at) = match &e {
                SimError::Timeout { at_cycle } => (
                    format!(
                        "{} under {:?}: timed out at cycle {at_cycle}",
                        workload.name(),
                        policy.system
                    ),
                    *at_cycle,
                ),
                SimError::Deadlock { at_cycle, .. } => (
                    format!("{} under {:?}: {e}", workload.name(), policy.system),
                    *at_cycle,
                ),
                SimError::WatchdogStall { report } => (
                    format!("{} under {:?}: {e}", workload.name(), policy.system),
                    report.at_cycle,
                ),
            };
            let mut partial = m.stats().clone();
            partial.cycles = stopped_at;
            return Err(RunFailure {
                message,
                partial: Some(Box::new(partial)),
                timed_out: matches!(e, SimError::Timeout { .. }),
            });
        }
    };
    (checker)(&m).map_err(|e| RunFailure {
        message: format!(
            "{} under {:?}: transactional semantics violated: {e}",
            workload.name(),
            policy.system
        ),
        partial: Some(Box::new(stats.clone())),
        timed_out: false,
    })?;
    let sink = m.take_trace_sink();
    Ok((RunOutput { stats }, sink))
}
