//! The workload abstraction and the standard runner.

use chats_core::PolicyConfig;
use chats_machine::{Machine, SimError, TraceSink, Tuning};
use chats_mem::Addr;
use chats_sim::{SimRng, SystemConfig};
use chats_stats::RunStats;
use chats_tvm::{Program, Reg, Vm};

/// Final-memory invariant checker: returns a description of the violation
/// if transactional semantics were broken.
pub type Checker = Box<dyn Fn(&Machine) -> Result<(), String>>;

/// One thread's program plus its initial register file.
#[derive(Debug, Clone)]
pub struct ThreadProgram {
    /// The bytecode to execute.
    pub program: Program,
    /// Registers preset before execution (thread id, base addresses, ...).
    pub presets: Vec<(Reg, u64)>,
    /// Seed for the thread's private random stream.
    pub seed: u64,
}

/// A fully instantiated workload: programs, initial memory, and the
/// invariant checker.
pub struct WorkloadSetup {
    /// One program per thread.
    pub programs: Vec<ThreadProgram>,
    /// Initial memory contents (word address, value).
    pub init: Vec<(Addr, u64)>,
    /// Validates final memory; returns a description of the violation if
    /// transactional semantics were broken.
    pub checker: Checker,
}

/// A named transactional kernel.
pub trait Workload {
    /// Registry name (e.g. `"kmeans-h"`).
    fn name(&self) -> &'static str;
    /// `true` for the microbenchmarks excluded from the paper's means.
    fn is_micro(&self) -> bool {
        false
    }
    /// Builds the programs, memory image and checker for `threads` threads.
    fn setup(&self, threads: usize, seed: u64, rng: &mut SimRng) -> WorkloadSetup;
}

/// How to run a workload.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Hardware description.
    pub system: SystemConfig,
    /// Machine tuning.
    pub tuning: Tuning,
    /// Number of threads (defaults to the core count).
    pub threads: usize,
    /// Root seed.
    pub seed: u64,
    /// Cycle budget.
    pub max_cycles: u64,
}

impl RunConfig {
    /// The paper's 16-core configuration.
    #[must_use]
    pub fn paper() -> RunConfig {
        let system = SystemConfig::default();
        RunConfig {
            threads: system.core.cores,
            system,
            tuning: Tuning::default(),
            seed: 0xC4A75,
            max_cycles: 2_000_000_000,
        }
    }

    /// A scaled-down 4-core machine for fast unit tests, with the
    /// atomicity oracle armed: every commit in every test run is checked
    /// against the §III-C serializability criterion.
    #[must_use]
    pub fn quick_test() -> RunConfig {
        let system = SystemConfig::small_test();
        RunConfig {
            threads: system.core.cores,
            system,
            tuning: Tuning {
                check_atomicity: true,
                ..Tuning::default()
            },
            seed: 0xC4A75,
            max_cycles: 500_000_000,
        }
    }

    /// Builder-style seed override.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> RunConfig {
        self.seed = seed;
        self
    }
}

/// Result of one workload run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The statistics gathered by the machine.
    pub stats: RunStats,
}

/// Instantiates `workload`, runs it under `policy`, checks its invariant
/// and returns the statistics.
///
/// # Errors
///
/// Returns an error string on simulation timeout/deadlock or invariant
/// violation (an HTM correctness bug).
pub fn run_workload(
    workload: &dyn Workload,
    policy: PolicyConfig,
    cfg: &RunConfig,
) -> Result<RunOutput, String> {
    run_machine(workload, policy, cfg, None).map(|(out, _)| out)
}

/// Like [`run_workload`], but routes every protocol trace event into
/// `sink` and hands the sink back with the statistics, so callers can
/// reconstruct the run's timeline (see the `chats-obs` crate).
///
/// # Errors
///
/// Returns an error string on simulation timeout/deadlock or invariant
/// violation (an HTM correctness bug). The sink is lost on error.
pub fn run_workload_traced(
    workload: &dyn Workload,
    policy: PolicyConfig,
    cfg: &RunConfig,
    sink: Box<dyn TraceSink>,
) -> Result<(RunOutput, Box<dyn TraceSink>), String> {
    run_machine(workload, policy, cfg, Some(sink))
        .map(|(out, sink)| (out, sink.expect("machine returns the installed sink")))
}

fn run_machine(
    workload: &dyn Workload,
    policy: PolicyConfig,
    cfg: &RunConfig,
    sink: Option<Box<dyn TraceSink>>,
) -> Result<(RunOutput, Option<Box<dyn TraceSink>>), String> {
    let mut sys = cfg.system;
    sys.core.cores = cfg.threads;
    let mut rng = SimRng::seed_from(cfg.seed);
    let setup = workload.setup(cfg.threads, cfg.seed, &mut rng);
    assert_eq!(
        setup.programs.len(),
        cfg.threads,
        "workload produced a wrong thread count"
    );
    let mut m = Machine::new(sys, policy, cfg.tuning, cfg.seed);
    if let Some(sink) = sink {
        m.set_trace_sink(sink);
    }
    for (addr, v) in &setup.init {
        m.store_init(*addr, *v);
    }
    for (t, tp) in setup.programs.into_iter().enumerate() {
        let mut vm = Vm::new(tp.program, tp.seed);
        for (r, v) in tp.presets {
            vm.preset_reg(r, v);
        }
        m.load_thread(t, vm);
    }
    let stats = match m.run(cfg.max_cycles) {
        Ok(s) => s,
        Err(SimError::Timeout { at_cycle }) => {
            return Err(format!(
                "{} under {:?}: timed out at cycle {at_cycle}",
                workload.name(),
                policy.system
            ))
        }
        Err(e) => {
            return Err(format!(
                "{} under {:?}: {e}",
                workload.name(),
                policy.system
            ))
        }
    };
    (setup.checker)(&m).map_err(|e| {
        format!(
            "{} under {:?}: transactional semantics violated: {e}",
            workload.name(),
            policy.system
        )
    })?;
    let sink = m.take_trace_sink();
    Ok((RunOutput { stats }, sink))
}
