//! Disk-backed result cache under `target/chats-cache/`.
//!
//! Entries are keyed by the job's content hash ([`crate::job::JobId`])
//! and guarded by two extra fields: the crate version (a new simulator
//! release invalidates every cached result, since any code change may
//! move the numbers) and the full canonical configuration string (so a
//! hash collision or stale key degrades to a re-execution, never a wrong
//! result). Any unreadable, unparsable or mismatching entry is discarded
//! with a warning and the job simply runs again — corruption is a cache
//! miss, not an error.

use crate::job::JobSpec;
use crate::json::Json;
use chats_stats::{RunStats, TxOutcomeCounts};
use std::collections::BTreeMap;
use std::env;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The simulator release the cache entries were produced by. Part of
/// every entry; a mismatch invalidates the entry.
pub const CACHE_VERSION: &str = env!("CARGO_PKG_VERSION");

/// `$CHATS_CACHE_DIR`, or `chats-cache` under the cargo target
/// directory (`$CARGO_TARGET_DIR`, default `target`, relative to the
/// working directory).
#[must_use]
pub fn default_cache_dir() -> PathBuf {
    if let Some(dir) = env::var_os("CHATS_CACHE_DIR") {
        return dir.into();
    }
    default_target_dir().join("chats-cache")
}

pub(crate) fn default_target_dir() -> PathBuf {
    if let Some(dir) = env::var_os("CARGO_TARGET_DIR") {
        return dir.into();
    }
    // Tests and binaries run with their cwd inside a member crate; prefer
    // the workspace target dir (two levels above this crate's manifest)
    // when it exists, so every entry point shares one cache.
    if let Some(workspace) = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
    {
        let target = workspace.join("target");
        if target.is_dir() {
            return target;
        }
    }
    PathBuf::from("target")
}

/// A directory of one-JSON-file-per-job cached results.
#[derive(Debug, Clone)]
pub struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    /// A cache rooted at `dir` (created lazily on first store).
    #[must_use]
    pub fn new(dir: PathBuf) -> DiskCache {
        DiskCache { dir }
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path for a job.
    #[must_use]
    pub fn path_for(&self, spec: &JobSpec) -> PathBuf {
        self.dir.join(format!("{}.json", spec.id()))
    }

    /// Loads the cached result for `spec`, or `None` on a miss. An entry
    /// that exists but fails validation (corrupt JSON, wrong crate
    /// version, canonical-config mismatch, missing counters) is deleted
    /// and reported as a miss so the job re-executes.
    #[must_use]
    pub fn load(&self, spec: &JobSpec) -> Option<RunStats> {
        let path = self.path_for(spec);
        let text = fs::read_to_string(&path).ok()?;
        match decode_entry(&text, spec) {
            Ok(stats) => Some(stats),
            Err(why) => {
                eprintln!(
                    "chats-runner: warning: discarding unusable cache entry {} ({why}); re-executing",
                    path.display()
                );
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Stores a result, writing atomically (temp file + rename) so a
    /// concurrent or interrupted run can never leave a torn entry.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn store(&self, spec: &JobSpec, stats: &RunStats) -> io::Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let path = self.path_for(spec);
        let mut entry = BTreeMap::new();
        entry.insert("crate_version".to_string(), Json::Str(CACHE_VERSION.into()));
        entry.insert("job_id".to_string(), Json::Str(spec.id().to_string()));
        entry.insert("label".to_string(), Json::Str(spec.label()));
        entry.insert("canonical".to_string(), Json::Str(spec.canonical()));
        entry.insert("stats".to_string(), stats_to_json(stats));
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        fs::write(&tmp, Json::Obj(entry).to_pretty())?;
        fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Deletes every cache entry; returns how many were removed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than the directory not
    /// existing (an absent cache is already clean).
    pub fn clean(&self) -> io::Result<usize> {
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let mut removed = 0;
        for entry in entries {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "json") {
                fs::remove_file(&path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

fn decode_entry(text: &str, spec: &JobSpec) -> Result<RunStats, String> {
    let root = Json::parse(text)?;
    let version = root
        .get("crate_version")
        .and_then(Json::as_str)
        .ok_or("missing crate_version")?;
    if version != CACHE_VERSION {
        return Err(format!(
            "produced by crate version {version}, current is {CACHE_VERSION}"
        ));
    }
    let canonical = root
        .get("canonical")
        .and_then(Json::as_str)
        .ok_or("missing canonical config")?;
    if canonical != spec.canonical() {
        return Err("canonical config mismatch".to_string());
    }
    stats_from_json(root.get("stats").ok_or("missing stats")?)
}

/// Serializes every [`RunStats`] counter into a JSON object.
#[must_use]
pub fn stats_to_json(s: &RunStats) -> Json {
    let mut m = BTreeMap::new();
    let mut put = |k: &str, v: u64| {
        m.insert(k.to_string(), Json::U64(v));
    };
    put("cycles", s.cycles);
    put("commits", s.commits);
    put("tx_attempts", s.tx_attempts);
    put("conflicts", s.conflicts);
    put("forwardings", s.forwardings);
    put("validation_attempts", s.validation_attempts);
    put("validations_ok", s.validations_ok);
    put("flits", s.flits);
    put("control_messages", s.control_messages);
    put("data_messages", s.data_messages);
    put("fallback_acquisitions", s.fallback_acquisitions);
    put("power_grants", s.power_grants);
    put("nacks", s.nacks);
    put("instructions", s.instructions);
    put("events", s.events);
    m.insert(
        "max_chain_depth".into(),
        Json::U64(u64::from(s.max_chain_depth)),
    );
    m.insert(
        "aborts".into(),
        Json::Obj(
            s.aborts
                .iter()
                .map(|(k, &v)| (k.clone(), Json::U64(v)))
                .collect(),
        ),
    );
    m.insert(
        "chain_depth_hist".into(),
        Json::Obj(
            s.chain_depth_hist
                .iter()
                .map(|(&d, &n)| (d.to_string(), Json::U64(n)))
                .collect(),
        ),
    );
    m.insert(
        "forwarder_outcomes".into(),
        outcomes_to_json(&s.forwarder_outcomes),
    );
    m.insert(
        "conflicted_outcomes".into(),
        outcomes_to_json(&s.conflicted_outcomes),
    );
    Json::Obj(m)
}

fn outcomes_to_json(o: &TxOutcomeCounts) -> Json {
    let mut m = BTreeMap::new();
    m.insert("committed".to_string(), Json::U64(o.committed));
    m.insert("aborted".to_string(), Json::U64(o.aborted));
    Json::Obj(m)
}

/// Rebuilds [`RunStats`] from [`stats_to_json`] output.
///
/// # Errors
///
/// Strict: every counter must be present with the right type, so an
/// entry from a build whose `RunStats` lacked a field is rejected (and
/// the job re-executes) instead of resurfacing with silent zeros.
pub fn stats_from_json(v: &Json) -> Result<RunStats, String> {
    let field = |k: &str| -> Result<u64, String> {
        v.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("stats field '{k}' missing or not a u64"))
    };
    let mut s = RunStats {
        cycles: field("cycles")?,
        commits: field("commits")?,
        tx_attempts: field("tx_attempts")?,
        conflicts: field("conflicts")?,
        forwardings: field("forwardings")?,
        validation_attempts: field("validation_attempts")?,
        validations_ok: field("validations_ok")?,
        flits: field("flits")?,
        control_messages: field("control_messages")?,
        data_messages: field("data_messages")?,
        fallback_acquisitions: field("fallback_acquisitions")?,
        power_grants: field("power_grants")?,
        nacks: field("nacks")?,
        instructions: field("instructions")?,
        events: field("events")?,
        max_chain_depth: u32::try_from(field("max_chain_depth")?)
            .map_err(|_| "max_chain_depth out of range".to_string())?,
        ..RunStats::default()
    };
    let aborts = v
        .get("aborts")
        .and_then(Json::as_obj)
        .ok_or("stats field 'aborts' missing or not an object")?;
    for (k, n) in aborts {
        let n = n
            .as_u64()
            .ok_or_else(|| format!("abort count '{k}' not a u64"))?;
        s.aborts.insert(k.clone(), n);
    }
    let hist = v
        .get("chain_depth_hist")
        .and_then(Json::as_obj)
        .ok_or("stats field 'chain_depth_hist' missing or not an object")?;
    for (k, n) in hist {
        let depth: u32 = k
            .parse()
            .map_err(|_| format!("bad chain depth key '{k}'"))?;
        let n = n
            .as_u64()
            .ok_or_else(|| format!("chain depth count '{k}' not a u64"))?;
        s.chain_depth_hist.insert(depth, n);
    }
    s.forwarder_outcomes = outcomes_from_json(v.get("forwarder_outcomes"), "forwarder_outcomes")?;
    s.conflicted_outcomes =
        outcomes_from_json(v.get("conflicted_outcomes"), "conflicted_outcomes")?;
    Ok(s)
}

fn outcomes_from_json(v: Option<&Json>, what: &str) -> Result<TxOutcomeCounts, String> {
    let v = v.ok_or_else(|| format!("stats field '{what}' missing"))?;
    let get = |k: &str| {
        v.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{what}.{k} missing or not a u64"))
    };
    Ok(TxOutcomeCounts {
        committed: get("committed")?,
        aborted: get("aborted")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chats_core::AbortCause;

    fn sample_stats() -> RunStats {
        let mut s = RunStats {
            cycles: u64::MAX - 7, // exercise the exact-u64 lane
            commits: 2,
            tx_attempts: 5,
            conflicts: 3,
            forwardings: 4,
            validation_attempts: 6,
            validations_ok: 5,
            flits: 100,
            control_messages: 60,
            data_messages: 40,
            fallback_acquisitions: 1,
            power_grants: 0,
            nacks: 9,
            instructions: 12345,
            max_chain_depth: 0,
            ..RunStats::default()
        };
        s.record_abort(AbortCause::Conflict);
        s.record_abort(AbortCause::Capacity);
        s.record_chain_depth(0);
        s.record_chain_depth(3);
        s.forwarder_outcomes = TxOutcomeCounts {
            committed: 2,
            aborted: 1,
        };
        s.conflicted_outcomes = TxOutcomeCounts {
            committed: 1,
            aborted: 2,
        };
        s
    }

    #[test]
    fn stats_roundtrip_is_bit_identical() {
        let s = sample_stats();
        let back = stats_from_json(&stats_to_json(&s)).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn missing_counter_is_rejected() {
        let Json::Obj(mut m) = stats_to_json(&sample_stats()) else {
            panic!("stats_to_json must produce an object")
        };
        m.remove("nacks");
        let err = stats_from_json(&Json::Obj(m)).unwrap_err();
        assert!(err.contains("nacks"), "{err}");
    }

    #[test]
    fn default_dir_honours_env_override() {
        // Read-only check of the fallback path; env overrides are
        // exercised end-to-end by the integration tests.
        let d = default_target_dir();
        assert!(!d.as_os_str().is_empty());
    }
}
