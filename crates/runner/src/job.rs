//! Jobs and job sets: the unit of work the runner schedules.
//!
//! A [`JobSpec`] is one simulation point — workload × policy × machine
//! configuration. Its identity is a content hash of the *full*
//! configuration (canonicalized to a string), so two specs that would
//! produce the same simulation share one [`JobId`], one cache entry and
//! one execution, no matter which experiment asked for them.

use crate::hash::fnv1a_64;
use chats_core::{HtmSystem, PolicyConfig};
use chats_stats::RunStats;
use chats_workloads::{registry, run_workload_partial, FaultPlan, RunConfig, RunFailure};
use std::collections::HashSet;
use std::fmt;

/// Bumped whenever the canonical encoding changes, so stale cache
/// entries from an older encoding can never alias a new job.
pub const FORMAT_VERSION: u32 = 1;

/// Content-hash identity of a job. Formats as 16 lowercase hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One simulation point: a workload run under a policy on a machine.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Registry name of the workload (e.g. `"kmeans-h"`).
    pub workload: String,
    /// The HTM system configuration under test.
    pub policy: PolicyConfig,
    /// Machine description, thread count, seed and cycle budget.
    pub config: RunConfig,
}

impl JobSpec {
    /// A job for `workload` under `policy` on `config`.
    pub fn new(workload: impl Into<String>, policy: PolicyConfig, config: RunConfig) -> JobSpec {
        JobSpec {
            workload: workload.into(),
            policy,
            config,
        }
    }

    /// The canonical configuration string hashed into the job id and
    /// stored verbatim in cache entries for collision rejection. Every
    /// field that can change the simulation's outcome is included.
    #[must_use]
    pub fn canonical(&self) -> String {
        let mut canon = format!(
            "fmt={}|wl={}|policy={:?}|system={:?}|tuning={:?}|threads={}|seed={}|max_cycles={}",
            FORMAT_VERSION,
            self.workload,
            self.policy,
            self.config.system,
            self.config.tuning,
            self.config.threads,
            self.config.seed,
            self.config.max_cycles,
        );
        // Appended only when a plan is present, so every fault-free job
        // keeps the id (and cache entry) it had before fault injection
        // existed.
        if let Some(plan) = &self.config.faults {
            canon.push_str(&format!("|faults={:016x}", plan.hash()));
        }
        // Same conditional-append pattern for the workload's own scenario
        // spec (the evm family versions its generators through
        // `Workload::spec`): spec-less workloads keep their existing ids,
        // while a generator change rolls every dependent cache entry.
        if let Some(spec) = registry::by_name(&self.workload).and_then(|w| w.spec()) {
            canon.push_str(&format!("|wlspec={spec}"));
        }
        canon
    }

    /// The content-hash identity of this job.
    #[must_use]
    pub fn id(&self) -> JobId {
        JobId(fnv1a_64(self.canonical().as_bytes()))
    }

    /// A human-readable label, `workload/system` plus a suffix for every
    /// deviation from the system's Table II defaults (retries, VSB size,
    /// validation interval, forward set, PiC width, ablations, threads).
    /// Labels are what `--filter` matches against.
    #[must_use]
    pub fn label(&self) -> String {
        let sys = match self.policy.system {
            HtmSystem::Baseline => "baseline",
            HtmSystem::NaiveRs => "naive-rs",
            HtmSystem::Chats => "chats",
            HtmSystem::Power => "power",
            HtmSystem::Pchats => "pchats",
            HtmSystem::LevcBeIdealized => "levc",
        };
        let mut label = format!("{}/{}", self.workload, sys);
        let def = PolicyConfig::for_system(self.policy.system);
        if self.policy.retries != def.retries {
            label.push_str(&format!(":r{}", self.policy.retries));
        }
        if self.policy.vsb_size != def.vsb_size {
            label.push_str(&format!(":vsb{}", self.policy.vsb_size));
        }
        if self.policy.validation_interval != def.validation_interval {
            label.push_str(&format!(":iv{}", self.policy.validation_interval));
        }
        if self.policy.forward_set != def.forward_set {
            label.push_str(&format!(":fs-{}", self.policy.forward_set.label()));
        }
        if self.policy.pic_bits != def.pic_bits {
            label.push_str(&format!(":pic{}", self.policy.pic_bits));
        }
        if self.policy.ablation.no_pic_overtake {
            label.push_str(":no-overtake");
        }
        if self.policy.ablation.single_link_chains {
            label.push_str(":single-link");
        }
        if self.config.threads != self.config.system.core.cores {
            label.push_str(&format!(":t{}", self.config.threads));
        }
        if let Some(plan) = &self.config.faults {
            label.push_str(&format!(":faults-{}", plan.name));
        }
        label
    }

    /// Runs the simulation for this job.
    ///
    /// # Errors
    ///
    /// Returns an error string for an unknown workload name, a
    /// simulation timeout/deadlock, or an invariant violation.
    pub fn execute(&self) -> Result<RunStats, String> {
        self.execute_partial().map_err(|fail| fail.message)
    }

    /// Like [`JobSpec::execute`], but failures carry whatever statistics
    /// the machine had gathered when it stopped (see
    /// [`chats_workloads::RunFailure`]), so timed-out jobs can be
    /// reported with partial progress.
    ///
    /// # Errors
    ///
    /// Returns a [`RunFailure`] for an unknown workload name, a
    /// simulation timeout/deadlock/watchdog stall, or an invariant
    /// violation.
    pub fn execute_partial(&self) -> Result<RunStats, RunFailure> {
        let workload = registry::by_name(&self.workload).ok_or_else(|| RunFailure {
            message: format!("unknown workload '{}'", self.workload),
            partial: None,
            timed_out: false,
        })?;
        run_workload_partial(workload.as_ref(), self.policy, &self.config).map(|out| out.stats)
    }
}

/// An ordered, deduplicated collection of jobs.
///
/// Insertion order is preserved (it becomes manifest order); duplicates
/// by [`JobId`] are dropped, which is what makes overlapping experiment
/// grids (fig4 and fig5 share every point) cost one execution each.
#[derive(Debug, Default)]
pub struct JobSet {
    jobs: Vec<JobSpec>,
    ids: HashSet<u64>,
}

impl JobSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> JobSet {
        JobSet::default()
    }

    /// Adds a job; returns `false` (and drops it) if an identical job is
    /// already present.
    pub fn push(&mut self, spec: JobSpec) -> bool {
        if self.ids.insert(spec.id().0) {
            self.jobs.push(spec);
            true
        } else {
            false
        }
    }

    /// Moves every job of `other` into `self`, deduplicating.
    pub fn merge(&mut self, other: JobSet) {
        for job in other.jobs {
            self.push(job);
        }
    }

    /// Number of (unique) jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` if the set holds no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Iterates jobs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &JobSpec> {
        self.jobs.iter()
    }

    /// Keeps only jobs whose [`JobSpec::label`] contains `needle`.
    pub fn retain_matching(&mut self, needle: &str) {
        self.jobs.retain(|j| j.label().contains(needle));
        self.ids = self.jobs.iter().map(|j| j.id().0).collect();
    }

    /// Keeps only jobs whose workload belongs to the registry family
    /// `tag` (`stamp`, `micro` or `evm`). Jobs naming an unknown
    /// workload are dropped too — they cannot be attributed to a family.
    pub fn retain_family(&mut self, tag: &str) {
        self.jobs
            .retain(|j| registry::by_name(&j.workload).is_some_and(|w| w.family() == tag));
        self.ids = self.jobs.iter().map(|j| j.id().0).collect();
    }

    /// Installs `plan` on every job (replacing any plan already present)
    /// and rehashes the set — faulted jobs have their own identities and
    /// cache entries, disjoint from the fault-free ones.
    pub fn apply_faults(&mut self, plan: &FaultPlan) {
        for job in &mut self.jobs {
            job.config.faults = Some(plan.clone());
        }
        self.ids = self.jobs.iter().map(|j| j.id().0).collect();
    }
}

impl FromIterator<JobSpec> for JobSet {
    fn from_iter<I: IntoIterator<Item = JobSpec>>(iter: I) -> JobSet {
        let mut set = JobSet::new();
        for job in iter {
            set.push(job);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chats_core::HtmSystem;

    fn spec(wl: &str, sys: HtmSystem) -> JobSpec {
        JobSpec::new(wl, PolicyConfig::for_system(sys), RunConfig::quick_test())
    }

    #[test]
    fn id_is_stable_and_content_addressed() {
        let a = spec("cadd", HtmSystem::Chats);
        let b = spec("cadd", HtmSystem::Chats);
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), spec("cadd", HtmSystem::Power).id());
        assert_ne!(a.id(), spec("llb-l", HtmSystem::Chats).id());
    }

    #[test]
    fn id_covers_every_config_axis() {
        let base = spec("cadd", HtmSystem::Chats);
        let mut retries = base.clone();
        retries.policy = retries.policy.with_retries(42);
        assert_ne!(base.id(), retries.id());

        let mut seeded = base.clone();
        seeded.config.seed ^= 1;
        assert_ne!(base.id(), seeded.id());

        let mut threads = base.clone();
        threads.config.threads = 2;
        assert_ne!(base.id(), threads.id());

        let mut budget = base.clone();
        budget.config.max_cycles /= 2;
        assert_ne!(base.id(), budget.id());
    }

    #[test]
    fn fault_plan_joins_the_id_without_disturbing_plain_jobs() {
        use chats_workloads::FaultPlan;
        let base = spec("cadd", HtmSystem::Chats);
        assert!(
            !base.canonical().contains("faults"),
            "fault-free jobs must keep their pre-fault-injection identity"
        );
        let mut faulted = base.clone();
        faulted.config.faults = Some(FaultPlan::lossy_noc());
        assert_ne!(base.id(), faulted.id());
        assert!(faulted.label().ends_with(":faults-lossy-noc"));

        let mut other = base.clone();
        other.config.faults = Some(FaultPlan::abort_storm());
        assert_ne!(faulted.id(), other.id(), "distinct plans, distinct ids");
    }

    #[test]
    fn apply_faults_rehashes_the_set() {
        use chats_workloads::FaultPlan;
        let mut set: JobSet = [
            spec("cadd", HtmSystem::Chats),
            spec("cadd", HtmSystem::Power),
        ]
        .into_iter()
        .collect();
        let plain_ids: Vec<JobId> = set.iter().map(JobSpec::id).collect();
        set.apply_faults(&FaultPlan::lossy_noc());
        assert_eq!(set.len(), 2);
        for (job, plain) in set.iter().zip(plain_ids) {
            assert_ne!(job.id(), plain);
        }
        // The same faulted job is now a duplicate; its plain twin is not.
        let mut faulted = spec("cadd", HtmSystem::Chats);
        faulted.config.faults = Some(FaultPlan::lossy_noc());
        assert!(!set.push(faulted));
        assert!(set.push(spec("cadd", HtmSystem::Chats)));
    }

    #[test]
    fn workload_spec_joins_the_id_without_disturbing_plain_jobs() {
        let plain = spec("cadd", HtmSystem::Chats);
        assert!(
            !plain.canonical().contains("wlspec"),
            "spec-less workloads must keep their pre-evm identity"
        );
        let evm = spec("evm-token-storm", HtmSystem::Chats);
        let canon = evm.canonical();
        assert!(canon.contains("|wlspec=evm:v1:kind=token-storm"), "{canon}");
        assert_ne!(evm.id(), spec("evm-transfers", HtmSystem::Chats).id());
    }

    #[test]
    fn retain_family_selects_by_registry_tag() {
        let mut set: JobSet = [
            spec("cadd", HtmSystem::Chats),
            spec("genome", HtmSystem::Chats),
            spec("evm-dex", HtmSystem::Chats),
            spec("evm-transfers", HtmSystem::Power),
            spec("no-such-workload", HtmSystem::Baseline),
        ]
        .into_iter()
        .collect();
        set.retain_family("evm");
        let labels: Vec<String> = set.iter().map(JobSpec::label).collect();
        assert_eq!(labels, ["evm-dex/chats", "evm-transfers/power"]);
        set.retain_family("stamp");
        assert!(set.is_empty());
    }

    #[test]
    fn label_names_deviations() {
        let mut j = spec("genome", HtmSystem::Chats);
        assert_eq!(j.label(), "genome/chats");
        j.policy = j.policy.with_retries(16).with_vsb_size(2);
        let l = j.label();
        assert!(l.contains(":r16"), "{l}");
        assert!(l.contains(":vsb2"), "{l}");
    }

    #[test]
    fn execute_rejects_unknown_workload() {
        let j = spec("no-such-workload", HtmSystem::Baseline);
        let err = j.execute().unwrap_err();
        assert!(err.contains("unknown workload"), "{err}");
    }

    #[test]
    fn set_dedups_and_preserves_order() {
        let mut set = JobSet::new();
        assert!(set.push(spec("cadd", HtmSystem::Chats)));
        assert!(set.push(spec("cadd", HtmSystem::Power)));
        assert!(!set.push(spec("cadd", HtmSystem::Chats)));
        assert_eq!(set.len(), 2);
        let labels: Vec<String> = set.iter().map(JobSpec::label).collect();
        assert_eq!(labels, ["cadd/chats", "cadd/power"]);
    }

    #[test]
    fn filter_retains_matching_labels() {
        let mut set: JobSet = [
            spec("cadd", HtmSystem::Chats),
            spec("genome", HtmSystem::Chats),
            spec("genome", HtmSystem::Power),
        ]
        .into_iter()
        .collect();
        set.retain_matching("genome");
        assert_eq!(set.len(), 2);
        set.retain_matching("power");
        assert_eq!(set.len(), 1);
        // A filtered-out job can be re-added.
        assert!(set.push(spec("cadd", HtmSystem::Chats)));
    }
}
