//! Content hashing for job identity.
//!
//! Jobs are identified by an FNV-1a 64-bit hash of their canonical
//! configuration string (see [`crate::job::JobSpec::canonical`]). FNV is
//! in-tree, dependency-free, stable across platforms and Rust releases —
//! all properties the disk cache needs from its key. It is *not*
//! collision-resistant against adversaries, which is fine: cache entries
//! additionally store the full canonical string and are rejected on
//! mismatch, so a collision costs a re-execution, never a wrong result.

/// FNV-1a, 64-bit, over a byte string.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        assert_ne!(fnv1a_64(b"chats|genome"), fnv1a_64(b"chats|intruder"));
    }
}
