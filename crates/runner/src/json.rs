//! Minimal JSON tree, writer and parser for cache entries and manifests.
//!
//! The runner hand-serializes its artifacts (ISSUE: the manifest format
//! must not depend on a serialization framework), so this module carries
//! its own small JSON value type. Numbers are kept in three exact
//! lanes — `U64`, `I64`, `F64` — because cache entries round-trip
//! [`chats_stats::RunStats`] counters and the determinism gate compares
//! them bit-for-bit; routing a `u64` through `f64` would silently lose
//! precision above 2^53. Object keys live in a `BTreeMap`, so output is
//! canonical: the same tree always renders to the same bytes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer (exact).
    U64(u64),
    /// Negative integer (exact).
    I64(i64),
    /// Any number written with a fraction or exponent.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with canonically ordered keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup; `None` for non-objects or missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::I64(v) => Some(v),
            Json::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `f64` if it is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::F64(v) => Some(v),
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as `bool`.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing newline.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Always keep a fraction or exponent so the value
                    // parses back into the F64 lane.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no NaN/Inf; null is the least-bad rendering.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(map) => {
                let entries: Vec<(&String, &Json)> = map.iter().collect();
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    write_escaped(out, entries[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    entries[i].1.write(out, indent, depth + 1);
                });
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error,
    /// including trailing garbage after the top-level value.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat("null") {
                    Ok(Json::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat("true") {
                    Ok(Json::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat("false") {
                    Ok(Json::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.pos += 1; // '{'
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid; copy the whole scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads the four hex digits after `\u` (cursor already past the `u`),
    /// pairing surrogates when necessary. Leaves the cursor after the
    /// final digit consumed.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            if !self.eat("\\u") {
                return Err(self.err("unpaired surrogate"));
            }
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            return char::from_u32(c).ok_or_else(|| self.err("invalid code point"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .bytes
                .get(self.pos)
                .and_then(|&b| (b as char).to_digit(16))
                .ok_or_else(|| self.err("invalid \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if fractional {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|_| format!("invalid number '{text}' at byte {start}"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::I64)
                .map_err(|_| format!("integer out of range '{text}' at byte {start}"))
        } else {
            text.parse::<u64>()
                .map(Json::U64)
                .map_err(|_| format!("integer out of range '{text}' at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        assert_eq!(&Json::parse(&v.to_compact()).unwrap(), v);
        assert_eq!(&Json::parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn scalar_roundtrips() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::U64(0),
            Json::U64(u64::MAX),
            Json::I64(-1),
            Json::I64(i64::MIN),
            Json::F64(1.5),
            Json::F64(-2.25e-3),
            Json::Str(String::new()),
            Json::Str("plain".into()),
            Json::Str("quote \" slash \\ newline \n tab \t unicode ü 🦀".into()),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn u64_counters_are_exact() {
        // The whole reason for the three number lanes: 2^53 + 1 survives.
        let v = Json::U64((1 << 53) + 1);
        assert_eq!(
            Json::parse(&v.to_compact()).unwrap().as_u64(),
            Some((1 << 53) + 1)
        );
    }

    #[test]
    fn nested_roundtrip() {
        let mut obj = BTreeMap::new();
        obj.insert(
            "list".to_string(),
            Json::Arr(vec![Json::U64(1), Json::Null]),
        );
        obj.insert("name".to_string(), Json::Str("x".into()));
        let mut inner = BTreeMap::new();
        inner.insert("deep".to_string(), Json::Bool(false));
        obj.insert("obj".to_string(), Json::Obj(inner));
        roundtrip(&Json::Obj(obj));
    }

    #[test]
    fn canonical_output_is_stable() {
        let mut a = BTreeMap::new();
        a.insert("b".to_string(), Json::U64(2));
        a.insert("a".to_string(), Json::U64(1));
        assert_eq!(Json::Obj(a).to_compact(), "{\"a\":1,\"b\":2}");
    }

    #[test]
    fn parses_foreign_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , -2 , 3.5 , \"\\u00e9\\ud83e\\udd80\" ] } ").unwrap();
        let arr = v.get("k").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_i64(), Some(-2));
        assert_eq!(arr[2].as_f64(), Some(3.5));
        assert_eq!(arr[3].as_str(), Some("é🦀"));
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nul",
            "1 2",
            "\"unterminated",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn float_always_reparses_as_float() {
        let s = Json::F64(2.0).to_compact();
        assert_eq!(s, "2.0");
        assert!(matches!(Json::parse(&s).unwrap(), Json::F64(_)));
    }
}
