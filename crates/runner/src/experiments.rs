//! Named experiment sets: the paper's figure grids as [`JobSet`]s.
//!
//! Each set enumerates exactly the simulation points its figure needs
//! (including normalization baselines), so `chats-run fig9` warms every
//! cache entry the `figures` binary will later read. Grids overlap
//! heavily — fig4, fig5, fig6 and fig7 read the same points — and the
//! [`JobSet`] deduplication collapses the overlap to one execution per
//! unique point.

use crate::job::{JobSet, JobSpec};
use chats_core::{Ablation, ForwardSet, HtmSystem, PolicyConfig};
use chats_workloads::{registry, RunConfig};

/// The five systems of the paper's main comparison (Figures 4–7).
pub const MAIN_SYSTEMS: [HtmSystem; 5] = [
    HtmSystem::Baseline,
    HtmSystem::NaiveRs,
    HtmSystem::Chats,
    HtmSystem::Power,
    HtmSystem::Pchats,
];

/// The contended subset used for the sensitivity studies (Fig. 10,
/// ablations, PiC width).
#[must_use]
pub fn contended() -> [&'static str; 4] {
    ["genome", "intruder", "kmeans-h", "yada"]
}

/// Machine scale experiments run at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// The paper's 16-core configuration.
    Paper,
    /// The scaled-down 4-core test machine with the atomicity oracle
    /// armed; used by `--smoke` and the unit tests.
    Quick,
}

impl Scale {
    /// The machine configuration for this scale.
    #[must_use]
    pub fn run_config(self) -> RunConfig {
        match self {
            Scale::Paper => RunConfig::paper(),
            Scale::Quick => RunConfig::quick_test(),
        }
    }

    /// Manifest label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
        }
    }
}

/// Ids accepted by [`set`], in figure order. `all` (the union of every
/// set) is accepted too but not listed.
#[must_use]
pub fn available() -> &'static [&'static str] {
    &[
        "fig1",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "scaling",
        "picwidth",
        "chains",
        "ablations",
        "headline",
        "evm",
    ]
}

/// The job set for one named experiment at `scale`; `None` for an
/// unknown id.
#[must_use]
pub fn set(id: &str, scale: Scale) -> Option<JobSet> {
    let cfg = scale.run_config();
    let job = |wl: &str, policy: PolicyConfig| JobSpec::new(wl, policy, cfg.clone());
    let sys = PolicyConfig::for_system;
    let mut jobs = JobSet::new();
    match id {
        "fig1" => {
            for w in registry::all() {
                for s in [HtmSystem::Baseline, HtmSystem::NaiveRs] {
                    jobs.push(job(w.name(), sys(s)));
                }
            }
        }
        // Figures 4–7 all read the same grid: every workload under every
        // main system at Table II defaults.
        "fig4" | "fig5" | "fig6" | "fig7" => {
            for w in registry::all() {
                for s in MAIN_SYSTEMS {
                    jobs.push(job(w.name(), sys(s)));
                }
            }
        }
        "fig8" => {
            let sets = [
                ForwardSet::ReadWrite,
                ForwardSet::WriteOnly,
                ForwardSet::RestrictedReadWrite,
            ];
            for w in registry::all() {
                for s in [HtmSystem::Chats, HtmSystem::Pchats] {
                    for fs in sets {
                        jobs.push(job(w.name(), sys(s).with_forward_set(fs)));
                    }
                }
            }
        }
        "fig9" => {
            let systems = [
                HtmSystem::Baseline,
                HtmSystem::Chats,
                HtmSystem::Power,
                HtmSystem::Pchats,
            ];
            for w in registry::stamp() {
                // Normalization baseline at Table II defaults.
                jobs.push(job(w.name(), sys(HtmSystem::Baseline)));
                for s in systems {
                    for r in [1u32, 2, 4, 6, 8, 16, 32, 64] {
                        jobs.push(job(w.name(), sys(s).with_retries(r)));
                    }
                }
            }
        }
        "fig10" => {
            for w in contended() {
                for vsb in [1usize, 2, 4, 8, 16, 32] {
                    for iv in [50u64, 100, 200, 400] {
                        jobs.push(job(
                            w,
                            sys(HtmSystem::Chats)
                                .with_vsb_size(vsb)
                                .with_validation_interval(iv),
                        ));
                    }
                }
            }
        }
        "fig11" => {
            for w in registry::all() {
                for s in [
                    HtmSystem::Baseline,
                    HtmSystem::Chats,
                    HtmSystem::Pchats,
                    HtmSystem::LevcBeIdealized,
                ] {
                    jobs.push(job(w.name(), sys(s)));
                }
            }
        }
        "scaling" => {
            let threads: &[usize] = match scale {
                Scale::Paper => &[1, 2, 4, 8, 16],
                Scale::Quick => &[1, 2, 4],
            };
            for s in [HtmSystem::Baseline, HtmSystem::Chats] {
                for &n in threads {
                    let mut c = cfg.clone();
                    c.threads = n;
                    jobs.push(JobSpec::new("kmeans-h", sys(s), c));
                }
            }
        }
        "picwidth" => {
            for w in contended() {
                jobs.push(job(w, sys(HtmSystem::Chats)));
                for bits in [2u32, 3, 4, 5, 6, 7] {
                    jobs.push(job(w, sys(HtmSystem::Chats).with_pic_bits(bits)));
                }
            }
        }
        "chains" => {
            for w in registry::all() {
                jobs.push(job(w.name(), sys(HtmSystem::Chats)));
            }
        }
        "ablations" => {
            let variants = [
                Ablation::default(),
                Ablation {
                    no_pic_overtake: true,
                    single_link_chains: false,
                },
                Ablation {
                    no_pic_overtake: false,
                    single_link_chains: true,
                },
                Ablation {
                    no_pic_overtake: true,
                    single_link_chains: true,
                },
            ];
            for w in contended() {
                for ab in variants {
                    jobs.push(job(w, sys(HtmSystem::Chats).with_ablation(ab)));
                }
            }
        }
        "headline" => {
            for w in registry::stamp() {
                for s in [
                    HtmSystem::Baseline,
                    HtmSystem::Chats,
                    HtmSystem::Power,
                    HtmSystem::Pchats,
                ] {
                    jobs.push(job(w.name(), sys(s)));
                }
            }
        }
        // The smart-contract frontier: every evm scenario under every
        // system (including LEVC-BE), clean. Fault-plan variants come
        // from `--faults`, which rehashes the whole set.
        "evm" => {
            for w in registry::evm() {
                for s in HtmSystem::ALL {
                    jobs.push(job(w.name(), sys(s)));
                }
            }
        }
        "all" => {
            for id in available() {
                jobs.merge(set(id, scale).expect("available() ids resolve"));
            }
        }
        _ => return None,
    }
    Some(jobs)
}

/// The union of several named sets.
///
/// # Errors
///
/// Returns the first unknown id.
pub fn union<'a>(ids: impl IntoIterator<Item = &'a str>, scale: Scale) -> Result<JobSet, String> {
    let mut jobs = JobSet::new();
    for id in ids {
        jobs.merge(set(id, scale).ok_or_else(|| format!("unknown experiment set '{id}'"))?);
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_advertised_set_resolves() {
        for id in available() {
            let s = set(id, Scale::Quick).unwrap_or_else(|| panic!("{id} missing"));
            assert!(!s.is_empty(), "{id} is empty");
        }
        assert!(set("all", Scale::Quick).is_some());
        assert!(set("fig2", Scale::Quick).is_none());
    }

    #[test]
    fn fig4_grid_is_workloads_times_main_systems() {
        let s = set("fig4", Scale::Quick).unwrap();
        assert_eq!(s.len(), registry::all().len() * MAIN_SYSTEMS.len());
    }

    #[test]
    fn overlapping_sets_dedup_in_union() {
        let fig4 = set("fig4", Scale::Quick).unwrap().len();
        let both = union(["fig4", "fig5"], Scale::Quick).unwrap();
        // fig5 reads exactly the fig4 grid, so the union adds nothing.
        assert_eq!(both.len(), fig4);
    }

    #[test]
    fn all_covers_every_set() {
        let all = set("all", Scale::Quick).unwrap();
        for id in available() {
            assert!(all.len() >= set(id, Scale::Quick).unwrap().len(), "{id}");
        }
    }

    #[test]
    fn evm_set_is_scenarios_times_all_systems() {
        let s = set("evm", Scale::Quick).unwrap();
        assert_eq!(s.len(), registry::evm().len() * HtmSystem::ALL.len());
        assert!(s.iter().all(|j| j.canonical().contains("|wlspec=evm:v1")));
    }

    #[test]
    fn scales_produce_distinct_jobs() {
        let q: Vec<_> = set("chains", Scale::Quick)
            .unwrap()
            .iter()
            .map(|j| j.id())
            .collect();
        let p: Vec<_> = set("chains", Scale::Paper)
            .unwrap()
            .iter()
            .map(|j| j.id())
            .collect();
        assert!(q.iter().all(|id| !p.contains(id)));
    }

    #[test]
    fn union_reports_unknown_ids() {
        let err = union(["fig4", "bogus"], Scale::Quick).unwrap_err();
        assert!(err.contains("bogus"), "{err}");
    }
}
