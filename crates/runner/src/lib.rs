#![warn(missing_docs)]

//! Parallel experiment runner for the CHATS simulator.
//!
//! The paper's evaluation is hundreds of independent simulation points
//! (workload × system × knob). This crate turns that sweep into a job
//! graph with content-addressed identity and runs it on a worker pool:
//!
//! * [`job::JobSpec`] — one simulation point; its [`job::JobId`] is an
//!   FNV-1a hash of the *full* canonical configuration, so identical
//!   points requested by different figures share one execution.
//! * [`experiments`] — the paper's figure grids as named [`job::JobSet`]s.
//! * [`pool::Runner`] — worker pool sized by `available_parallelism`,
//!   with per-attempt wall-clock timeouts, bounded retries, panic
//!   isolation, and an optional determinism gate (run twice, demand
//!   bit-identical statistics).
//! * [`cache::DiskCache`] — results under `target/chats-cache/`, keyed
//!   by job hash and guarded by crate version + canonical config;
//!   corruption degrades to re-execution.
//! * [`manifest`] — per-run JSON manifests under `target/chats-runs/`
//!   with timing, outcomes, cache hit rate and measured speedup.
//!
//! The `chats-run` binary exposes all of this on the command line; the
//! `chats-bench` harness routes its measurements through [`pool::Runner`]
//! so figures and ad-hoc sweeps share the same cache.

pub mod cache;
pub mod checkpoint;
pub mod experiments;
pub mod hash;
pub mod job;
pub mod json;
pub mod manifest;
pub mod pool;

pub use cache::{default_cache_dir, DiskCache, CACHE_VERSION};
pub use checkpoint::{checkpoint_dir, execute_checkpointed, CheckpointConfig, CommitMeta};
pub use experiments::{contended, Scale, MAIN_SYSTEMS};
pub use job::{JobId, JobSet, JobSpec};
pub use json::Json;
pub use manifest::{
    default_runs_dir, summary_table, write_manifest, write_manifest_with_profile, ManifestInfo,
};
pub use pool::{JobOutcome, JobRecord, RunReport, Runner, RunnerConfig};
