//! The worker pool: parallel job execution with timeouts, bounded
//! retries, panic isolation and an optional determinism gate.
//!
//! Each job attempt runs on its own freshly spawned thread so that (a) a
//! panic inside the simulator is caught and recorded instead of tearing
//! down the pool, and (b) a wedged simulation can be timed out — the
//! worker abandons the attempt thread and moves on (the thread keeps the
//! core until the simulation's own cycle budget trips, but the pool stays
//! live). Retries are reserved for panics and timeouts; a simulation
//! *error* (timeout verdict, invariant violation, unknown workload) is
//! deterministic and re-running it would only burn time.

use crate::cache::{default_cache_dir, DiskCache};
use crate::checkpoint::{checkpoint_dir, execute_checkpointed, CheckpointConfig, CommitMeta};
use crate::job::{JobSet, JobSpec};
use chats_stats::RunStats;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Pool configuration.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Worker threads. Defaults to [`std::thread::available_parallelism`].
    pub jobs: usize,
    /// Read/write the disk cache. Off means every job executes.
    pub use_cache: bool,
    /// Cache directory (see [`default_cache_dir`]).
    pub cache_dir: std::path::PathBuf,
    /// Wall-clock budget per attempt; an attempt past it is abandoned.
    pub timeout: Duration,
    /// Attempts per job (first try included); only panics and timeouts
    /// consume retries.
    pub max_attempts: u32,
    /// Execute every cache-missing job twice and demand bit-identical
    /// statistics (the determinism gate). Doubles execution cost.
    pub verify_determinism: bool,
    /// Checkpoint stride in simulated cycles: every executed job pauses
    /// at each multiple, writes a machine snapshot under
    /// `<cache-dir>/checkpoints/`, and records its epoch-commitment
    /// chain in the manifest. `None` (the default) runs jobs straight
    /// through, exactly as before checkpointing existed.
    pub checkpoint_every: Option<u64>,
    /// Restore interrupted jobs from their last checkpoint instead of
    /// starting at cycle 0. Only meaningful with `checkpoint_every`.
    pub resume: bool,
    /// Suppress per-job progress lines on stderr.
    pub quiet: bool,
}

impl Default for RunnerConfig {
    fn default() -> RunnerConfig {
        RunnerConfig {
            jobs: thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            use_cache: true,
            cache_dir: default_cache_dir(),
            timeout: Duration::from_secs(900),
            max_attempts: 2,
            verify_determinism: false,
            checkpoint_every: None,
            resume: false,
            quiet: false,
        }
    }
}

/// How a job concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// Result served from the in-memory memo or the disk cache.
    Cached,
    /// Executed (and, with the cache enabled, stored).
    Executed,
    /// Simulation error or exhausted retries after panics; the message
    /// explains.
    Failed(String),
    /// The job ran out of time: either the simulation's own cycle budget
    /// tripped (deterministic — carries the partial statistics gathered
    /// up to that point) or every attempt exceeded the wall-clock budget
    /// (the attempt thread was abandoned, so no statistics survive).
    TimedOut {
        /// What ran out and when.
        message: String,
        /// Statistics at the moment the cycle budget tripped; `None` for
        /// wall-clock timeouts. Boxed to keep the variant small.
        partial: Option<Box<RunStats>>,
    },
    /// The determinism gate saw two runs of the same job disagree; the
    /// message names the first diverging counter.
    DeterminismViolation(String),
}

impl JobOutcome {
    /// Stable manifest label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            JobOutcome::Cached => "cached",
            JobOutcome::Executed => "executed",
            JobOutcome::Failed(_) => "failed",
            JobOutcome::TimedOut { .. } => "timed-out",
            JobOutcome::DeterminismViolation(_) => "determinism-violation",
        }
    }

    /// `true` when the job produced usable statistics.
    #[must_use]
    pub fn is_success(&self) -> bool {
        matches!(self, JobOutcome::Cached | JobOutcome::Executed)
    }

    /// The failure message, if any.
    #[must_use]
    pub fn error(&self) -> Option<&str> {
        match self {
            JobOutcome::Failed(e)
            | JobOutcome::DeterminismViolation(e)
            | JobOutcome::TimedOut { message: e, .. } => Some(e),
            _ => None,
        }
    }

    /// Partial statistics recovered from a timed-out job, if any.
    #[must_use]
    pub fn partial_stats(&self) -> Option<&RunStats> {
        match self {
            JobOutcome::TimedOut {
                partial: Some(stats),
                ..
            } => Some(stats),
            _ => None,
        }
    }
}

/// One scheduled job's bookkeeping, in submission order in the manifest.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Content-hash id, 16 hex digits.
    pub id: String,
    /// Human label ([`JobSpec::label`]).
    pub label: String,
    /// How the job concluded.
    pub outcome: JobOutcome,
    /// Execution attempts made (0 for cache hits).
    pub attempts: u32,
    /// Wall-clock milliseconds this job occupied its worker.
    pub millis: u64,
    /// Index of the worker that ran the job.
    pub worker: usize,
    /// Commitment bookkeeping, when the job executed under
    /// checkpointing: epoch interval, resume point and the full
    /// commitment chain.
    pub commit: Option<CommitMeta>,
}

/// Everything a [`Runner::run_set`] call produced.
#[derive(Debug)]
pub struct RunReport {
    /// Per-job records in submission order.
    pub records: Vec<JobRecord>,
    /// Statistics for every successful job, keyed by [`crate::job::JobId`] value.
    pub results: HashMap<u64, RunStats>,
    /// Worker threads the pool actually used.
    pub workers: usize,
    /// Wall-clock time of the whole set.
    pub wall: Duration,
}

impl RunReport {
    /// Statistics for one job of the set, if it succeeded.
    #[must_use]
    pub fn stats_for(&self, spec: &JobSpec) -> Option<&RunStats> {
        self.results.get(&spec.id().0)
    }

    /// Aggregate per-job busy time — the serial cost of the set. On a
    /// multi-core host `busy / wall` exceeds 1 when the pool overlaps
    /// jobs; on a single-core host it hovers near 1 regardless of the
    /// worker count.
    #[must_use]
    pub fn busy(&self) -> Duration {
        Duration::from_millis(self.records.iter().map(|r| r.millis).sum())
    }

    /// `busy / wall`: the measured parallel speedup of this run.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            1.0
        } else {
            self.busy().as_secs_f64() / wall
        }
    }

    /// Count of records with a given outcome label.
    #[must_use]
    pub fn count(&self, label: &str) -> usize {
        self.records
            .iter()
            .filter(|r| r.outcome.label() == label)
            .count()
    }

    /// Retries actually consumed (attempts beyond each job's first).
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.records
            .iter()
            .map(|r| u64::from(r.attempts.saturating_sub(1)))
            .sum()
    }

    /// `true` when every job produced statistics.
    #[must_use]
    pub fn all_succeeded(&self) -> bool {
        self.records.iter().all(|r| r.outcome.is_success())
    }
}

enum Attempt {
    Success(Box<RunStats>, Option<CommitMeta>),
    SimError(String),
    /// The simulation's own cycle budget tripped — deterministic, so
    /// retrying is pointless, but the machine's partial statistics
    /// survive.
    SimTimeout {
        message: String,
        partial: Option<Box<RunStats>>,
    },
    Panicked(String),
    /// Wall-clock budget exceeded; the attempt thread was abandoned.
    TimedOut,
}

/// The experiment runner: a cache-aware parallel executor for [`JobSet`]s.
pub struct Runner {
    cfg: RunnerConfig,
    cache: DiskCache,
    memo: Mutex<HashMap<u64, RunStats>>,
}

impl Runner {
    /// A runner with the given configuration.
    #[must_use]
    pub fn new(cfg: RunnerConfig) -> Runner {
        let cache = DiskCache::new(cfg.cache_dir.clone());
        Runner {
            cfg,
            cache,
            memo: Mutex::new(HashMap::new()),
        }
    }

    /// A runner with [`RunnerConfig::default`].
    #[must_use]
    pub fn with_defaults() -> Runner {
        Runner::new(RunnerConfig::default())
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &RunnerConfig {
        &self.cfg
    }

    /// The disk cache this runner reads and writes.
    #[must_use]
    pub fn cache(&self) -> &DiskCache {
        &self.cache
    }

    /// Resolves a single job — memo, then disk cache, then execution —
    /// and returns its statistics.
    ///
    /// # Errors
    ///
    /// Returns the failure message for simulation errors, exhausted
    /// retries, timeouts and determinism violations.
    pub fn run_one(&self, spec: &JobSpec) -> Result<RunStats, String> {
        let (outcome, _attempts, stats, _commit) = self.resolve(spec);
        match stats {
            Some(s) => Ok(s),
            None => Err(outcome.error().map_or_else(
                || format!("job {} {}", spec.label(), outcome.label()),
                String::from,
            )),
        }
    }

    /// Runs every job of the set on the worker pool and reports.
    #[must_use]
    pub fn run_set(&self, set: &JobSet) -> RunReport {
        let start = Instant::now();
        let specs: Vec<&JobSpec> = set.iter().collect();
        let total = specs.len();
        let workers = self.cfg.jobs.clamp(1, total.max(1));
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<JobRecord>>> = (0..total).map(|_| Mutex::new(None)).collect();
        thread::scope(|scope| {
            for worker in 0..workers {
                let next = &next;
                let done = &done;
                let slots = &slots;
                let specs = &specs;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = specs.get(i) else { break };
                    let t0 = Instant::now();
                    let (outcome, attempts, _stats, commit) = self.resolve(spec);
                    let record = JobRecord {
                        id: spec.id().to_string(),
                        label: spec.label(),
                        outcome,
                        attempts,
                        millis: u64::try_from(t0.elapsed().as_millis()).unwrap_or(u64::MAX),
                        worker,
                        commit,
                    };
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if !self.cfg.quiet {
                        eprintln!(
                            "[{finished:>4}/{total}] {:<22} {:<40} {:>8} ms  (worker {worker})",
                            record.outcome.label(),
                            record.label,
                            record.millis,
                        );
                    }
                    *slots[i].lock().unwrap() = Some(record);
                });
            }
        });
        let records: Vec<JobRecord> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("worker records every claimed job")
            })
            .collect();
        let memo = self.memo.lock().unwrap();
        let results = specs
            .iter()
            .filter_map(|s| {
                let id = s.id().0;
                memo.get(&id).map(|st| (id, st.clone()))
            })
            .collect();
        RunReport {
            records,
            results,
            workers,
            wall: start.elapsed(),
        }
    }

    /// The checkpoint policy executions run under, if any.
    fn checkpoint_config(&self) -> Option<CheckpointConfig> {
        self.cfg.checkpoint_every.map(|every| CheckpointConfig {
            every,
            resume: self.cfg.resume,
            dir: checkpoint_dir(&self.cfg.cache_dir),
        })
    }

    fn resolve(&self, spec: &JobSpec) -> (JobOutcome, u32, Option<RunStats>, Option<CommitMeta>) {
        let id = spec.id().0;
        if let Some(stats) = self.memo.lock().unwrap().get(&id) {
            return (JobOutcome::Cached, 0, Some(stats.clone()), None);
        }
        if self.cfg.use_cache {
            if let Some(stats) = self.cache.load(spec) {
                self.memo.lock().unwrap().insert(id, stats.clone());
                return (JobOutcome::Cached, 0, Some(stats), None);
            }
        }
        let ckpt = self.checkpoint_config();
        let mut attempts = 0;
        loop {
            attempts += 1;
            match attempt_once(spec, self.cfg.timeout, ckpt.as_ref()) {
                Attempt::Success(stats, commit) => {
                    if self.cfg.verify_determinism {
                        attempts += 1;
                        if let Some(why) = self.determinism_divergence(spec, &stats) {
                            return (JobOutcome::DeterminismViolation(why), attempts, None, None);
                        }
                    }
                    if self.cfg.use_cache {
                        if let Err(e) = self.cache.store(spec, &stats) {
                            eprintln!(
                                "chats-runner: warning: could not cache {} ({e})",
                                spec.label()
                            );
                        }
                    }
                    self.memo.lock().unwrap().insert(id, (*stats).clone());
                    return (JobOutcome::Executed, attempts, Some(*stats), commit);
                }
                Attempt::SimError(e) => return (JobOutcome::Failed(e), attempts, None, None),
                Attempt::SimTimeout { message, partial } => {
                    return (
                        JobOutcome::TimedOut { message, partial },
                        attempts,
                        None,
                        None,
                    )
                }
                Attempt::Panicked(msg) => {
                    if attempts >= self.cfg.max_attempts {
                        return (
                            JobOutcome::Failed(format!(
                                "panicked after {attempts} attempts: {msg}"
                            )),
                            attempts,
                            None,
                            None,
                        );
                    }
                }
                Attempt::TimedOut => {
                    if attempts >= self.cfg.max_attempts {
                        return (
                            JobOutcome::TimedOut {
                                message: format!(
                                    "every attempt exceeded the {}s wall-clock budget",
                                    self.cfg.timeout.as_secs()
                                ),
                                partial: None,
                            },
                            attempts,
                            None,
                            None,
                        );
                    }
                }
            }
        }
    }

    /// Re-executes `spec` and describes the divergence from `first`, or
    /// `None` when the re-run reproduced it bit-for-bit.
    fn determinism_divergence(&self, spec: &JobSpec, first: &RunStats) -> Option<String> {
        // The re-run is deliberately un-checkpointed: a straight-through
        // execution matching a paused-and-snapshotted one is a stronger
        // determinism statement than running the same path twice.
        match attempt_once(spec, self.cfg.timeout, None) {
            Attempt::Success(second, _) if *second == *first => None,
            Attempt::Success(second, _) => Some(first_divergence(first, &second)),
            Attempt::SimError(e) => Some(format!("re-run errored: {e}")),
            Attempt::SimTimeout { message, .. } => Some(format!("re-run timed out: {message}")),
            Attempt::Panicked(msg) => Some(format!("re-run panicked: {msg}")),
            Attempt::TimedOut => Some("re-run timed out".to_string()),
        }
    }
}

/// Names the first counter that differs between two runs of one job.
fn first_divergence(a: &RunStats, b: &RunStats) -> String {
    use crate::cache::stats_to_json;
    let (ja, jb) = (stats_to_json(a), stats_to_json(b));
    if let (crate::json::Json::Obj(ma), crate::json::Json::Obj(mb)) = (&ja, &jb) {
        for (key, va) in ma {
            if mb.get(key) != Some(va) {
                return format!(
                    "two runs disagree on '{key}': {} vs {}",
                    va.to_compact(),
                    mb.get(key)
                        .map_or_else(|| "<missing>".into(), crate::json::Json::to_compact),
                );
            }
        }
    }
    "two runs disagree".to_string()
}

/// One execution attempt on a dedicated thread: panics are caught,
/// overruns abandon the thread. With a checkpoint policy the attempt
/// pauses and snapshots at every stride — an abandoned thread's last
/// checkpoint survives on disk, which is exactly what `--resume` picks
/// up later.
fn attempt_once(spec: &JobSpec, timeout: Duration, ckpt: Option<&CheckpointConfig>) -> Attempt {
    let (tx, rx) = mpsc::channel();
    let owned = spec.clone();
    let ckpt = ckpt.cloned();
    let spawned = thread::Builder::new()
        .name(format!("chats-job-{}", owned.id()))
        .spawn(move || {
            let result = panic::catch_unwind(AssertUnwindSafe(|| match &ckpt {
                Some(c) => execute_checkpointed(&owned, c).map(|(stats, meta)| (stats, Some(meta))),
                None => owned.execute_partial().map(|stats| (stats, None)),
            }));
            let _ = tx.send(result);
        });
    let handle = match spawned {
        Ok(h) => h,
        Err(e) => return Attempt::SimError(format!("could not spawn job thread: {e}")),
    };
    match rx.recv_timeout(timeout) {
        Ok(run) => {
            let _ = handle.join();
            match run {
                Ok(Ok((stats, meta))) => Attempt::Success(Box::new(stats), meta),
                Ok(Err(fail)) if fail.timed_out => Attempt::SimTimeout {
                    message: fail.message,
                    partial: fail.partial,
                },
                Ok(Err(fail)) => Attempt::SimError(fail.message),
                Err(payload) => Attempt::Panicked(panic_message(payload.as_ref())),
            }
        }
        // The attempt thread is deliberately leaked: it parks on the dead
        // channel once the simulation finally returns.
        Err(_) => Attempt::TimedOut,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chats_core::{HtmSystem, PolicyConfig};
    use chats_workloads::RunConfig;

    fn quiet_runner(dir: &std::path::Path, use_cache: bool) -> Runner {
        Runner::new(RunnerConfig {
            jobs: 2,
            use_cache,
            cache_dir: dir.to_path_buf(),
            quiet: true,
            ..RunnerConfig::default()
        })
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("chats-pool-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn unknown_workload_fails_without_retry() {
        let dir = tmp_dir("unknown");
        let r = quiet_runner(&dir, false);
        let spec = JobSpec::new(
            "no-such-workload",
            PolicyConfig::for_system(HtmSystem::Baseline),
            RunConfig::quick_test(),
        );
        let (outcome, attempts, stats, _) = r.resolve(&spec);
        assert_eq!(outcome.label(), "failed");
        assert_eq!(attempts, 1, "simulation errors must not consume retries");
        assert!(stats.is_none());
        assert!(outcome.error().unwrap().contains("unknown workload"));
    }

    #[test]
    fn run_set_records_every_job_and_memoizes() {
        let dir = tmp_dir("memo");
        let r = quiet_runner(&dir, false);
        let mut set = JobSet::new();
        let spec = JobSpec::new(
            "cadd",
            PolicyConfig::for_system(HtmSystem::Baseline),
            RunConfig::quick_test(),
        );
        set.push(spec.clone());
        set.push(JobSpec::new(
            "no-such-workload",
            PolicyConfig::for_system(HtmSystem::Baseline),
            RunConfig::quick_test(),
        ));
        let report = r.run_set(&set);
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.count("executed"), 1);
        assert_eq!(report.count("failed"), 1);
        assert!(!report.all_succeeded());
        assert!(report.stats_for(&spec).is_some());
        // Second resolution of the same job is a memo hit.
        let (outcome, _, _, _) = r.resolve(&spec);
        assert_eq!(outcome, JobOutcome::Cached);
    }

    #[test]
    fn cycle_budget_timeout_keeps_partial_stats_and_never_retries() {
        let dir = tmp_dir("simtimeout");
        let r = quiet_runner(&dir, false);
        let mut cfg = RunConfig::quick_test();
        cfg.max_cycles = 50; // far too small for any workload to finish
        let spec = JobSpec::new("cadd", PolicyConfig::for_system(HtmSystem::Chats), cfg);
        let (outcome, attempts, stats, _) = r.resolve(&spec);
        assert_eq!(outcome.label(), "timed-out");
        assert_eq!(
            attempts, 1,
            "a cycle-budget timeout is deterministic; retrying only burns time"
        );
        assert!(stats.is_none(), "timeouts never enter the result set");
        let partial = outcome.partial_stats().expect("partial stats survive");
        assert!(partial.cycles >= 50, "cycles records where the run stopped");
        assert!(outcome.error().unwrap().contains("timed out"));
    }

    #[test]
    fn first_divergence_names_the_counter() {
        let a = RunStats {
            cycles: 10,
            ..RunStats::default()
        };
        let b = RunStats {
            cycles: 11,
            ..RunStats::default()
        };
        let why = first_divergence(&a, &b);
        assert!(why.contains("cycles"), "{why}");
        assert!(why.contains("10") && why.contains("11"), "{why}");
    }

    #[test]
    fn report_speedup_is_busy_over_wall() {
        let report = RunReport {
            records: vec![
                JobRecord {
                    id: "0".into(),
                    label: "a".into(),
                    outcome: JobOutcome::Executed,
                    attempts: 1,
                    millis: 300,
                    worker: 0,
                    commit: None,
                },
                JobRecord {
                    id: "1".into(),
                    label: "b".into(),
                    outcome: JobOutcome::Executed,
                    attempts: 1,
                    millis: 300,
                    worker: 1,
                    commit: None,
                },
            ],
            results: HashMap::new(),
            workers: 2,
            wall: Duration::from_millis(300),
        };
        assert!((report.speedup() - 2.0).abs() < 1e-9);
        assert_eq!(report.busy(), Duration::from_millis(600));
        assert_eq!(report.retries(), 0);
    }
}
