//! Run manifests: one JSON document per `run_set` invocation.
//!
//! Manifests land in `target/chats-runs/<run-id>.json` and record enough
//! to audit a sweep after the fact: which sets were requested, per-job
//! outcome/attempts/timing/worker, cache hit rate, and the measured
//! parallel speedup (aggregate job time over wall time). They are
//! hand-serialized through [`crate::json`] — the format has no
//! dependency on a serialization framework.

use crate::cache::{default_target_dir, CACHE_VERSION};
use crate::hash::fnv1a_64;
use crate::json::Json;
use crate::pool::RunReport;
use chats_stats::Table;
use std::collections::BTreeMap;
use std::env;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// `$CHATS_RUNS_DIR`, or `chats-runs` under the cargo target directory.
#[must_use]
pub fn default_runs_dir() -> PathBuf {
    if let Some(dir) = env::var_os("CHATS_RUNS_DIR") {
        return dir.into();
    }
    default_target_dir().join("chats-runs")
}

/// Where a manifest was written and under which id.
#[derive(Debug, Clone)]
pub struct ManifestInfo {
    /// `<runs-dir>/<run-id>.json`.
    pub path: PathBuf,
    /// Timestamp-plus-content id, unique per invocation.
    pub run_id: String,
    /// `<runs-dir>/<run-id>/profile.json`, when a profile was attached.
    pub profile: Option<PathBuf>,
}

/// Builds the manifest JSON document for a report.
#[must_use]
pub fn manifest_json(report: &RunReport, sets: &[String], scale: &str, run_id: &str) -> Json {
    manifest_json_with_profile(report, sets, scale, run_id, None)
}

/// [`manifest_json`] plus an optional `profile` field — the manifest-dir
/// relative path of a cycle-accounting profile artifact. The field is
/// simply absent when no profile was recorded, so older manifests and
/// consumers are unaffected.
#[must_use]
pub fn manifest_json_with_profile(
    report: &RunReport,
    sets: &[String],
    scale: &str,
    run_id: &str,
    profile_rel: Option<&str>,
) -> Json {
    let created_ms = unix_millis();
    let cached = report.count("cached");
    let total = report.records.len();
    let misses = total - cached;

    let mut jobs = BTreeMap::new();
    jobs.insert("total".to_string(), Json::U64(total as u64));
    jobs.insert(
        "executed".to_string(),
        Json::U64(report.count("executed") as u64),
    );
    jobs.insert("cached".to_string(), Json::U64(cached as u64));
    jobs.insert(
        "failed".to_string(),
        Json::U64(report.count("failed") as u64),
    );
    jobs.insert(
        "timed_out".to_string(),
        Json::U64(report.count("timed-out") as u64),
    );
    jobs.insert(
        "determinism_violations".to_string(),
        Json::U64(report.count("determinism-violation") as u64),
    );
    jobs.insert("retries".to_string(), Json::U64(report.retries()));

    let mut cache = BTreeMap::new();
    cache.insert("hits".to_string(), Json::U64(cached as u64));
    cache.insert("misses".to_string(), Json::U64(misses as u64));
    cache.insert(
        "hit_rate".to_string(),
        Json::F64(if total == 0 {
            0.0
        } else {
            cached as f64 / total as f64
        }),
    );

    let mut events_total: u64 = 0;
    let mut commits_total: u64 = 0;
    let per_job: Vec<Json> = report
        .records
        .iter()
        .map(|r| {
            let mut m = BTreeMap::new();
            m.insert("id".to_string(), Json::Str(r.id.clone()));
            m.insert("label".to_string(), Json::Str(r.label.clone()));
            m.insert(
                "outcome".to_string(),
                Json::Str(r.outcome.label().to_string()),
            );
            m.insert("attempts".to_string(), Json::U64(u64::from(r.attempts)));
            m.insert("millis".to_string(), Json::U64(r.millis));
            m.insert("worker".to_string(), Json::U64(r.worker as u64));
            // Wall-time and simulator throughput per job, so the runner's
            // cache and parallelism wins show up in the same perf
            // trajectory as the single-run numbers (a cache hit "replays"
            // the job's events in ~0 time). `events` is a deterministic
            // counter; `events_per_sec` is wall-clock and is stripped by
            // [`canonical_manifest`].
            if let Some(stats) = u64::from_str_radix(&r.id, 16)
                .ok()
                .and_then(|id| report.results.get(&id))
            {
                events_total += stats.events;
                commits_total += stats.commits;
                m.insert("events".to_string(), Json::U64(stats.events));
                m.insert("commits".to_string(), Json::U64(stats.commits));
                m.insert("cycles".to_string(), Json::U64(stats.cycles));
                let secs = (r.millis as f64 / 1000.0).max(0.000_5);
                m.insert(
                    "events_per_sec".to_string(),
                    Json::F64(stats.events as f64 / secs),
                );
                // Commit throughput, both in simulated time (deterministic
                // SLA figure — for the evm family one commit is exactly
                // one user transaction) and against the host wall clock
                // (stripped by [`canonical_manifest`] with the other
                // wall-time fields).
                m.insert(
                    "commits_per_mcycle".to_string(),
                    Json::F64(stats.commits as f64 * 1.0e6 / (stats.cycles.max(1)) as f64),
                );
                m.insert(
                    "commits_per_sec".to_string(),
                    Json::F64(stats.commits as f64 / secs),
                );
            }
            if let Some(err) = r.outcome.error() {
                m.insert("error".to_string(), Json::Str(err.to_string()));
            }
            // Timed-out jobs are first-class: a status field plus the
            // statistics the simulation had gathered when it stopped.
            if matches!(r.outcome, crate::pool::JobOutcome::TimedOut { .. }) {
                m.insert("status".to_string(), Json::Str("timeout".to_string()));
            }
            if let Some(stats) = r.outcome.partial_stats() {
                m.insert(
                    "partial_stats".to_string(),
                    crate::cache::stats_to_json(stats),
                );
            }
            // A checkpointed execution records its epoch-commitment
            // chain: two manifests for the same job can be diffed
            // epoch-by-epoch (see `chats-dissect`) without re-running
            // anything.
            if let Some(meta) = &r.commit {
                m.insert("commit".to_string(), commit_to_json(meta));
            }
            Json::Obj(m)
        })
        .collect();

    let mut root = BTreeMap::new();
    root.insert("run_id".to_string(), Json::Str(run_id.to_string()));
    root.insert("created_unix_ms".to_string(), Json::U64(created_ms));
    root.insert(
        "crate_version".to_string(),
        Json::Str(CACHE_VERSION.to_string()),
    );
    root.insert("scale".to_string(), Json::Str(scale.to_string()));
    root.insert(
        "sets".to_string(),
        Json::Arr(sets.iter().map(|s| Json::Str(s.clone())).collect()),
    );
    root.insert("workers".to_string(), Json::U64(report.workers as u64));
    root.insert(
        "wall_ms".to_string(),
        Json::U64(u64::try_from(report.wall.as_millis()).unwrap_or(u64::MAX)),
    );
    root.insert(
        "busy_ms".to_string(),
        Json::U64(u64::try_from(report.busy().as_millis()).unwrap_or(u64::MAX)),
    );
    root.insert("speedup".to_string(), Json::F64(report.speedup()));
    root.insert("events_total".to_string(), Json::U64(events_total));
    root.insert(
        "events_per_sec".to_string(),
        Json::F64(events_total as f64 / (report.wall.as_secs_f64().max(0.000_5))),
    );
    root.insert("commits_total".to_string(), Json::U64(commits_total));
    root.insert(
        "commits_per_sec".to_string(),
        Json::F64(commits_total as f64 / (report.wall.as_secs_f64().max(0.000_5))),
    );
    root.insert("jobs".to_string(), Json::Obj(jobs));
    root.insert("cache".to_string(), Json::Obj(cache));
    root.insert("per_job".to_string(), Json::Arr(per_job));
    if let Some(rel) = profile_rel {
        root.insert("profile".to_string(), Json::Str(rel.to_string()));
    }
    Json::Obj(root)
}

/// The manifest form of a job's commitment bookkeeping: interval, epoch
/// count, optional resume point, and the chain itself with both hashes
/// rendered as 16 hex digits.
fn commit_to_json(meta: &crate::checkpoint::CommitMeta) -> Json {
    let mut m = BTreeMap::new();
    m.insert("interval".to_string(), Json::U64(meta.interval));
    m.insert("epochs".to_string(), Json::U64(meta.chain.len() as u64));
    if let Some(boundary) = meta.resumed_from {
        m.insert("resumed_from".to_string(), Json::U64(boundary));
    }
    m.insert(
        "chain".to_string(),
        Json::Arr(
            meta.chain
                .iter()
                .map(|e| {
                    let mut c = BTreeMap::new();
                    c.insert("boundary".to_string(), Json::U64(e.boundary));
                    c.insert("full".to_string(), Json::Str(format!("{:016x}", e.full)));
                    c.insert("arch".to_string(), Json::Str(format!("{:016x}", e.arch)));
                    Json::Obj(c)
                })
                .collect(),
        ),
    );
    Json::Obj(m)
}

/// Writes the manifest for a report into `dir`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_manifest(
    report: &RunReport,
    sets: &[String],
    scale: &str,
    dir: &Path,
) -> io::Result<ManifestInfo> {
    write_manifest_with_profile(report, sets, scale, dir, None)
}

/// [`write_manifest`] plus an optional profile artifact: when
/// `profile_json` is given, it is written to `<dir>/<run-id>/profile.json`
/// and the manifest gains a `profile` field pointing at it (relative to
/// `dir`).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_manifest_with_profile(
    report: &RunReport,
    sets: &[String],
    scale: &str,
    dir: &Path,
    profile_json: Option<&str>,
) -> io::Result<ManifestInfo> {
    fs::create_dir_all(dir)?;
    let salt: String = report.records.iter().map(|r| r.id.as_str()).collect();
    let run_id = format!(
        "{:013}-{:08x}",
        unix_millis(),
        fnv1a_64(salt.as_bytes()) ^ u64::from(std::process::id())
    );
    let mut profile = None;
    let mut profile_rel = None;
    if let Some(json) = profile_json {
        let subdir = dir.join(&run_id);
        fs::create_dir_all(&subdir)?;
        let p = subdir.join("profile.json");
        fs::write(&p, json)?;
        profile_rel = Some(format!("{run_id}/profile.json"));
        profile = Some(p);
    }
    let path = dir.join(format!("{run_id}.json"));
    fs::write(
        &path,
        manifest_json_with_profile(report, sets, scale, &run_id, profile_rel.as_deref())
            .to_pretty(),
    )?;
    Ok(ManifestInfo {
        path,
        run_id,
        profile,
    })
}

/// Renders `report` as a *canonicalized* manifest: the wall-clock fields a
/// manifest legitimately varies in (timestamps, timing, worker ids,
/// scheduling order, derived throughput) are stripped and per-job records
/// are sorted by id, so what remains must be byte-identical across runs
/// and worker counts for a deterministic job set. The determinism proptest
/// and the simulation-core bit-identity golden both diff this form.
#[must_use]
pub fn canonical_manifest(report: &RunReport, sets: &[String], scale: &str) -> String {
    let mut v = manifest_json(report, sets, scale, "canonical");
    if let Json::Obj(root) = &mut v {
        for key in [
            "created_unix_ms",
            "wall_ms",
            "busy_ms",
            "speedup",
            "workers",
            "events_per_sec",
            "commits_per_sec",
        ] {
            root.remove(key);
        }
        if let Some(Json::Arr(jobs)) = root.get_mut("per_job") {
            for job in jobs.iter_mut() {
                if let Json::Obj(m) = job {
                    m.remove("millis");
                    m.remove("worker");
                    m.remove("events_per_sec");
                    m.remove("commits_per_sec");
                    // Where a run resumed from depends on wall-clock
                    // history (which attempt got interrupted); the chain
                    // itself must not.
                    if let Some(Json::Obj(commit)) = m.get_mut("commit") {
                        commit.remove("resumed_from");
                    }
                }
            }
            jobs.sort_by_key(|j| match j.get("id") {
                Some(Json::Str(s)) => s.clone(),
                _ => String::new(),
            });
        }
    }
    v.to_pretty()
}

/// A two-column summary of a report for terminal display.
#[must_use]
pub fn summary_table(report: &RunReport) -> Table {
    let mut t = Table::new(vec!["metric".into(), "value".into()]);
    let mut kv = |k: &str, v: String| {
        t.row(vec![k.to_string(), v]);
    };
    let total = report.records.len();
    kv("jobs", total.to_string());
    kv("workers", report.workers.to_string());
    kv("executed", report.count("executed").to_string());
    kv("cached", report.count("cached").to_string());
    kv("failed", report.count("failed").to_string());
    kv("timed out", report.count("timed-out").to_string());
    kv(
        "determinism violations",
        report.count("determinism-violation").to_string(),
    );
    kv("retries", report.retries().to_string());
    kv("wall time", format!("{:.2} s", report.wall.as_secs_f64()));
    kv(
        "aggregate job time",
        format!("{:.2} s", report.busy().as_secs_f64()),
    );
    kv("parallel speedup", format!("{:.2}x", report.speedup()));
    let hit_rate = if total == 0 {
        0.0
    } else {
        report.count("cached") as f64 / total as f64
    };
    kv("cache hit rate", format!("{:.0}%", hit_rate * 100.0));
    t
}

fn unix_millis() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{JobOutcome, JobRecord};
    use std::collections::HashMap;
    use std::time::Duration;

    fn sample_report() -> RunReport {
        RunReport {
            records: vec![
                JobRecord {
                    id: "00000000000000aa".into(),
                    label: "cadd/chats".into(),
                    outcome: JobOutcome::Executed,
                    attempts: 1,
                    millis: 120,
                    worker: 0,
                    commit: None,
                },
                JobRecord {
                    id: "00000000000000bb".into(),
                    label: "cadd/power".into(),
                    outcome: JobOutcome::Cached,
                    attempts: 0,
                    millis: 1,
                    worker: 1,
                    commit: None,
                },
                JobRecord {
                    id: "00000000000000cc".into(),
                    label: "genome/chats".into(),
                    outcome: JobOutcome::Failed("boom".into()),
                    attempts: 2,
                    millis: 30,
                    worker: 0,
                    commit: None,
                },
                JobRecord {
                    id: "00000000000000dd".into(),
                    label: "yada/chats".into(),
                    outcome: JobOutcome::TimedOut {
                        message: "yada under Chats: timed out at cycle 1000".into(),
                        partial: Some(Box::new(chats_stats::RunStats {
                            cycles: 1000,
                            commits: 7,
                            ..chats_stats::RunStats::default()
                        })),
                    },
                    attempts: 1,
                    millis: 40,
                    worker: 1,
                    commit: None,
                },
            ],
            results: HashMap::new(),
            workers: 2,
            wall: Duration::from_millis(100),
        }
    }

    #[test]
    fn manifest_counts_and_fields() {
        let report = sample_report();
        let m = manifest_json(&report, &["fig4".into()], "quick", "test-run");
        assert_eq!(m.get("run_id").and_then(Json::as_str), Some("test-run"));
        assert_eq!(m.get("scale").and_then(Json::as_str), Some("quick"));
        let jobs = m.get("jobs").unwrap();
        assert_eq!(jobs.get("total").and_then(Json::as_u64), Some(4));
        assert_eq!(jobs.get("executed").and_then(Json::as_u64), Some(1));
        assert_eq!(jobs.get("cached").and_then(Json::as_u64), Some(1));
        assert_eq!(jobs.get("failed").and_then(Json::as_u64), Some(1));
        assert_eq!(jobs.get("timed_out").and_then(Json::as_u64), Some(1));
        assert_eq!(jobs.get("retries").and_then(Json::as_u64), Some(1));
        let cache = m.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(3));
        let per_job = m.get("per_job").and_then(Json::as_arr).unwrap();
        assert_eq!(per_job.len(), 4);
        assert_eq!(per_job[2].get("error").and_then(Json::as_str), Some("boom"));
        assert!(per_job[0].get("error").is_none());
        assert!(per_job[0].get("status").is_none());
        // A timed-out job carries a status and its partial statistics.
        assert_eq!(
            per_job[3].get("status").and_then(Json::as_str),
            Some("timeout")
        );
        let partial = per_job[3].get("partial_stats").expect("partial stats");
        assert_eq!(partial.get("cycles").and_then(Json::as_u64), Some(1000));
        assert_eq!(partial.get("commits").and_then(Json::as_u64), Some(7));
        // The document round-trips through the parser.
        assert_eq!(Json::parse(&m.to_pretty()).unwrap(), m);
    }

    #[test]
    fn commit_throughput_is_reported_and_canonicalized() {
        let mut report = sample_report();
        report.results.insert(
            0xaa,
            chats_stats::RunStats {
                cycles: 2_000_000,
                commits: 5000,
                events: 9000,
                ..chats_stats::RunStats::default()
            },
        );
        let m = manifest_json(&report, &["evm".into()], "quick", "r");
        assert_eq!(m.get("commits_total").and_then(Json::as_u64), Some(5000));
        assert!(m.get("commits_per_sec").is_some());
        let per_job = m.get("per_job").and_then(Json::as_arr).unwrap();
        assert_eq!(per_job[0].get("commits").and_then(Json::as_u64), Some(5000));
        assert_eq!(
            per_job[0].get("cycles").and_then(Json::as_u64),
            Some(2_000_000)
        );
        assert_eq!(
            per_job[0].get("commits_per_mcycle").and_then(Json::as_f64),
            Some(2500.0)
        );
        // The wall-clock throughput is stripped from the canonical form;
        // the simulated-time SLA figure survives it.
        let canon = canonical_manifest(&report, &["evm".into()], "quick");
        assert!(!canon.contains("commits_per_sec"), "{canon}");
        assert!(canon.contains("commits_per_mcycle"), "{canon}");
        assert!(canon.contains("commits_total"), "{canon}");
    }

    #[test]
    fn commit_meta_is_recorded_and_resume_point_canonicalized_away() {
        use crate::checkpoint::CommitMeta;
        use chats_machine::EpochCommitment;
        let mut report = sample_report();
        report.records[0].commit = Some(CommitMeta {
            interval: 1024,
            resumed_from: Some(2048),
            chain: vec![
                EpochCommitment {
                    boundary: 0,
                    full: 0xAB,
                    arch: 0xCD,
                },
                EpochCommitment {
                    boundary: 1024,
                    full: 0x12,
                    arch: 0x34,
                },
            ],
        });
        let m = manifest_json(&report, &["fig4".into()], "quick", "r");
        let per_job = m.get("per_job").and_then(Json::as_arr).unwrap();
        let commit = per_job[0].get("commit").expect("commit object");
        assert_eq!(commit.get("interval").and_then(Json::as_u64), Some(1024));
        assert_eq!(commit.get("epochs").and_then(Json::as_u64), Some(2));
        assert_eq!(
            commit.get("resumed_from").and_then(Json::as_u64),
            Some(2048)
        );
        let chain = commit.get("chain").and_then(Json::as_arr).unwrap();
        assert_eq!(
            chain[0].get("full").and_then(Json::as_str),
            Some("00000000000000ab")
        );
        assert_eq!(chain[1].get("boundary").and_then(Json::as_u64), Some(1024));
        assert!(per_job[1].get("commit").is_none(), "uncheckpointed jobs");
        // The chain survives canonicalization; the resume point does not.
        let canon = canonical_manifest(&report, &["fig4".into()], "quick");
        assert!(!canon.contains("resumed_from"), "{canon}");
        assert!(canon.contains("00000000000000ab"), "{canon}");
    }

    #[test]
    fn summary_table_mentions_speedup_and_hit_rate() {
        let text = summary_table(&sample_report()).to_string();
        assert!(text.contains("parallel speedup"), "{text}");
        assert!(text.contains("cache hit rate"), "{text}");
        assert!(text.contains("25%"), "{text}");
    }

    #[test]
    fn profile_field_is_optional_and_relative() {
        let report = sample_report();
        // Absent by default: existing manifests and their consumers see no
        // change at all.
        let bare = manifest_json(&report, &["fig4".into()], "quick", "r");
        assert!(bare.get("profile").is_none());

        let dir = std::env::temp_dir().join(format!("chats-profile-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let info = write_manifest_with_profile(
            &report,
            &["fig4".into()],
            "quick",
            &dir,
            Some("{\"useful\": 1}"),
        )
        .unwrap();
        let profile_path = info.profile.expect("profile written");
        assert_eq!(
            std::fs::read_to_string(&profile_path).unwrap(),
            "{\"useful\": 1}"
        );
        let back = Json::parse(&std::fs::read_to_string(&info.path).unwrap()).unwrap();
        assert_eq!(
            back.get("profile").and_then(Json::as_str),
            Some(format!("{}/profile.json", info.run_id).as_str())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_manifest_creates_file() {
        let dir = std::env::temp_dir().join(format!("chats-manifest-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let info = write_manifest(&sample_report(), &["fig4".into()], "quick", &dir).unwrap();
        let text = std::fs::read_to_string(&info.path).unwrap();
        let back = Json::parse(&text).unwrap();
        assert_eq!(
            back.get("run_id").and_then(Json::as_str),
            Some(info.run_id.as_str())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
