//! Checkpointed job execution: periodic snapshots, commitment-chain
//! bookkeeping, and resume-from-interruption.
//!
//! With `--checkpoint-every N` the runner drives each job through
//! [`chats_machine::Machine::run_to`] in `N`-cycle strides, writing a full
//! machine checkpoint at every pause boundary. The epoch-commitment
//! interval is armed to the same stride, so each checkpoint lands exactly
//! on a commitment boundary: the restored machine's state hash must equal
//! the chain entry recorded at that boundary, which is what lets the
//! cache treat a checkpoint (plus its commitment chain) as *verifiable*
//! partial progress rather than an opaque blob.
//!
//! Checkpoints are sidecar files under `<cache-dir>/checkpoints/`, one
//! per [`JobId`]. A finished job deletes its sidecar (the result cache
//! takes over); an interrupted, timed-out or stalled job leaves it
//! behind, and a later `--resume` run picks the job up from the last
//! boundary instead of cycle 0. Every validation failure — wrong
//! configuration guard, corrupt body, commitment mismatch — degrades to
//! a fresh run, never a wrong result.

use crate::job::JobSpec;
use chats_machine::{EpochCommitment, RunProgress, SimError};
use chats_stats::RunStats;
use chats_workloads::{prepare_run, registry, PreparedRun, RunFailure};
use std::fs;
use std::path::{Path, PathBuf};

/// How to checkpoint job execution.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Checkpoint (and epoch-commitment) stride in simulated cycles.
    pub every: u64,
    /// Restore from an existing checkpoint sidecar instead of starting
    /// at cycle 0.
    pub resume: bool,
    /// Sidecar directory (see [`checkpoint_dir`]).
    pub dir: PathBuf,
}

/// The checkpoint sidecar directory for a cache directory.
#[must_use]
pub fn checkpoint_dir(cache_dir: &Path) -> PathBuf {
    cache_dir.join("checkpoints")
}

/// The commitment bookkeeping a checkpointed execution hands back for
/// the run manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitMeta {
    /// Epoch length in cycles.
    pub interval: u64,
    /// The boundary the job resumed from, when it did.
    pub resumed_from: Option<u64>,
    /// The full commitment chain, boundary 0 onward.
    pub chain: Vec<EpochCommitment>,
}

impl CheckpointConfig {
    /// The sidecar path for a job.
    #[must_use]
    pub fn path_for(&self, spec: &JobSpec) -> PathBuf {
        self.dir.join(format!("{}.ckpt", spec.id()))
    }
}

/// Runs `spec` under checkpointing: commitment interval armed at
/// `ckpt.every`, a snapshot written at every boundary, and (with
/// `ckpt.resume`) a restart from the last surviving snapshot. Returns
/// the final statistics plus the commitment chain.
///
/// # Errors
///
/// Same failure modes as plain execution (unknown workload, simulation
/// timeout/deadlock/watchdog stall, invariant violation), with partial
/// statistics preserved. A failed job's last checkpoint is deliberately
/// *kept* so the job can be resumed.
pub fn execute_checkpointed(
    spec: &JobSpec,
    ckpt: &CheckpointConfig,
) -> Result<(RunStats, CommitMeta), RunFailure> {
    let workload = registry::by_name(&spec.workload).ok_or_else(|| RunFailure {
        message: format!("unknown workload '{}'", spec.workload),
        partial: None,
        timed_out: false,
    })?;
    let PreparedRun {
        mut machine,
        checker,
    } = prepare_run(workload.as_ref(), spec.policy, &spec.config);
    machine.set_commit_interval(ckpt.every);

    let path = ckpt.path_for(spec);
    let mut resumed_from = None;
    if ckpt.resume {
        match try_restore(&mut machine, &path) {
            Ok(Some(boundary)) => resumed_from = Some(boundary),
            Ok(None) => {}
            Err(why) => {
                eprintln!(
                    "chats-runner: warning: discarding unusable checkpoint {} ({why}); restarting {}",
                    path.display(),
                    spec.label()
                );
                let _ = fs::remove_file(&path);
                // The failed restore may have torn machine state; rebuild.
                let fresh = prepare_run(workload.as_ref(), spec.policy, &spec.config);
                machine = fresh.machine;
                machine.set_commit_interval(ckpt.every);
            }
        }
    }

    let mut next_pause = resumed_from.unwrap_or(0) + ckpt.every;
    let stats = loop {
        match machine.run_to(next_pause, spec.config.max_cycles) {
            Ok(RunProgress::Done(stats)) => break stats,
            Ok(RunProgress::Paused { at }) => {
                if let Err(e) = write_checkpoint(&machine.checkpoint(), &path) {
                    eprintln!(
                        "chats-runner: warning: could not write checkpoint {} ({e})",
                        path.display()
                    );
                }
                next_pause = at + ckpt.every;
            }
            Err(e) => {
                let (message, stopped_at) = match &e {
                    SimError::Timeout { at_cycle } => (
                        format!(
                            "{} under {:?}: timed out at cycle {at_cycle}",
                            workload.name(),
                            spec.policy.system
                        ),
                        *at_cycle,
                    ),
                    SimError::Deadlock { at_cycle, .. } => (
                        format!("{} under {:?}: {e}", workload.name(), spec.policy.system),
                        *at_cycle,
                    ),
                    SimError::WatchdogStall { report } => (
                        format!("{} under {:?}: {e}", workload.name(), spec.policy.system),
                        report.at_cycle,
                    ),
                };
                let mut partial = machine.stats().clone();
                partial.cycles = stopped_at;
                return Err(RunFailure {
                    message,
                    partial: Some(Box::new(partial)),
                    timed_out: matches!(e, SimError::Timeout { .. }),
                });
            }
        }
    };
    (checker)(&machine).map_err(|e| RunFailure {
        message: format!(
            "{} under {:?}: transactional semantics violated: {e}",
            workload.name(),
            spec.policy.system
        ),
        partial: Some(Box::new(stats.clone())),
        timed_out: false,
    })?;
    // The job is complete: the result cache takes over from here, so the
    // in-flight sidecar is no longer progress worth keeping.
    let _ = fs::remove_file(&path);
    let meta = CommitMeta {
        interval: ckpt.every,
        resumed_from,
        chain: machine.commitment_chain().to_vec(),
    };
    Ok((stats, meta))
}

/// Restores `machine` from the sidecar at `path`, if one exists, and
/// verifies the restored state hash against the commitment chain entry
/// at the pause boundary. `Ok(None)` means no sidecar (fresh start);
/// `Err` means the sidecar exists but cannot be trusted.
fn try_restore(machine: &mut chats_machine::Machine, path: &Path) -> Result<Option<u64>, String> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("unreadable: {e}")),
    };
    machine.restore(&bytes).map_err(|e| e.to_string())?;
    let last = machine
        .commitment_chain()
        .last()
        .copied()
        .ok_or("restored checkpoint has an empty commitment chain")?;
    let state = machine.state_commitment();
    if state.full != last.full {
        return Err(format!(
            "restored state hash {:016x} does not match the chain entry {:016x} at boundary {}",
            state.full, last.full, last.boundary
        ));
    }
    Ok(Some(last.boundary))
}

/// Atomic sidecar write (temp file + rename), mirroring the result
/// cache: a concurrent or interrupted writer can never leave a torn
/// checkpoint.
fn write_checkpoint(bytes: &[u8], path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chats_core::{HtmSystem, PolicyConfig};
    use chats_workloads::RunConfig;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("chats-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn spec() -> JobSpec {
        JobSpec::new(
            "cadd",
            PolicyConfig::for_system(HtmSystem::Chats),
            RunConfig::quick_test(),
        )
    }

    #[test]
    fn checkpointed_run_matches_plain_execution() {
        let spec = spec();
        let plain = spec.execute().unwrap();
        let ckpt = CheckpointConfig {
            every: 512,
            resume: false,
            dir: tmp_dir("match"),
        };
        let (stats, meta) = execute_checkpointed(&spec, &ckpt).unwrap();
        assert_eq!(stats, plain, "checkpoint pauses must not perturb the run");
        assert_eq!(meta.interval, 512);
        assert!(meta.resumed_from.is_none());
        assert!(!meta.chain.is_empty());
        assert_eq!(
            meta.chain[0].boundary, 0,
            "chain starts at the initial state"
        );
        assert!(
            !ckpt.path_for(&spec).exists(),
            "a finished job cleans up its sidecar"
        );
        let _ = fs::remove_dir_all(&ckpt.dir);
    }

    #[test]
    fn resume_continues_an_interrupted_job_bit_identically() {
        let spec = spec();
        let dir = tmp_dir("resume");
        let ckpt = CheckpointConfig {
            every: 256,
            resume: false,
            dir: dir.clone(),
        };
        // Golden: uninterrupted checkpointed run.
        let (golden_stats, golden_meta) = execute_checkpointed(&spec, &ckpt).unwrap();

        // Interrupt: run the first stride by hand and leave the sidecar
        // behind, exactly as an abandoned worker thread would.
        let workload = registry::by_name(&spec.workload).unwrap();
        let mut prep = prepare_run(workload.as_ref(), spec.policy, &spec.config);
        prep.machine.set_commit_interval(ckpt.every);
        match prep
            .machine
            .run_to(ckpt.every, spec.config.max_cycles)
            .unwrap()
        {
            RunProgress::Paused { at } => assert_eq!(at, ckpt.every),
            RunProgress::Done(_) => panic!("workload finished inside one stride"),
        }
        write_checkpoint(&prep.machine.checkpoint(), &ckpt.path_for(&spec)).unwrap();

        let resumed = CheckpointConfig {
            resume: true,
            ..ckpt.clone()
        };
        let (stats, meta) = execute_checkpointed(&spec, &resumed).unwrap();
        assert_eq!(meta.resumed_from, Some(256));
        assert_eq!(stats, golden_stats, "resume must be bit-identical");
        assert_eq!(
            meta.chain, golden_meta.chain,
            "the commitment chain must not notice the interruption"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_degrades_to_a_fresh_run() {
        let spec = spec();
        let dir = tmp_dir("corrupt");
        let ckpt = CheckpointConfig {
            every: 256,
            resume: true,
            dir: dir.clone(),
        };
        write_checkpoint(b"not a checkpoint", &ckpt.path_for(&spec)).unwrap();
        let (stats, meta) = execute_checkpointed(&spec, &ckpt).unwrap();
        assert!(meta.resumed_from.is_none(), "corruption restarts from 0");
        assert_eq!(stats, spec.execute().unwrap());
        let _ = fs::remove_dir_all(&dir);
    }
}
