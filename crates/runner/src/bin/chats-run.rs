//! `chats-run`: the experiment-runner command line.
//!
//! ```text
//! chats-run list [SET...] [--smoke] [--filter S] [--family F]
//! chats-run run  [SET...] [--jobs N] [--filter S] [--family F] [--no-cache]
//!                [--smoke] [--timeout N] [--retries N] [--verify-determinism]
//!                [--faults PLAN.json] [--cache-dir D] [--runs-dir D] [--quiet]
//! chats-run clean [--cache-dir D] [--runs-dir D] [--runs]
//! ```
//!
//! `run` executes the named experiment sets (default: `fig4 fig5`) on
//! the worker pool, writes a JSON manifest under `target/chats-runs/`
//! and prints a summary. `--smoke` switches to the 4-core quick-test
//! machine with the atomicity oracle armed.

use chats_obs::{profile_value, ProfileMeta, Timeline, VecSink};
use chats_runner::{
    default_cache_dir, default_runs_dir, experiments, summary_table, write_manifest_with_profile,
    DiskCache, JobSet, Runner, RunnerConfig, Scale,
};
use chats_workloads::{registry, run_workload_traced};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
usage: chats-run <command> [args]

commands:
  list  [SET...]            show the jobs of the named sets (default: all)
  run   [SET...]            execute the named sets (default: fig4 fig5)
  clean                     delete the result cache (and, with --runs, manifests)

options (run):
  --jobs N                  worker threads (default: available parallelism)
  --filter S                keep only jobs whose label contains S
  --family F                keep only jobs of one workload family
                            (stamp, micro or evm); with no SET named,
                            selects from the union of every set
  --no-cache                ignore and do not write the disk cache
  --smoke                   quick-test scale: 4 cores, atomicity oracle on
  --timeout N               per-attempt wall-clock budget in seconds
                            (default 900; --timeout-secs is an alias)
  --retries N               extra attempts after a panic/timeout (default 1)
  --verify-determinism      run every executed job twice, demand identical stats
  --faults PLAN.json        install the fault plan on every job (the plan
                            hash joins each job's cache identity)
  --checkpoint-every N      pause every executed job each N simulated
                            cycles, snapshot it under
                            <cache-dir>/checkpoints/, and record its
                            epoch-commitment chain in the manifest
  --resume                  restore interrupted jobs from their last
                            checkpoint instead of restarting at cycle 0
                            (needs --checkpoint-every)
  --cache-dir D             cache directory (default target/chats-cache)
  --runs-dir D              manifest directory (default target/chats-runs)
  --profile LABEL           re-run the job matching LABEL with tracing and
                            attach its cycle-accounting profile to the
                            manifest (target/chats-runs/<id>/profile.json)
  --quiet                   no per-job progress lines

sets: fig1 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11
      scaling picwidth chains ablations headline evm all";

struct Args {
    command: String,
    sets: Vec<String>,
    jobs: Option<usize>,
    filter: Option<String>,
    family: Option<String>,
    no_cache: bool,
    smoke: bool,
    timeout_secs: Option<u64>,
    retries: Option<u32>,
    verify_determinism: bool,
    faults: Option<PathBuf>,
    checkpoint_every: Option<u64>,
    resume: bool,
    cache_dir: Option<PathBuf>,
    runs_dir: Option<PathBuf>,
    profile: Option<String>,
    quiet: bool,
    clean_runs: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or("missing command")?;
    let mut args = Args {
        command,
        sets: Vec::new(),
        jobs: None,
        filter: None,
        family: None,
        no_cache: false,
        smoke: false,
        timeout_secs: None,
        retries: None,
        verify_determinism: false,
        faults: None,
        checkpoint_every: None,
        resume: false,
        cache_dir: None,
        runs_dir: None,
        profile: None,
        quiet: false,
        clean_runs: false,
    };
    while let Some(arg) = argv.next() {
        let mut value = |what: &str| argv.next().ok_or_else(|| format!("{what} needs a value"));
        match arg.as_str() {
            "--jobs" => args.jobs = Some(parse_num(&value("--jobs")?, "--jobs")?),
            "--filter" => args.filter = Some(value("--filter")?),
            "--family" => args.family = Some(value("--family")?),
            "--no-cache" => args.no_cache = true,
            "--smoke" => args.smoke = true,
            "--timeout" | "--timeout-secs" => {
                args.timeout_secs = Some(parse_num(&value(&arg)?, &arg)?);
            }
            "--retries" => args.retries = Some(parse_num(&value("--retries")?, "--retries")?),
            "--faults" => args.faults = Some(PathBuf::from(value("--faults")?)),
            "--checkpoint-every" => {
                args.checkpoint_every = Some(parse_num(
                    &value("--checkpoint-every")?,
                    "--checkpoint-every",
                )?);
            }
            "--resume" => args.resume = true,
            "--verify-determinism" => args.verify_determinism = true,
            "--cache-dir" => args.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--runs-dir" => args.runs_dir = Some(PathBuf::from(value("--runs-dir")?)),
            "--profile" => args.profile = Some(value("--profile")?),
            "--quiet" => args.quiet = true,
            "--runs" => args.clean_runs = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            s if s.starts_with('-') => return Err(format!("unknown option '{s}'")),
            s => args.sets.push(s.to_string()),
        }
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag}: invalid number '{text}'"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("chats-run: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let scale = if args.smoke {
        Scale::Quick
    } else {
        Scale::Paper
    };
    match args.command.as_str() {
        "list" => cmd_list(&args, scale),
        "run" => cmd_run(&args, scale),
        "clean" => cmd_clean(&args),
        other => {
            eprintln!("chats-run: unknown command '{other}'\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn build_set(
    args: &Args,
    scale: Scale,
    default_sets: &[&str],
) -> Result<(chats_runner::JobSet, Vec<String>), String> {
    let ids: Vec<String> = if args.sets.is_empty() {
        // A bare `--family F` means "everything of that family", not
        // "that family's slice of fig4+fig5".
        if args.family.is_some() {
            vec!["all".to_string()]
        } else {
            default_sets.iter().map(|s| (*s).to_string()).collect()
        }
    } else {
        args.sets.clone()
    };
    let mut set = experiments::union(ids.iter().map(String::as_str), scale)?;
    if let Some(tag) = &args.family {
        set.retain_family(tag);
    }
    if let Some(needle) = &args.filter {
        set.retain_matching(needle);
    }
    if let Some(path) = &args.faults {
        let plan = chats_workloads::FaultPlan::load(path)?;
        set.apply_faults(&plan);
    }
    Ok((set, ids))
}

fn cmd_list(args: &Args, scale: Scale) -> ExitCode {
    let (set, ids) = match build_set(args, scale, &["all"]) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("chats-run: {e}");
            return ExitCode::from(2);
        }
    };
    for job in set.iter() {
        println!("{}  {}", job.id(), job.label());
    }
    println!(
        "{} unique jobs in {} at {} scale",
        set.len(),
        ids.join("+"),
        scale.label()
    );
    ExitCode::SUCCESS
}

fn cmd_run(args: &Args, scale: Scale) -> ExitCode {
    let (set, ids) = match build_set(args, scale, &["fig4", "fig5"]) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("chats-run: {e}");
            return ExitCode::from(2);
        }
    };
    if set.is_empty() {
        eprintln!("chats-run: no jobs match");
        return ExitCode::from(2);
    }
    let defaults = RunnerConfig::default();
    let cfg = RunnerConfig {
        jobs: args.jobs.unwrap_or(defaults.jobs),
        use_cache: !args.no_cache,
        cache_dir: args.cache_dir.clone().unwrap_or_else(default_cache_dir),
        timeout: args
            .timeout_secs
            .map_or(defaults.timeout, Duration::from_secs),
        max_attempts: args.retries.map_or(defaults.max_attempts, |r| r + 1),
        verify_determinism: args.verify_determinism,
        checkpoint_every: args.checkpoint_every,
        resume: args.resume,
        quiet: args.quiet,
    };
    if cfg.resume && cfg.checkpoint_every.is_none() {
        eprintln!("chats-run: --resume needs --checkpoint-every");
        return ExitCode::from(2);
    }
    if cfg.checkpoint_every == Some(0) {
        eprintln!("chats-run: --checkpoint-every must be positive");
        return ExitCode::from(2);
    }
    if !cfg.quiet {
        eprintln!(
            "chats-run: {} jobs ({}, {} scale) on {} workers",
            set.len(),
            ids.join("+"),
            scale.label(),
            cfg.jobs.clamp(1, set.len())
        );
    }
    let runner = Runner::new(cfg);
    let report = runner.run_set(&set);
    println!("{}", summary_table(&report));
    let profile_json = match &args.profile {
        Some(needle) => match build_profile(&set, needle) {
            Ok(json) => Some(json),
            Err(e) => {
                eprintln!("chats-run: profile: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let runs_dir = args.runs_dir.clone().unwrap_or_else(default_runs_dir);
    match write_manifest_with_profile(
        &report,
        &ids,
        scale.label(),
        &runs_dir,
        profile_json.as_deref(),
    ) {
        Ok(info) => {
            println!("manifest: {}", info.path.display());
            if let Some(p) = &info.profile {
                println!("profile:  {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("chats-run: could not write manifest: {e}");
            return ExitCode::FAILURE;
        }
    }
    for record in &report.records {
        if let Some(err) = record.outcome.error() {
            eprintln!(
                "chats-run: {}: {} ({err})",
                record.label,
                record.outcome.label()
            );
        }
    }
    if report.all_succeeded() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Re-runs the job whose label matches `needle` (exactly, else by
/// substring) with a trace sink attached and digests the timeline into
/// the `profile.json` document. Profiling reruns outside the worker pool
/// on purpose: the traced execution never touches the result cache, so
/// existing cache entries stay valid.
fn build_profile(set: &JobSet, needle: &str) -> Result<String, String> {
    let job = set
        .iter()
        .find(|j| j.label() == needle)
        .or_else(|| set.iter().find(|j| j.label().contains(needle)))
        .ok_or_else(|| format!("no job matches '{needle}'"))?;
    let workload = registry::by_name(&job.workload)
        .ok_or_else(|| format!("unknown workload '{}'", job.workload))?;
    let (out, sink) = run_workload_traced(
        workload.as_ref(),
        job.policy,
        &job.config,
        Box::new(VecSink::new()),
    )?;
    let events = VecSink::into_events(sink);
    let tl = Timeline::rebuild(&events, out.stats.cycles);
    let meta = ProfileMeta {
        workload: job.workload.clone(),
        system: job.policy.system.label().to_string(),
        threads: job.config.threads,
        seed: job.config.seed,
    };
    Ok(profile_value(&tl, &meta).to_json())
}

fn cmd_clean(args: &Args) -> ExitCode {
    let cache = DiskCache::new(args.cache_dir.clone().unwrap_or_else(default_cache_dir));
    match cache.clean() {
        Ok(n) => println!("removed {n} cache entries from {}", cache.dir().display()),
        Err(e) => {
            eprintln!("chats-run: cache clean failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if args.clean_runs {
        let runs = DiskCache::new(args.runs_dir.clone().unwrap_or_else(default_runs_dir));
        match runs.clean() {
            Ok(n) => println!("removed {n} manifests from {}", runs.dir().display()),
            Err(e) => {
                eprintln!("chats-run: manifest clean failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
