//! Simulation-core bit-identity acceptance test.
//!
//! The hot path of the simulator (event queue, hot-map hashing, dispatch)
//! is fair game for performance work **only** as long as schedules,
//! traces and manifests stay bit-identical. This test pins that down: one
//! paper-config CHATS run and one `--faults lossy-noc` run are traced to
//! JSONL and pushed through the runner pool, and the resulting bytes are
//! hashed against committed goldens. Any engine change that moves a
//! single event is caught here before it can silently skew every figure.
//!
//! Regenerate after an *intentional* timing-model change with:
//!
//! ```text
//! CHATS_UPDATE_GOLDEN=1 cargo test -p chats-runner --test bit_identity
//! ```

use chats_core::{HtmSystem, PolicyConfig};
use chats_machine::FaultPlan;
use chats_obs::JsonlSink;
use chats_runner::hash::fnv1a_64;
use chats_runner::manifest::canonical_manifest;
use chats_runner::{JobSet, JobSpec, Runner, RunnerConfig};
use chats_workloads::{registry, run_workload_traced, RunConfig};
use std::fs;
use std::path::PathBuf;

/// The paper's 16-core hardware with a cycle budget generous enough for
/// the faulted run. Everything else (seed, tuning) is the stock paper
/// configuration, so this exercises the exact machine the figures use.
fn paper_cfg() -> RunConfig {
    RunConfig::paper()
}

fn faulted_cfg() -> RunConfig {
    paper_cfg().with_faults(FaultPlan::lossy_noc())
}

/// Runs `cadd` under CHATS with `cfg`, streaming the protocol trace as
/// JSONL into a temp file, and returns (trace-bytes FNV, cycles, events).
fn traced_run(tag: &str, cfg: &RunConfig) -> (u64, u64, u64) {
    let path = std::env::temp_dir().join(format!(
        "chats-bit-identity-{tag}-{}.jsonl",
        std::process::id()
    ));
    let _ = fs::remove_file(&path);
    let sink = JsonlSink::create(&path).expect("create trace file");
    let w = registry::by_name("cadd").expect("cadd registered");
    let (out, _sink) = run_workload_traced(
        w.as_ref(),
        PolicyConfig::for_system(HtmSystem::Chats),
        cfg,
        Box::new(sink),
    )
    .expect("paper-config cadd run completes");
    let bytes = fs::read(&path).expect("trace file readable");
    let _ = fs::remove_file(&path);
    assert!(!bytes.is_empty(), "trace must not be empty");
    (fnv1a_64(&bytes), out.stats.cycles, out.stats.events)
}

/// Runs both jobs through the worker pool (cache off) and canonicalizes
/// the manifest.
fn pooled_manifest() -> String {
    let mut set = JobSet::new();
    set.push(JobSpec::new(
        "cadd",
        PolicyConfig::for_system(HtmSystem::Chats),
        paper_cfg(),
    ));
    set.push(JobSpec::new(
        "cadd",
        PolicyConfig::for_system(HtmSystem::Chats),
        faulted_cfg(),
    ));
    let runner = Runner::new(RunnerConfig {
        jobs: 2,
        use_cache: false,
        quiet: true,
        ..RunnerConfig::default()
    });
    let report = runner.run_set(&set);
    assert!(report.all_succeeded(), "both identity jobs must succeed");
    canonical_manifest(&report, &["simcore-bit-identity".to_string()], "paper")
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
        .join("simcore_identity.txt")
}

#[test]
fn simcore_traces_and_manifests_match_goldens() {
    let (clean_hash, clean_cycles, clean_events) = traced_run("clean", &paper_cfg());
    let (fault_hash, fault_cycles, fault_events) = traced_run("lossy", &faulted_cfg());
    let manifest = pooled_manifest();
    let manifest_hash = fnv1a_64(manifest.as_bytes());

    let actual = format!(
        "trace_clean_fnv={clean_hash:016x}\n\
         clean_cycles={clean_cycles}\n\
         clean_events={clean_events}\n\
         trace_lossy_noc_fnv={fault_hash:016x}\n\
         lossy_noc_cycles={fault_cycles}\n\
         lossy_noc_events={fault_events}\n\
         manifest_fnv={manifest_hash:016x}\n"
    );

    let path = golden_path();
    if std::env::var_os("CHATS_UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &actual).unwrap();
        eprintln!("bit_identity: golden rewritten at {}", path.display());
        return;
    }
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with CHATS_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        golden, actual,
        "simulation-core bytes diverged from the committed goldens — the \
         hot path is no longer schedule-preserving (or an intentional \
         timing change needs CHATS_UPDATE_GOLDEN=1)"
    );
}
