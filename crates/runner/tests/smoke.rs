//! End-to-end smoke test of the `chats-run` CLI: submit → execute →
//! cache → manifest, twice, against throwaway cache/manifest
//! directories.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chats-run-smoke-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn chats_run(root: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_chats-run"))
        .args(args)
        .args(["--cache-dir"])
        .arg(root.join("cache"))
        .args(["--runs-dir"])
        .arg(root.join("runs"))
        .output()
        .expect("spawn chats-run")
}

/// The one-job smoke sweep CI runs: the cheapest workload under CHATS at
/// quick-test scale, executed, then served from cache, with a manifest
/// and a summary for both invocations.
#[test]
fn smoke_run_executes_then_caches_and_writes_manifests() {
    let root = temp_root("run");
    let args = [
        "run", "chains", "--smoke", "--filter", "cadd/", "--jobs", "2",
    ];

    let first = chats_run(&root, &args);
    let stdout = String::from_utf8_lossy(&first.stdout);
    let stderr = String::from_utf8_lossy(&first.stderr);
    assert!(
        first.status.success(),
        "first run failed:\n{stdout}\n{stderr}"
    );
    assert!(stdout.contains("manifest:"), "{stdout}");
    assert!(stderr.contains("executed"), "{stderr}");

    let second = chats_run(&root, &args);
    let stdout2 = String::from_utf8_lossy(&second.stdout);
    let stderr2 = String::from_utf8_lossy(&second.stderr);
    assert!(
        second.status.success(),
        "second run failed:\n{stdout2}\n{stderr2}"
    );
    assert!(stderr2.contains("cached"), "{stderr2}");
    assert!(stdout2.contains("cache hit rate"), "{stdout2}");
    assert!(
        stdout2.contains("100%"),
        "second run must be fully cached:\n{stdout2}"
    );

    // Two manifests, each valid JSON with the expected skeleton.
    let manifests: Vec<_> = fs::read_dir(root.join("runs")).unwrap().collect();
    assert_eq!(manifests.len(), 2);
    for entry in manifests {
        let text = fs::read_to_string(entry.unwrap().path()).unwrap();
        let doc = chats_runner::Json::parse(&text).unwrap();
        assert_eq!(
            doc.get("scale").and_then(chats_runner::Json::as_str),
            Some("quick")
        );
        let jobs = doc.get("jobs").expect("jobs section");
        assert_eq!(
            jobs.get("total").and_then(chats_runner::Json::as_u64),
            Some(1)
        );
        assert!(doc
            .get("per_job")
            .and_then(chats_runner::Json::as_arr)
            .is_some());
        assert!(doc
            .get("speedup")
            .and_then(chats_runner::Json::as_f64)
            .is_some());
    }

    // Exactly one cache entry was produced for the one job.
    let entries: Vec<_> = fs::read_dir(root.join("cache")).unwrap().collect();
    assert_eq!(entries.len(), 1);

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn smoke_list_names_jobs_without_running() {
    let root = temp_root("list");
    let out = chats_run(&root, &["list", "chains", "--smoke", "--filter", "cadd/"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("cadd/chats"), "{stdout}");
    assert!(stdout.contains("1 unique jobs"), "{stdout}");
    // Listing must not create cache entries.
    assert!(!root.join("cache").exists());
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn smoke_clean_empties_the_cache() {
    let root = temp_root("clean");
    let run = chats_run(
        &root,
        &["run", "chains", "--smoke", "--filter", "cadd/", "--quiet"],
    );
    assert!(run.status.success());
    assert_eq!(fs::read_dir(root.join("cache")).unwrap().count(), 1);

    let clean = chats_run(&root, &["clean"]);
    let stdout = String::from_utf8_lossy(&clean.stdout);
    assert!(clean.status.success(), "{stdout}");
    assert!(stdout.contains("removed 1 cache entries"), "{stdout}");
    assert_eq!(fs::read_dir(root.join("cache")).unwrap().count(), 0);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn unknown_set_and_empty_filter_fail_cleanly() {
    let root = temp_root("errors");
    let bad_set = chats_run(&root, &["run", "fig2", "--smoke"]);
    assert_eq!(bad_set.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad_set.stderr).contains("unknown experiment set"));

    let no_match = chats_run(
        &root,
        &["run", "chains", "--smoke", "--filter", "no-such-workload"],
    );
    assert_eq!(no_match.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&no_match.stderr).contains("no jobs match"));
    let _ = fs::remove_dir_all(&root);
}
