//! Fault-plan determinism: an identical (seed, plan, workload) triple
//! must yield byte-identical trace streams across two runs, and identical
//! per-job results and (canonicalized) manifests whether the worker pool
//! runs with `--jobs 1` or `--jobs N`.

use chats_core::{HtmSystem, PolicyConfig};
use chats_obs::VecSink;
use chats_runner::hash::fnv1a_64;
use chats_runner::{JobSet, JobSpec, RunReport, Runner, RunnerConfig};
use chats_workloads::{registry, run_workload_traced, FaultPlan, RunConfig};
use proptest::prelude::*;

/// FNV-1a over the rendered event stream: equal hashes mean the two runs
/// emitted byte-identical traces.
fn trace_hash(workload: &str, system: HtmSystem, cfg: &RunConfig) -> (u64, u64) {
    let w = registry::by_name(workload).expect("known workload");
    let (out, sink) = run_workload_traced(
        w.as_ref(),
        PolicyConfig::for_system(system),
        cfg,
        Box::new(VecSink::new()),
    )
    .expect("faulted run must complete");
    let text: String = VecSink::into_events(sink)
        .iter()
        .map(|e| format!("{e}\n"))
        .collect();
    (fnv1a_64(text.as_bytes()), out.stats.cycles)
}

/// Canonicalized manifest rendering (wall-clock fields stripped), shared
/// with the bit-identity golden test.
fn canonical_manifest(report: &RunReport) -> String {
    chats_runner::manifest::canonical_manifest(report, &["prop".to_string()], "quick")
}

fn run_pool(set: &JobSet, jobs: usize) -> RunReport {
    let runner = Runner::new(RunnerConfig {
        jobs,
        use_cache: false,
        quiet: true,
        ..RunnerConfig::default()
    });
    runner.run_set(set)
}

fn shipped_plan(idx: usize) -> FaultPlan {
    let mut plans = FaultPlan::shipped();
    plans.remove(idx % plans.len())
}

proptest! {
    // Each case runs five full simulations; a handful of cases per plan
    // already covers the determinism claim.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn faulted_runs_are_bit_deterministic(
        seed in any::<u64>(),
        plan_idx in 0usize..3,
        system in prop_oneof![
            Just(HtmSystem::Chats),
            Just(HtmSystem::Pchats),
            Just(HtmSystem::Power),
        ],
    ) {
        let plan = shipped_plan(plan_idx);
        let mut cfg = RunConfig::quick_test().with_faults(plan.clone());
        cfg.seed = seed;

        // Two traced runs emit byte-identical event streams.
        let a = trace_hash("cadd", system, &cfg);
        let b = trace_hash("cadd", system, &cfg);
        prop_assert_eq!(a, b, "plan {} seed {}", plan.name, seed);

        // The pool yields identical per-job results and canonicalized
        // manifests at 1 worker, 1 worker again, and 4 workers.
        let mut set = JobSet::new();
        for sys in [HtmSystem::Chats, HtmSystem::Pchats, HtmSystem::Power] {
            set.push(JobSpec::new("cadd", PolicyConfig::for_system(sys), cfg.clone()));
        }
        let serial = run_pool(&set, 1);
        let again = run_pool(&set, 1);
        let wide = run_pool(&set, 4);
        for spec in set.iter() {
            let s = serial.stats_for(spec).expect("job ran");
            prop_assert_eq!(Some(s), again.stats_for(spec));
            prop_assert_eq!(Some(s), wide.stats_for(spec));
        }
        let canon = canonical_manifest(&serial);
        prop_assert_eq!(&canon, &canonical_manifest(&again));
        prop_assert_eq!(&canon, &canonical_manifest(&wide));
    }
}
