//! Checkpoint/restore round-trip identity and commitment invariance.
//!
//! The robustness contract: a run that pauses, snapshots, restores into a
//! *fresh* machine and continues must be byte-for-byte the run that never
//! paused — clean and under an active fault plan — and the epoch
//! commitment chain a job records must not depend on how many pool
//! workers ran it or whether a trace sink was attached.

use chats_core::{HtmSystem, PolicyConfig};
use chats_machine::{EpochCommitment, RunProgress};
use chats_obs::VecSink;
use chats_runner::{checkpoint_dir, JobSet, JobSpec, Runner, RunnerConfig};
use chats_workloads::{prepare_run, registry, FaultPlan, PreparedRun, RunConfig};
use proptest::prelude::*;

const STRIDE: u64 = 256;
/// A later boundary where both the golden and the round-tripped machine
/// snapshot for the byte-for-byte comparison.
const MEET: u64 = 1024;

/// Drives `m` to completion in `STRIDE`-sized hops starting at
/// `next_pause`, returning the final statistics.
fn finish(
    m: &mut chats_machine::Machine,
    mut next_pause: u64,
    max_cycles: u64,
) -> chats_stats::RunStats {
    loop {
        match m.run_to(next_pause, max_cycles).expect("run completes") {
            RunProgress::Done(stats) => return stats,
            RunProgress::Paused { at } => next_pause = at + STRIDE,
        }
    }
}

/// One uninterrupted run with commitments armed: the snapshot bytes at
/// the `MEET` boundary, the final statistics and the full chain.
fn golden(cfg: &RunConfig) -> (Vec<u8>, chats_stats::RunStats, Vec<EpochCommitment>) {
    let w = registry::by_name("cadd").expect("known workload");
    let PreparedRun { mut machine, .. } =
        prepare_run(w.as_ref(), PolicyConfig::for_system(HtmSystem::Chats), cfg);
    machine.set_commit_interval(STRIDE);
    match machine.run_to(MEET, cfg.max_cycles).expect("reaches MEET") {
        RunProgress::Paused { at } => assert_eq!(at, MEET),
        RunProgress::Done(_) => panic!("workload too short to exercise the round trip"),
    }
    let bytes = machine.checkpoint();
    let stats = finish(&mut machine, MEET + STRIDE, cfg.max_cycles);
    (bytes, stats, machine.commitment_chain().to_vec())
}

/// Pause at the first stride, snapshot, restore into a *fresh* machine,
/// and assert the continued run is byte-for-byte the golden one.
fn round_trip(cfg: &RunConfig, tag: &str) {
    let (golden_bytes, golden_stats, golden_chain) = golden(cfg);

    let w = registry::by_name("cadd").expect("known workload");
    let policy = PolicyConfig::for_system(HtmSystem::Chats);
    let PreparedRun { mut machine, .. } = prepare_run(w.as_ref(), policy, cfg);
    machine.set_commit_interval(STRIDE);
    match machine
        .run_to(STRIDE, cfg.max_cycles)
        .expect("reaches STRIDE")
    {
        RunProgress::Paused { at } => assert_eq!(at, STRIDE),
        RunProgress::Done(_) => panic!("workload finished inside one stride"),
    }
    let snapshot = machine.checkpoint();
    drop(machine);

    // A brand-new machine: nothing survives except the snapshot bytes.
    let PreparedRun { mut machine, .. } = prepare_run(w.as_ref(), policy, cfg);
    machine.restore(&snapshot).expect("snapshot restores");
    let state = machine.state_commitment();
    let last = *machine.commitment_chain().last().expect("chain restored");
    assert_eq!(
        state.full, last.full,
        "{tag}: restored state must hash to the chain entry at the boundary"
    );

    match machine.run_to(MEET, cfg.max_cycles).expect("reaches MEET") {
        RunProgress::Paused { at } => assert_eq!(at, MEET),
        RunProgress::Done(_) => panic!("workload finished before MEET"),
    }
    assert_eq!(
        machine.checkpoint(),
        golden_bytes,
        "{tag}: the restored run must be byte-for-byte the uninterrupted run at cycle {MEET}"
    );
    let stats = finish(&mut machine, MEET + STRIDE, cfg.max_cycles);
    assert_eq!(stats, golden_stats, "{tag}: final statistics must match");
    assert_eq!(
        machine.commitment_chain(),
        &golden_chain[..],
        "{tag}: the commitment chain must not notice the interruption"
    );
}

#[test]
fn clean_round_trip_is_byte_identical() {
    round_trip(&RunConfig::quick_test(), "clean");
}

#[test]
fn round_trip_under_lossy_noc_is_byte_identical() {
    // The fault injector's own state (schedule position, counters) rides
    // in the snapshot's env sections, so restore resumes the *faulted*
    // run bit-exactly — not a clean run from the same cycle.
    let cfg = RunConfig::quick_test().with_faults(FaultPlan::lossy_noc());
    round_trip(&cfg, "lossy-noc");
}

/// The commitment chain of one machine run, with or without a sink.
fn chain_with_sink(cfg: &RunConfig, traced: bool) -> Vec<EpochCommitment> {
    let w = registry::by_name("cadd").expect("known workload");
    let PreparedRun { mut machine, .. } =
        prepare_run(w.as_ref(), PolicyConfig::for_system(HtmSystem::Chats), cfg);
    machine.set_commit_interval(STRIDE);
    if traced {
        machine.set_trace_sink(Box::new(VecSink::new()));
    }
    machine.run(cfg.max_cycles).expect("run completes");
    machine.commitment_chain().to_vec()
}

/// Commitment chains recorded by the pool at a worker count.
fn pool_chains(
    set: &JobSet,
    jobs: usize,
    dir: &std::path::Path,
) -> Vec<Option<Vec<EpochCommitment>>> {
    let runner = Runner::new(RunnerConfig {
        jobs,
        use_cache: false,
        cache_dir: dir.to_path_buf(),
        checkpoint_every: Some(STRIDE),
        quiet: true,
        ..RunnerConfig::default()
    });
    let report = runner.run_set(set);
    report
        .records
        .iter()
        .map(|r| r.commit.as_ref().map(|c| c.chain.clone()))
        .collect()
}

proptest! {
    // Each case is several full simulations; a few cases per dimension
    // cover the invariance claim.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn commitments_are_invariant_to_workers_and_tracing(
        seed in any::<u64>(),
        faulted in any::<bool>(),
    ) {
        let mut cfg = RunConfig::quick_test();
        cfg.seed = seed;
        if faulted {
            cfg = cfg.with_faults(FaultPlan::lossy_noc());
        }

        // A trace sink must be invisible to the commitment chain.
        let silent = chain_with_sink(&cfg, false);
        let traced = chain_with_sink(&cfg, true);
        prop_assert!(!silent.is_empty(), "armed run must record epochs");
        prop_assert_eq!(&silent, &traced, "trace sink leaked into the state hash");

        // The pool must record the same chain at 1 worker and 4 workers,
        // and it must be the chain the machine computes directly.
        let mut set = JobSet::new();
        for sys in [HtmSystem::Chats, HtmSystem::Baseline] {
            set.push(JobSpec::new("cadd", PolicyConfig::for_system(sys), cfg.clone()));
        }
        let dir = std::env::temp_dir().join(format!(
            "chats-ckpt-prop-{}-{seed:x}",
            std::process::id()
        ));
        let serial = pool_chains(&set, 1, &dir);
        let wide = pool_chains(&set, 4, &dir);
        prop_assert_eq!(&serial, &wide, "worker count leaked into the chain");
        prop_assert_eq!(
            serial[0].as_deref(),
            Some(&silent[..]),
            "pool chain disagrees with a direct machine run"
        );
        // Finished jobs must not leave checkpoint sidecars behind.
        for spec in set.iter() {
            let sidecar = checkpoint_dir(&dir).join(format!("{}.ckpt", spec.id()));
            prop_assert!(!sidecar.exists(), "sidecar left after success");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
