//! Disk-cache behaviour: hits, misses, invalidation on configuration and
//! crate-version change, and graceful fallback on corruption.

use chats_core::{HtmSystem, PolicyConfig};
use chats_runner::{DiskCache, JobSet, JobSpec, Runner, RunnerConfig, Scale};
use std::fs;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chats-cache-test-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn spec() -> JobSpec {
    JobSpec::new(
        "cadd",
        PolicyConfig::for_system(HtmSystem::Baseline),
        Scale::Quick.run_config(),
    )
}

fn runner(dir: &Path) -> Runner {
    Runner::new(RunnerConfig {
        jobs: 1,
        cache_dir: dir.to_path_buf(),
        quiet: true,
        ..RunnerConfig::default()
    })
}

/// Fresh runners share nothing in memory, so the second one exercises
/// the disk path.
#[test]
fn second_runner_hits_the_disk_cache() {
    let dir = temp_dir("hit");
    let set: JobSet = [spec()].into_iter().collect();

    let first = runner(&dir).run_set(&set);
    assert_eq!(first.count("executed"), 1);

    let second = runner(&dir).run_set(&set);
    assert_eq!(second.count("cached"), 1);
    assert_eq!(second.count("executed"), 0);
    assert_eq!(
        first.stats_for(&spec()).unwrap(),
        second.stats_for(&spec()).unwrap(),
        "cache round-trip must be bit-identical"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Any config change is a different job id, hence a miss.
#[test]
fn config_change_misses() {
    let dir = temp_dir("config");
    let _ = runner(&dir).run_set(&[spec()].into_iter().collect());

    let mut reseeded = spec();
    reseeded.config.seed ^= 1;
    assert_ne!(spec().id(), reseeded.id());
    let report = runner(&dir).run_set(&[reseeded].into_iter().collect());
    assert_eq!(report.count("executed"), 1, "changed seed must re-execute");
    let _ = fs::remove_dir_all(&dir);
}

/// An entry written by a different simulator release is discarded.
#[test]
fn crate_version_change_invalidates() {
    let dir = temp_dir("version");
    let _ = runner(&dir).run_set(&[spec()].into_iter().collect());

    let cache = DiskCache::new(dir.clone());
    let path = cache.path_for(&spec());
    let entry = fs::read_to_string(&path).unwrap();
    let doctored = entry.replace(chats_runner::CACHE_VERSION, "0.0.0-older");
    assert_ne!(entry, doctored, "version string must appear in the entry");
    fs::write(&path, doctored).unwrap();

    assert!(
        cache.load(&spec()).is_none(),
        "stale-version entry must miss"
    );
    assert!(!path.exists(), "stale entry must be deleted");
    let report = runner(&dir).run_set(&[spec()].into_iter().collect());
    assert_eq!(report.count("executed"), 1);
    let _ = fs::remove_dir_all(&dir);
}

/// A corrupted entry is discarded with a warning and the job re-executes.
#[test]
fn corruption_falls_back_to_execution() {
    let dir = temp_dir("corrupt");
    let baseline = runner(&dir).run_set(&[spec()].into_iter().collect());
    let good = baseline.stats_for(&spec()).unwrap().clone();

    let cache = DiskCache::new(dir.clone());
    let path = cache.path_for(&spec());
    for garbage in ["", "{not json", "{\"crate_version\": 7}", "[1,2,3]"] {
        fs::write(&path, garbage).unwrap();
        let report = runner(&dir).run_set(&[spec()].into_iter().collect());
        assert_eq!(
            report.count("executed"),
            1,
            "garbage {garbage:?} must re-execute"
        );
        assert_eq!(report.stats_for(&spec()).unwrap(), &good);
        // The re-execution rewrote a valid entry.
        assert!(cache.load(&spec()).is_some());
    }
    let _ = fs::remove_dir_all(&dir);
}

/// A truncated stats payload (valid JSON, missing counters) is also a miss.
#[test]
fn missing_stats_fields_invalidate() {
    let dir = temp_dir("fields");
    let _ = runner(&dir).run_set(&[spec()].into_iter().collect());

    let cache = DiskCache::new(dir.clone());
    let path = cache.path_for(&spec());
    let entry = fs::read_to_string(&path).unwrap();
    let doctored = entry.replace("\"cycles\"", "\"cycles_renamed\"");
    assert_ne!(entry, doctored);
    fs::write(&path, doctored).unwrap();
    assert!(cache.load(&spec()).is_none());
    let _ = fs::remove_dir_all(&dir);
}

/// `--no-cache` neither reads nor writes entries.
#[test]
fn no_cache_mode_touches_nothing() {
    let dir = temp_dir("nocache");
    let r = Runner::new(RunnerConfig {
        jobs: 1,
        use_cache: false,
        cache_dir: dir.clone(),
        quiet: true,
        ..RunnerConfig::default()
    });
    let report = r.run_set(&[spec()].into_iter().collect());
    assert_eq!(report.count("executed"), 1);
    assert!(!dir.exists(), "no-cache run must not create the cache dir");
}
