//! The determinism gate: the same job must produce bit-identical
//! statistics regardless of worker-pool parallelism, and the runner's
//! built-in verify mode must agree.

use chats_core::{HtmSystem, PolicyConfig};
use chats_runner::{JobSet, JobSpec, Runner, RunnerConfig, Scale};

fn quick_jobs() -> Vec<JobSpec> {
    let cfg = Scale::Quick.run_config();
    ["cadd", "llb-l"]
        .into_iter()
        .flat_map(|wl| {
            let cfg = cfg.clone();
            [HtmSystem::Baseline, HtmSystem::Chats]
                .into_iter()
                .map(move |sys| JobSpec::new(wl, PolicyConfig::for_system(sys), cfg.clone()))
        })
        .collect()
}

fn runner(jobs: usize, verify: bool) -> Runner {
    Runner::new(RunnerConfig {
        jobs,
        use_cache: false, // force real execution in every runner
        verify_determinism: verify,
        quiet: true,
        ..RunnerConfig::default()
    })
}

#[test]
fn stats_are_bit_identical_across_parallelism() {
    let specs = quick_jobs();
    let set1: JobSet = specs.iter().cloned().collect();
    let set8: JobSet = specs.iter().cloned().collect();

    let serial = runner(1, false).run_set(&set1);
    let parallel = runner(8, false).run_set(&set8);
    assert!(serial.all_succeeded(), "serial run failed");
    assert!(parallel.all_succeeded(), "parallel run failed");
    assert_eq!(serial.workers, 1);
    assert!(parallel.workers > 1, "pool must actually parallelize");

    for spec in &specs {
        let a = serial.stats_for(spec).expect("serial result");
        let b = parallel.stats_for(spec).expect("parallel result");
        // RunStats is Eq: every counter, map and histogram must match.
        assert_eq!(
            a,
            b,
            "{} diverged between --jobs 1 and --jobs 8",
            spec.label()
        );
    }
}

#[test]
fn verify_determinism_gate_passes_on_a_real_job() {
    let specs = quick_jobs();
    let set: JobSet = specs[..1].iter().cloned().collect();
    let report = runner(2, true).run_set(&set);
    assert!(report.all_succeeded(), "gate flagged a deterministic job");
    assert_eq!(report.count("executed"), 1);
    // The verification re-run counts as an attempt in the record.
    assert_eq!(report.records[0].attempts, 2);
}
