//! Determinism of the evm workload family: an identical (scenario, seed)
//! pair must yield byte-identical trace streams run-to-run, seeds must be
//! replayable (and actually matter), and the worker pool must produce
//! identical per-job results and canonicalized manifests whether it runs
//! with `--jobs 1` or `--jobs 4`. Mirrors the fault-plan determinism
//! proptest for the smart-contract frontier.

use chats_core::{HtmSystem, PolicyConfig};
use chats_obs::VecSink;
use chats_runner::hash::fnv1a_64;
use chats_runner::{JobSet, JobSpec, RunReport, Runner, RunnerConfig};
use chats_workloads::kernels::evm::EvmWorkload;
use chats_workloads::{run_workload_traced, RunConfig, Workload};

/// FNV-1a over the rendered event stream plus the final cycle count:
/// equal pairs mean byte-identical traces.
fn trace_hash(w: &dyn Workload, system: HtmSystem, cfg: &RunConfig) -> (u64, u64) {
    let (out, sink) = run_workload_traced(
        w,
        PolicyConfig::for_system(system),
        cfg,
        Box::new(VecSink::new()),
    )
    .expect("evm run must complete");
    let text: String = VecSink::into_events(sink)
        .iter()
        .map(|e| format!("{e}\n"))
        .collect();
    (fnv1a_64(text.as_bytes()), out.stats.cycles)
}

fn run_pool(set: &JobSet, jobs: usize) -> RunReport {
    let runner = Runner::new(RunnerConfig {
        jobs,
        use_cache: false,
        quiet: true,
        ..RunnerConfig::default()
    });
    runner.run_set(set)
}

fn scaled(w: EvmWorkload) -> EvmWorkload {
    w.with_txs_per_thread(60)
}

#[test]
fn evm_traces_are_byte_identical_run_to_run() {
    let cfg = RunConfig::quick_test();
    for w in [
        scaled(EvmWorkload::transfers()),
        scaled(EvmWorkload::token_storm()),
        scaled(EvmWorkload::dex()),
    ] {
        for system in [HtmSystem::Chats, HtmSystem::Pchats] {
            let a = trace_hash(&w, system, &cfg);
            let b = trace_hash(&w, system, &cfg);
            assert_eq!(a, b, "{} under {system:?}", w.name());
        }
    }
}

#[test]
fn evm_seeds_are_replayable_and_distinct() {
    let w = scaled(EvmWorkload::token_storm());
    let mut cfg = RunConfig::quick_test();
    cfg.seed = 0xDEC0DE;
    let first = trace_hash(&w, HtmSystem::Chats, &cfg);
    // Replaying the seed reproduces the run exactly.
    assert_eq!(first, trace_hash(&w, HtmSystem::Chats, &cfg));
    // A different seed draws a different transaction stream.
    let mut other = cfg.clone();
    other.seed ^= 1;
    assert_ne!(first.0, trace_hash(&w, HtmSystem::Chats, &other).0);
}

#[test]
fn evm_pool_results_match_across_worker_counts() {
    // Full-size scenario (resolved by registry name, as `chats-run` would)
    // under three systems; the pool must agree at 1 and 4 workers, job by
    // job and in the canonicalized manifest.
    let cfg = RunConfig::quick_test();
    let mut set = JobSet::new();
    for system in [HtmSystem::Baseline, HtmSystem::Chats, HtmSystem::Pchats] {
        set.push(JobSpec::new(
            "evm-transfers",
            PolicyConfig::for_system(system),
            cfg.clone(),
        ));
    }
    let serial = run_pool(&set, 1);
    let wide = run_pool(&set, 4);
    for spec in set.iter() {
        let s = serial.stats_for(spec).expect("job ran");
        assert!(s.commits > 0, "{}", spec.label());
        assert_eq!(Some(s), wide.stats_for(spec), "{}", spec.label());
    }
    let sets = vec!["evm".to_string()];
    assert_eq!(
        chats_runner::manifest::canonical_manifest(&serial, &sets, "quick"),
        chats_runner::manifest::canonical_manifest(&wide, &sets, "quick"),
    );
}
