//! CHATS vs the baseline HTM on the evm token-storm scenario: a stream
//! of token mints and transfers, Zipf-skewed onto a handful of hot
//! contract lines, where chaining is the difference between serializing
//! on the hot supply word and forwarding through it.
//!
//! ```text
//! cargo run --release -p chats-runner --example token_storm [txs_per_thread]
//! ```
//!
//! Prints, per system, the commit throughput (in simulated time and in
//! host wall clock) and the chain-length histogram reconstructed from
//! the protocol trace.

use chats_core::{HtmSystem, PolicyConfig};
use chats_obs::{Timeline, VecSink};
use chats_stats::Histogram;
use chats_workloads::kernels::evm::EvmWorkload;
use chats_workloads::{run_workload_traced, RunConfig, Workload};

fn main() {
    let txs: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1500);
    let workload = EvmWorkload::token_storm().with_txs_per_thread(txs);
    let cfg = RunConfig::paper();
    println!(
        "{}: {} user transactions ({} threads x {txs}), seed {:#x}",
        workload.name(),
        cfg.threads as u64 * txs,
        cfg.threads,
        cfg.seed
    );

    for system in [HtmSystem::Baseline, HtmSystem::Chats] {
        let t0 = std::time::Instant::now();
        let (out, sink) = run_workload_traced(
            &workload,
            PolicyConfig::for_system(system),
            &cfg,
            Box::new(VecSink::new()),
        )
        .expect("token-storm run completes and conserves balances");
        let wall = t0.elapsed();
        let events = VecSink::into_events(sink);
        let tl = Timeline::rebuild(&events, out.stats.cycles);
        let s = &out.stats;

        println!();
        println!("== {} ==", system.label());
        println!("  cycles            {}", s.cycles);
        println!(
            "  commits           {} ({} aborts)",
            s.commits,
            s.total_aborts()
        );
        println!(
            "  commits/Mcycle    {:.1}",
            s.commits as f64 * 1.0e6 / s.cycles.max(1) as f64
        );
        println!(
            "  user-txns/sec     {:.0} (host wall clock)",
            s.commits as f64 / wall.as_secs_f64().max(1e-9)
        );
        let chains: Histogram = tl
            .chains
            .chain_len_hist
            .iter()
            .map(|(&l, &n)| (l as u64, n))
            .collect();
        if chains.is_empty() {
            println!("  chain lengths     none (no speculative forwarding)");
        } else {
            println!(
                "  chain lengths     {chains} (mean {:.2}, max {})",
                chains.mean().unwrap_or(0.0),
                chains.max().unwrap_or(0)
            );
        }
    }
}
