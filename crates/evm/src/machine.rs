//! The sequential reference interpreter.
//!
//! `Machine<S>` executes contract calls directly over a [`Storage`],
//! metering gas with the same [`GasSchedule`] the compiler uses for its
//! static accounting. Because the op set is straight-line, the
//! interpreter's dynamic gas equals the compiler's static gas exactly,
//! and because both resolve state through the same [`StateLayout`], a
//! sequential `Machine` run is the word-for-word ground truth the
//! differential tests compare concurrent TxVM executions against.

use crate::contract::{ContractBank, ContractId};
use crate::memory::{Memory, SeqMemory};
use crate::ops::{GasSchedule, Op, MAX_CALL_DEPTH, MAX_STACK};
use crate::storage::{StateLayout, Storage};

/// Why a call could not complete. In this model every error is a
/// *submission* error: the compiler performs the same checks statically,
/// so a transaction that lowers successfully cannot fail at runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecutionError {
    /// The call needs more gas than the transaction's limit.
    OutOfGas {
        /// Gas the call consumes.
        needed: u64,
        /// The transaction's gas limit.
        limit: u64,
    },
    /// The operand stack exceeded [`MAX_STACK`].
    StackOverflow,
    /// An op popped from an empty (or too-shallow) stack.
    StackUnderflow,
    /// Call nesting exceeded [`MAX_CALL_DEPTH`].
    CallDepth,
    /// No such contract/function.
    UnknownFunction(ContractId, u8),
    /// `Arg(i)` with `i` at or above the function's arity, or a call
    /// with the wrong argument count.
    BadArg(u8),
}

impl std::fmt::Display for ExecutionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionError::OutOfGas { needed, limit } => {
                write!(f, "out of gas: needs {needed}, limit {limit}")
            }
            ExecutionError::StackOverflow => write!(f, "stack overflow (max {MAX_STACK})"),
            ExecutionError::StackUnderflow => write!(f, "stack underflow"),
            ExecutionError::CallDepth => write!(f, "call depth exceeds {MAX_CALL_DEPTH}"),
            ExecutionError::UnknownFunction(c, fun) => {
                write!(f, "unknown function {fun} of contract {}", c.0)
            }
            ExecutionError::BadArg(i) => write!(f, "argument {i} out of range"),
        }
    }
}

impl std::error::Error for ExecutionError {}

/// Result of a completed call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallOutcome {
    /// The entry function's return value.
    pub ret: u64,
    /// Total gas consumed (call overheads plus every executed op).
    pub gas_used: u64,
}

/// The sequential contract machine.
#[derive(Debug, Clone)]
pub struct Machine<S: Storage> {
    bank: ContractBank,
    layout: StateLayout,
    schedule: GasSchedule,
    storage: S,
}

impl<S: Storage> Machine<S> {
    /// A machine over a deployed bank, layout and backing storage.
    #[must_use]
    pub fn new(bank: ContractBank, layout: StateLayout, storage: S) -> Machine<S> {
        Machine {
            bank,
            layout,
            schedule: GasSchedule::default(),
            storage,
        }
    }

    /// The state layout.
    #[must_use]
    pub fn layout(&self) -> &StateLayout {
        &self.layout
    }

    /// The contract bank.
    #[must_use]
    pub fn bank(&self) -> &ContractBank {
        &self.bank
    }

    /// The backing storage.
    #[must_use]
    pub fn storage(&self) -> &S {
        &self.storage
    }

    /// Consumes the machine, returning its storage.
    #[must_use]
    pub fn into_storage(self) -> S {
        self.storage
    }

    /// A native balance transfer: `balance[from] -= amount`,
    /// `balance[to] += amount` (wrapping, like everything in the model).
    pub fn transfer(&mut self, from: u64, to: u64, amount: u64) {
        let fa = self.layout.account_addr(from);
        let ta = self.layout.account_addr(to);
        let fv = self.storage.sload(fa).wrapping_sub(amount);
        self.storage.sstore(fa, fv);
        let tv = self.storage.sload(ta).wrapping_add(amount);
        self.storage.sstore(ta, tv);
    }

    /// Executes `func` of `contract` on behalf of `caller` with `args`,
    /// within `gas_limit`.
    ///
    /// # Errors
    ///
    /// Any [`ExecutionError`]; storage is left in whatever intermediate
    /// state the call reached (callers treating errors as rejection
    /// should validate first — the compiler's static checks are exactly
    /// this validation).
    pub fn call(
        &mut self,
        caller: u64,
        contract: ContractId,
        func: u8,
        args: &[u64],
        gas_limit: u64,
    ) -> Result<CallOutcome, ExecutionError> {
        let mut gas = GasMeter {
            used: 0,
            limit: gas_limit,
        };
        let ret = self.run_frame(caller, contract, func, args, 1, &mut gas)?;
        Ok(CallOutcome {
            ret,
            gas_used: gas.used,
        })
    }

    fn run_frame(
        &mut self,
        caller: u64,
        contract: ContractId,
        func: u8,
        args: &[u64],
        depth: usize,
        gas: &mut GasMeter,
    ) -> Result<u64, ExecutionError> {
        if depth > MAX_CALL_DEPTH {
            return Err(ExecutionError::CallDepth);
        }
        gas.charge(self.schedule.call)?;
        let f = self
            .bank
            .function(contract, func)
            .ok_or(ExecutionError::UnknownFunction(contract, func))?;
        if args.len() != f.arity as usize {
            return Err(ExecutionError::BadArg(f.arity));
        }
        let ops = f.ops.clone();
        let mut stack: Vec<u64> = Vec::with_capacity(MAX_STACK);
        let mut mem = SeqMemory::new();
        for op in &ops {
            if !matches!(op, Op::Call(..)) {
                gas.charge(self.schedule.cost(op))?;
            }
            match *op {
                Op::Push(v) => push(&mut stack, v)?,
                Op::Pop => {
                    pop(&mut stack)?;
                }
                Op::Dup(n) => {
                    let v = peek(&stack, n)?;
                    push(&mut stack, v)?;
                }
                Op::Swap(n) => {
                    let top = stack
                        .len()
                        .checked_sub(1)
                        .ok_or(ExecutionError::StackUnderflow)?;
                    let other = top
                        .checked_sub(1 + n as usize)
                        .ok_or(ExecutionError::StackUnderflow)?;
                    stack.swap(top, other);
                }
                Op::Add => binop(&mut stack, u64::wrapping_add)?,
                Op::Sub => binop(&mut stack, u64::wrapping_sub)?,
                Op::Mul => binop(&mut stack, u64::wrapping_mul)?,
                Op::Shr(n) => {
                    let a = pop(&mut stack)?;
                    push(&mut stack, a >> n)?;
                }
                Op::And(m) => {
                    let a = pop(&mut stack)?;
                    push(&mut stack, a & m)?;
                }
                Op::Caller => push(&mut stack, caller)?,
                Op::Arg(i) => {
                    let v = *args.get(i as usize).ok_or(ExecutionError::BadArg(i))?;
                    push(&mut stack, v)?;
                }
                Op::MLoad(s) => {
                    let v = mem.mload(s);
                    push(&mut stack, v)?;
                }
                Op::MStore(s) => {
                    let v = pop(&mut stack)?;
                    mem.mstore(s, v);
                }
                Op::SLoad => {
                    let key = pop(&mut stack)?;
                    let v = self.storage.sload(self.layout.slot_addr(contract, key));
                    push(&mut stack, v)?;
                }
                Op::SStore => {
                    let value = pop(&mut stack)?;
                    let key = pop(&mut stack)?;
                    self.storage
                        .sstore(self.layout.slot_addr(contract, key), value);
                }
                Op::Call(callee, cf) => {
                    let arity = self
                        .bank
                        .function(callee, cf)
                        .ok_or(ExecutionError::UnknownFunction(callee, cf))?
                        .arity as usize;
                    if stack.len() < arity {
                        return Err(ExecutionError::StackUnderflow);
                    }
                    let call_args = stack.split_off(stack.len() - arity);
                    let ret = self.run_frame(caller, callee, cf, &call_args, depth + 1, gas)?;
                    push(&mut stack, ret)?;
                }
                Op::Stop => return Ok(stack.last().copied().unwrap_or(0)),
            }
        }
        Ok(stack.last().copied().unwrap_or(0))
    }
}

struct GasMeter {
    used: u64,
    limit: u64,
}

impl GasMeter {
    fn charge(&mut self, cost: u64) -> Result<(), ExecutionError> {
        self.used += cost;
        if self.used > self.limit {
            Err(ExecutionError::OutOfGas {
                needed: self.used,
                limit: self.limit,
            })
        } else {
            Ok(())
        }
    }
}

fn binop(stack: &mut Vec<u64>, f: impl Fn(u64, u64) -> u64) -> Result<(), ExecutionError> {
    let b = pop(stack)?;
    let a = pop(stack)?;
    push(stack, f(a, b))
}

fn push(stack: &mut Vec<u64>, v: u64) -> Result<(), ExecutionError> {
    if stack.len() >= MAX_STACK {
        return Err(ExecutionError::StackOverflow);
    }
    stack.push(v);
    Ok(())
}

fn pop(stack: &mut Vec<u64>) -> Result<u64, ExecutionError> {
    stack.pop().ok_or(ExecutionError::StackUnderflow)
}

fn peek(stack: &[u64], below_top: u8) -> Result<u64, ExecutionError> {
    let i = stack
        .len()
        .checked_sub(1 + below_top as usize)
        .ok_or(ExecutionError::StackUnderflow)?;
    Ok(stack[i])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{dex, token, DEX, TOKEN};
    use crate::ops::TX_GAS_LIMIT;
    use crate::storage::ImageStorage;

    fn machine() -> Machine<ImageStorage> {
        let layout = StateLayout::standard();
        Machine::new(ContractBank::library(&layout), layout, ImageStorage::new())
    }

    fn balance(m: &Machine<ImageStorage>, acct: u64) -> u64 {
        let key = token::BALANCE_BASE_SLOT + (acct & m.layout().account_mask());
        m.storage().sload(m.layout().slot_addr(TOKEN, key))
    }

    #[test]
    fn mint_credits_supply_and_balance() {
        let mut m = machine();
        let out = m
            .call(0, TOKEN, token::MINT, &[7, 100], TX_GAS_LIMIT)
            .unwrap();
        assert!(out.gas_used > 0);
        assert_eq!(balance(&m, 7), 100);
        let supply = m
            .storage()
            .sload(m.layout().slot_addr(TOKEN, token::SUPPLY_SLOT));
        assert_eq!(supply, 100);
    }

    #[test]
    fn transfer_moves_without_creating() {
        let mut m = machine();
        m.call(0, TOKEN, token::MINT, &[3, 50], TX_GAS_LIMIT)
            .unwrap();
        m.call(3, TOKEN, token::TRANSFER, &[4, 20], TX_GAS_LIMIT)
            .unwrap();
        assert_eq!(balance(&m, 3), 30);
        assert_eq!(balance(&m, 4), 20);
    }

    #[test]
    fn balance_of_returns_the_balance() {
        let mut m = machine();
        m.call(0, TOKEN, token::MINT, &[9, 42], TX_GAS_LIMIT)
            .unwrap();
        let out = m
            .call(1, TOKEN, token::BALANCE_OF, &[9], TX_GAS_LIMIT)
            .unwrap();
        assert_eq!(out.ret, 42);
    }

    #[test]
    fn swap_conserves_tokens_and_pays_from_reserve_b() {
        let mut m = machine();
        let dex_acct = ContractBank::dex_account(m.layout());
        m.call(0, TOKEN, token::MINT, &[5, 1000], TX_GAS_LIMIT)
            .unwrap();
        m.call(0, TOKEN, token::MINT, &[dex_acct, 1000], TX_GAS_LIMIT)
            .unwrap();
        m.call(0, DEX, dex::DEPOSIT, &[0, 160], TX_GAS_LIMIT)
            .unwrap();

        let out = m.call(5, DEX, dex::SWAP, &[100], TX_GAS_LIMIT).unwrap();
        assert_eq!(out.ret, 10, "payout is reserve_b >> 4");
        assert_eq!(balance(&m, 5), 1000 - 100 + 10);
        assert_eq!(balance(&m, dex_acct), 1000 + 100 - 10);
        let ra = m
            .storage()
            .sload(m.layout().slot_addr(DEX, dex::RESERVE_A_SLOT));
        let rb = m
            .storage()
            .sload(m.layout().slot_addr(DEX, dex::RESERVE_B_SLOT));
        assert_eq!(ra, 100);
        assert_eq!(rb, 150);
        // Conserved: total supply unchanged by swapping.
        let supply = m
            .storage()
            .sload(m.layout().slot_addr(TOKEN, token::SUPPLY_SLOT));
        assert_eq!(supply, 2000);
        assert_eq!(balance(&m, 5) + balance(&m, dex_acct), 2000);
    }

    #[test]
    fn native_transfer_is_wrapping_and_conserving() {
        let mut m = machine();
        m.transfer(1, 2, 30);
        let l = *m.layout();
        assert_eq!(m.storage().sload(l.account_addr(1)), 0u64.wrapping_sub(30));
        assert_eq!(m.storage().sload(l.account_addr(2)), 30);
        let sum = m
            .storage()
            .sload(l.account_addr(1))
            .wrapping_add(m.storage().sload(l.account_addr(2)));
        assert_eq!(sum, 0);
    }

    #[test]
    fn gas_limit_is_enforced() {
        let mut m = machine();
        let err = m.call(0, TOKEN, token::MINT, &[7, 100], 3).unwrap_err();
        assert!(matches!(err, ExecutionError::OutOfGas { limit: 3, .. }));
    }

    #[test]
    fn unknown_function_is_rejected() {
        let mut m = machine();
        let err = m.call(0, TOKEN, 99, &[], TX_GAS_LIMIT).unwrap_err();
        assert_eq!(err, ExecutionError::UnknownFunction(TOKEN, 99));
    }

    #[test]
    fn wrong_arity_is_rejected() {
        let mut m = machine();
        let err = m
            .call(0, TOKEN, token::MINT, &[7], TX_GAS_LIMIT)
            .unwrap_err();
        assert_eq!(err, ExecutionError::BadArg(2));
    }
}
