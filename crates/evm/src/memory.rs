//! The per-call scratch memory layer.
//!
//! Each call frame gets a fresh, zero-initialised scratch memory of
//! [`MEM_SLOTS`](crate::ops::MEM_SLOTS) word slots, addressed by
//! `MLoad`/`MStore`. It is private to the frame: inlined callees get
//! their own (the compiler dedicates a disjoint register group per call
//! depth), and it vanishes when the call returns — nothing in it is
//! transactional state.

use crate::ops::MEM_SLOTS;

/// Scratch-memory interface, in the sputnikvm layering: the `Machine`
/// drives a `Memory` it does not own the representation of.
pub trait Memory {
    /// Reads slot `slot` (zero if never written).
    fn mload(&self, slot: u8) -> u64;
    /// Writes slot `slot`.
    fn mstore(&mut self, slot: u8, value: u64);
}

/// The reference scratch memory: a fixed array of word slots.
#[derive(Debug, Clone, Default)]
pub struct SeqMemory {
    slots: [u64; MEM_SLOTS],
}

impl SeqMemory {
    /// A fresh, zeroed scratch memory.
    #[must_use]
    pub fn new() -> SeqMemory {
        SeqMemory::default()
    }
}

impl Memory for SeqMemory {
    fn mload(&self, slot: u8) -> u64 {
        self.slots[slot as usize]
    }

    fn mstore(&mut self, slot: u8, value: u64) {
        self.slots[slot as usize] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_memory_is_zero() {
        let m = SeqMemory::new();
        for s in 0..MEM_SLOTS as u8 {
            assert_eq!(m.mload(s), 0);
        }
    }

    #[test]
    fn store_then_load_round_trips() {
        let mut m = SeqMemory::new();
        m.mstore(1, 0xFEED);
        assert_eq!(m.mload(1), 0xFEED);
        assert_eq!(m.mload(0), 0);
    }
}
