//! Deterministic scenario generators: user-transaction streams compiled
//! to per-thread TxVM programs.
//!
//! A scenario is a fixed, seed-derived stream of [`Txn`]s per thread.
//! The host packs each transaction's parameters into **one word** of a
//! per-thread parameter table; the emitted driver program loads the next
//! word with a *plain* (non-transactional) load, unpacks it, and then
//! runs the whole user transaction — native transfer or inlined contract
//! call — between one `tx_begin`/`tx_end` pair. Because the parameters
//! come from the table rather than in-transaction randomness, an aborted
//! transaction retries *the same* user transaction, and the committed
//! stream is exactly the host-side [`Txn`] list — which is what makes a
//! sequential replay of that list a word-for-word ground truth for the
//! commutative scenarios.
//!
//! The three generators, in increasing contention sophistication:
//!
//! * [`ScenarioKind::Transfers`] — pairwise native transfers, uniform
//!   account draws: classic low-order conflicts.
//! * [`ScenarioKind::TokenStorm`] — token mints and transfers against
//!   one hot contract, account draws Zipf-skewed (rank-1 weighting, so
//!   account 0 is the hottest line): the supply word and the popular
//!   balances become exactly the hot-line chain stress CHATS forwards
//!   through.
//! * [`ScenarioKind::Dex`] — swaps through the dex (nested
//!   `transfer_from` calls, two hot reserve words) mixed with background
//!   token transfers: read-modify-write flows with order-dependent
//!   payouts, checked by conservation sums instead of exact state.

use crate::compile::Lowerer;
use crate::contract::{dex, token, ContractBank, DEX, TOKEN};
use crate::machine::Machine;
use crate::ops::TX_GAS_LIMIT;
use crate::storage::{ImageStorage, StateLayout, Storage};
use crate::txn::{execute_txn, Txn};
use chats_mem::{Addr, WORDS_PER_LINE};
use chats_sim::SimRng;
use chats_tvm::{Program, ProgramBuilder, Reg};

/// The scenario families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Pairwise native balance transfers, uniform accounts.
    Transfers,
    /// Hot-contract token mint/transfer storm, Zipf-skewed accounts.
    TokenStorm,
    /// Dex swaps (nested calls, hot reserves) over background transfers.
    Dex,
}

impl ScenarioKind {
    /// Registry name of the scenario.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Transfers => "transfers",
            ScenarioKind::TokenStorm => "token-storm",
            ScenarioKind::Dex => "dex",
        }
    }

    /// All scenario kinds.
    pub const ALL: [ScenarioKind; 3] = [
        ScenarioKind::Transfers,
        ScenarioKind::TokenStorm,
        ScenarioKind::Dex,
    ];
}

/// One thread's compiled program.
#[derive(Debug, Clone)]
pub struct EvmProgram {
    /// The driver bytecode (identical across threads; presets differ).
    pub program: Program,
    /// Register presets (thread id, parameter-table base).
    pub presets: Vec<(Reg, u64)>,
    /// The thread VM's random seed (unused by the drivers — parameters
    /// come from the table — but kept distinct per thread).
    pub seed: u64,
}

/// A named line region of the scenario's memory footprint, for
/// per-contract attribution in observability reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Region name (`accounts`, `token.storage`, ...).
    pub name: &'static str,
    /// First line.
    pub base_line: u64,
    /// Line count.
    pub lines: u64,
}

impl Region {
    /// `true` if `line` falls in this region.
    #[must_use]
    pub fn contains(&self, line: u64) -> bool {
        (self.base_line..self.base_line + self.lines).contains(&line)
    }
}

/// A conservation invariant: a signed wrapping sum over state words that
/// every serialization preserves.
#[derive(Debug, Clone)]
pub struct Conserved {
    /// What is conserved (for error messages).
    pub what: &'static str,
    /// Summed words; `false` coefficient means subtract.
    pub terms: Vec<(Addr, bool)>,
    /// The required wrapping sum.
    pub expect: u64,
}

/// The scenario's final-state acceptance check, as data (the `workloads`
/// crate wraps it over the simulator's final memory, the tests over the
/// reference machine's storage).
#[derive(Debug, Clone, Default)]
pub struct StateCheck {
    /// Words whose final value is order-independent and therefore known
    /// exactly from the sequential ground truth.
    pub exact: Vec<(Addr, u64)>,
    /// Conservation sums (hold even where exact values are
    /// order-dependent).
    pub conserved: Vec<Conserved>,
}

impl StateCheck {
    /// Verifies the check against final memory, read through `read`.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn verify(&self, read: &mut dyn FnMut(Addr) -> u64) -> Result<(), String> {
        for &(a, want) in &self.exact {
            let got = read(a);
            if got != want {
                return Err(format!(
                    "word {} = {got}, sequential ground truth says {want}",
                    a.0
                ));
            }
        }
        for c in &self.conserved {
            let mut sum = 0u64;
            for &(a, add) in &c.terms {
                let v = read(a);
                sum = if add {
                    sum.wrapping_add(v)
                } else {
                    sum.wrapping_sub(v)
                };
            }
            if sum != c.expect {
                return Err(format!(
                    "{} not conserved: sum {sum} != {}",
                    c.what, c.expect
                ));
            }
        }
        Ok(())
    }
}

/// A fully built scenario.
pub struct EvmSetup {
    /// One program per thread.
    pub programs: Vec<EvmProgram>,
    /// Initial memory image (state seeds plus the parameter tables).
    pub init: Vec<(Addr, u64)>,
    /// Final-state acceptance check.
    pub check: StateCheck,
    /// Named line regions for hot-line attribution.
    pub regions: Vec<Region>,
    /// Total user transactions across all threads (each is exactly one
    /// hardware transaction, so this equals the expected commit count).
    pub user_txs: u64,
    /// Total gas the stream consumes (sequential accounting).
    pub gas_total: u64,
    /// The per-thread transaction streams (the ground truth input).
    pub txns: Vec<Vec<Txn>>,
    /// The state layout everything was compiled against.
    pub layout: StateLayout,
}

/// Transaction-kind discriminants in the packed parameter word.
const KIND_TRANSFER: u64 = 0;
const KIND_MINT: u64 = 1;
const KIND_TOKEN_TRANSFER: u64 = 2;
const KIND_SWAP: u64 = 3;

/// Initial native balance per account (transfers scenario).
const INIT_NATIVE: u64 = 1_000;
/// Initial token balance per account (dex scenario).
const INIT_TOKEN: u64 = 50_000;
/// Initial dex reserve B (dex scenario; drains by `>> 4` per swap).
const INIT_RESERVE_B: u64 = 1 << 20;
/// Zipf weight scale (rank-1 weights are `SCALE / (rank + 1)`).
const ZIPF_SCALE: u64 = 1 << 16;
/// Post-commit pause, matching the other kernels' pacing.
const INTER_TX_PAUSE: u64 = 20;

/// Integer Zipf(s=1) sampler over ranks `0..n`: rank `r` gets weight
/// `ZIPF_SCALE / (r + 1)`. Rank equals account index, so account 0 is
/// always the hottest line — platform-independent (no floats) and
/// trivially auditable.
struct Zipf {
    cum: Vec<u64>,
}

impl Zipf {
    fn new(n: u64) -> Zipf {
        let mut cum = Vec::with_capacity(n as usize);
        let mut total = 0u64;
        for r in 0..n {
            total += ZIPF_SCALE / (r + 1);
            cum.push(total);
        }
        Zipf { cum }
    }

    fn sample(&self, rng: &mut SimRng) -> u64 {
        let total = *self.cum.last().expect("non-empty zipf");
        let x = rng.below(total);
        self.cum.partition_point(|&c| c <= x) as u64
    }
}

fn pack(kind: u64, from: u64, to: u64, amount: u64) -> u64 {
    debug_assert!(from < 1 << 16 && to < 1 << 16 && amount < 1 << 16 && kind < 1 << 8);
    from | to << 16 | amount << 32 | kind << 56
}

fn txn_of(kind: u64, from: u64, to: u64, amount: u64) -> Txn {
    match kind {
        KIND_TRANSFER => Txn::Transfer { from, to, amount },
        KIND_MINT => Txn::Call {
            caller: from,
            contract: TOKEN,
            func: token::MINT,
            args: vec![to, amount],
            gas_limit: TX_GAS_LIMIT,
        },
        KIND_TOKEN_TRANSFER => Txn::Call {
            caller: from,
            contract: TOKEN,
            func: token::TRANSFER,
            args: vec![to, amount],
            gas_limit: TX_GAS_LIMIT,
        },
        KIND_SWAP => Txn::Call {
            caller: from,
            contract: DEX,
            func: dex::SWAP,
            args: vec![amount],
            gas_limit: TX_GAS_LIMIT,
        },
        _ => unreachable!("unknown txn kind {kind}"),
    }
}

/// Draws one transaction of the scenario's mix.
fn draw_txn(kind: ScenarioKind, layout: &StateLayout, zipf: &Zipf, rng: &mut SimRng) -> u64 {
    let amount = rng.range(1, 256);
    match kind {
        ScenarioKind::Transfers => {
            let from = rng.below(layout.accounts);
            // Distinct counterpart: pairwise conflicts, never a self-move.
            let to = (from + 1 + rng.below(layout.accounts - 1)) % layout.accounts;
            pack(KIND_TRANSFER, from, to, amount)
        }
        ScenarioKind::TokenStorm => {
            let to = zipf.sample(rng);
            if rng.chance(15, 100) {
                pack(KIND_MINT, 0, to, amount)
            } else {
                let from = zipf.sample(rng);
                pack(KIND_TOKEN_TRANSFER, from, to, amount)
            }
        }
        ScenarioKind::Dex => {
            // The dex pseudo-account is excluded from draws so the
            // reserve-float invariant stays exact.
            let from = zipf.sample(rng);
            if rng.chance(60, 100) {
                pack(KIND_SWAP, from, 0, amount)
            } else {
                let to = zipf.sample(rng);
                pack(KIND_TOKEN_TRANSFER, from, to, amount)
            }
        }
    }
}

/// Emits the per-thread driver program: table walk, plain parameter
/// load, unpack, dispatch, one hardware transaction per user
/// transaction.
fn emit_driver(kind: ScenarioKind, layout: &StateLayout, txs_per_thread: u64) -> Program {
    let bank = ContractBank::library(layout);
    let low = Lowerer::new(&bank, layout);
    let (i, base, n, packed, from, to, amount, kindr, t8, ret) = (
        Reg(0),
        Reg(1),
        Reg(2),
        Reg(3),
        Reg(4),
        Reg(5),
        Reg(6),
        Reg(7),
        Reg(8),
        Reg(9),
    );
    let mut b = ProgramBuilder::new();
    b.imm(i, 0).imm(n, txs_per_thread);
    let top = b.label();
    b.bind(top);
    // Parameter fetch: outside the transaction, so retries re-run the
    // same user transaction.
    b.add(t8, base, i);
    b.load(packed, t8);
    b.andi(from, packed, 0xFFFF);
    b.shri(to, packed, 16);
    b.andi(to, to, 0xFFFF);
    b.shri(amount, packed, 32);
    b.andi(amount, amount, 0xFFFF);
    b.shri(kindr, packed, 56);
    b.tx_begin();
    let done = b.label();
    match kind {
        ScenarioKind::Transfers => {
            emit_native_transfer(&mut b, layout, from, to, amount, t8, ret);
        }
        ScenarioKind::TokenStorm => {
            let lmint = b.label();
            b.imm(t8, KIND_MINT);
            b.beq(kindr, t8, lmint);
            low.emit_call(
                &mut b,
                (TOKEN, token::TRANSFER),
                from,
                &[to, amount],
                ret,
                TX_GAS_LIMIT,
            )
            .expect("token transfer lowers");
            b.jmp(done);
            b.bind(lmint);
            low.emit_call(
                &mut b,
                (TOKEN, token::MINT),
                from,
                &[to, amount],
                ret,
                TX_GAS_LIMIT,
            )
            .expect("token mint lowers");
        }
        ScenarioKind::Dex => {
            let lswap = b.label();
            b.imm(t8, KIND_SWAP);
            b.beq(kindr, t8, lswap);
            low.emit_call(
                &mut b,
                (TOKEN, token::TRANSFER),
                from,
                &[to, amount],
                ret,
                TX_GAS_LIMIT,
            )
            .expect("token transfer lowers");
            b.jmp(done);
            b.bind(lswap);
            low.emit_call(&mut b, (DEX, dex::SWAP), from, &[amount], ret, TX_GAS_LIMIT)
                .expect("dex swap lowers");
        }
    }
    b.bind(done);
    b.tx_end();
    b.pause(INTER_TX_PAUSE);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    b.build()
}

/// `balance[from] -= amount; balance[to] += amount` on the native
/// account lines, matching [`Machine::transfer`].
fn emit_native_transfer(
    b: &mut ProgramBuilder,
    layout: &StateLayout,
    from: Reg,
    to: Reg,
    amount: Reg,
    addr: Reg,
    val: Reg,
) {
    b.addi(addr, from, layout.account_base_line);
    b.shli(addr, addr, 3);
    b.load(val, addr);
    b.sub(val, val, amount);
    b.store(addr, val);
    b.addi(addr, to, layout.account_base_line);
    b.shli(addr, addr, 3);
    b.load(val, addr);
    b.add(val, val, amount);
    b.store(addr, val);
}

/// Builds a scenario: `threads` streams of `txs_per_thread` user
/// transactions each, drawn deterministically from `seed`.
///
/// # Panics
///
/// Panics if `threads` or `txs_per_thread` is zero, or if the footprint
/// (state plus parameter tables) would leave the backing store's dense
/// fast path.
#[must_use]
pub fn build(kind: ScenarioKind, threads: usize, txs_per_thread: u64, seed: u64) -> EvmSetup {
    assert!(threads > 0 && txs_per_thread > 0, "degenerate scenario");
    let layout = StateLayout::standard();
    let table_base_line = layout.end_line();
    let stride_lines = txs_per_thread.div_ceil(WORDS_PER_LINE);
    let table_end = table_base_line + threads as u64 * stride_lines;
    assert!(
        table_end <= 1 << 15,
        "scenario footprint {table_end} lines leaves the dense store fast path"
    );

    let mut rng = SimRng::seed_from(seed ^ (0xE7_0001 * kind.name().len() as u64));
    let zipf_n = match kind {
        ScenarioKind::Dex => layout.accounts - 1,
        _ => layout.accounts,
    };
    let zipf = Zipf::new(zipf_n);

    // Draw the per-thread streams and pack the parameter tables.
    let mut init = Vec::new();
    let mut txns: Vec<Vec<Txn>> = Vec::with_capacity(threads);
    for t in 0..threads {
        let mut trng = rng.fork(t as u64);
        let base_word = (table_base_line + t as u64 * stride_lines) * WORDS_PER_LINE;
        let mut stream = Vec::with_capacity(txs_per_thread as usize);
        for k in 0..txs_per_thread {
            let packed = draw_txn(kind, &layout, &zipf, &mut trng);
            init.push((Addr(base_word + k), packed));
            let (from, to, amount) = (
                packed & 0xFFFF,
                packed >> 16 & 0xFFFF,
                packed >> 32 & 0xFFFF,
            );
            stream.push(txn_of(packed >> 56, from, to, amount));
        }
        txns.push(stream);
    }

    // State seeds.
    let supply_addr = layout.slot_addr(TOKEN, token::SUPPLY_SLOT);
    let balance_addr = |a: u64| {
        layout.slot_addr(
            TOKEN,
            token::BALANCE_BASE_SLOT + (a & layout.account_mask()),
        )
    };
    match kind {
        ScenarioKind::Transfers => {
            for a in 0..layout.accounts {
                init.push((layout.account_addr(a), INIT_NATIVE));
            }
        }
        ScenarioKind::TokenStorm => {} // everything starts at zero
        ScenarioKind::Dex => {
            for a in 0..layout.accounts {
                init.push((balance_addr(a), INIT_TOKEN));
            }
            init.push((supply_addr, layout.accounts * INIT_TOKEN));
            init.push((layout.slot_addr(DEX, dex::RESERVE_B_SLOT), INIT_RESERVE_B));
        }
    }

    // Sequential ground truth: replay every stream on the reference
    // machine over the same initial image.
    let mut machine = Machine::new(
        ContractBank::library(&layout),
        layout,
        ImageStorage::from_image(&init),
    );
    let mut gas_total = 0u64;
    for stream in &txns {
        for txn in stream {
            let r = execute_txn(&mut machine, txn)
                .unwrap_or_else(|e| panic!("ground-truth execution failed: {e}"));
            gas_total += r.gas_used;
        }
    }
    let ground_truth = machine.into_storage();

    // Acceptance check: exact words where every serialization agrees,
    // conservation sums everywhere else.
    let balance_terms = || {
        (0..layout.accounts)
            .map(|a| (balance_addr(a), true))
            .collect::<Vec<_>>()
    };
    let check = match kind {
        // Commutative scenarios: the whole final image is exact
        // (including the parameter tables, which must come back
        // untouched).
        ScenarioKind::Transfers => StateCheck {
            exact: ground_truth.image().collect(),
            conserved: vec![Conserved {
                what: "total native balance",
                terms: (0..layout.accounts)
                    .map(|a| (layout.account_addr(a), true))
                    .collect(),
                expect: layout.accounts.wrapping_mul(INIT_NATIVE),
            }],
        },
        ScenarioKind::TokenStorm => StateCheck {
            exact: ground_truth.image().collect(),
            conserved: vec![Conserved {
                what: "token supply vs balances",
                terms: {
                    let mut t = balance_terms();
                    t.push((supply_addr, false));
                    t
                },
                expect: 0,
            }],
        },
        // Swap payouts are order-dependent; check the order-independent
        // words exactly and the rest by conservation.
        ScenarioKind::Dex => {
            let ra = layout.slot_addr(DEX, dex::RESERVE_A_SLOT);
            let rb = layout.slot_addr(DEX, dex::RESERVE_B_SLOT);
            let dex_bal = balance_addr(ContractBank::dex_account(&layout));
            StateCheck {
                exact: vec![
                    (ra, ground_truth.sload(ra)),
                    (supply_addr, ground_truth.sload(supply_addr)),
                ],
                conserved: vec![
                    Conserved {
                        what: "token supply vs balances",
                        terms: {
                            let mut t = balance_terms();
                            t.push((supply_addr, false));
                            t
                        },
                        expect: 0,
                    },
                    Conserved {
                        what: "dex reserve float",
                        terms: vec![(ra, true), (rb, true), (dex_bal, false)],
                        expect: INIT_RESERVE_B.wrapping_sub(INIT_TOKEN),
                    },
                ],
            }
        }
    };

    let program = emit_driver(kind, &layout, txs_per_thread);
    let programs = (0..threads)
        .map(|t| EvmProgram {
            program: program.clone(),
            presets: vec![
                (Reg(31), t as u64),
                (
                    Reg(1),
                    (table_base_line + t as u64 * stride_lines) * WORDS_PER_LINE,
                ),
            ],
            seed: seed ^ (t as u64).wrapping_mul(0xE7E7_0B0B),
        })
        .collect();

    let regions = vec![
        Region {
            name: "accounts",
            base_line: layout.account_base_line,
            lines: layout.accounts,
        },
        Region {
            name: "token.storage",
            base_line: layout.contract_base_line(TOKEN),
            lines: layout.slots_per_contract,
        },
        Region {
            name: "dex.storage",
            base_line: layout.contract_base_line(DEX),
            lines: layout.slots_per_contract,
        },
        Region {
            name: "params",
            base_line: table_base_line,
            lines: threads as u64 * stride_lines,
        },
    ];

    EvmSetup {
        programs,
        init,
        check,
        regions,
        user_txs: threads as u64 * txs_per_thread,
        gas_total,
        txns,
        layout,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::TRANSFER_GAS;
    use chats_tvm::{Vm, VmEvent};
    use std::collections::HashMap;

    /// Single-threaded functional execution of a whole setup: runs each
    /// thread's program to completion, in turn, over one flat memory.
    fn run_flat(setup: &EvmSetup) -> HashMap<u64, u64> {
        let mut mem: HashMap<u64, u64> = setup.init.iter().map(|&(a, v)| (a.0, v)).collect();
        for tp in &setup.programs {
            let mut vm = Vm::new(tp.program.clone(), tp.seed);
            for &(r, v) in &tp.presets {
                vm.preset_reg(r, v);
            }
            for _ in 0..20_000_000u64 {
                match vm.step() {
                    VmEvent::Compute(_) | VmEvent::TxBegin | VmEvent::TxEnd => {}
                    VmEvent::Load(a) => vm.complete_load(*mem.get(&a.0).unwrap_or(&0)),
                    VmEvent::Store(a, v) => {
                        mem.insert(a.0, v);
                        vm.complete_store();
                    }
                    VmEvent::Halted => break,
                }
            }
            assert!(matches!(vm.step(), VmEvent::Halted), "program did not halt");
        }
        mem
    }

    #[test]
    fn every_scenario_matches_its_own_ground_truth_serially() {
        for kind in ScenarioKind::ALL {
            let setup = build(kind, 3, 40, 0xE7);
            let mem = run_flat(&setup);
            setup
                .check
                .verify(&mut |a| *mem.get(&a.0).unwrap_or(&0))
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        }
    }

    #[test]
    fn builds_are_deterministic() {
        for kind in ScenarioKind::ALL {
            let a = build(kind, 2, 16, 9);
            let b = build(kind, 2, 16, 9);
            assert_eq!(a.txns, b.txns, "{}", kind.name());
            assert_eq!(a.init, b.init);
            let insts =
                |p: &chats_tvm::Program| (0..p.len()).map(|i| p.fetch(i)).collect::<Vec<_>>();
            assert_eq!(insts(&a.programs[0].program), insts(&b.programs[0].program));
            assert_eq!(a.check.exact, b.check.exact);
        }
    }

    #[test]
    fn seeds_change_the_stream() {
        let a = build(ScenarioKind::TokenStorm, 2, 16, 1);
        let b = build(ScenarioKind::TokenStorm, 2, 16, 2);
        assert_ne!(a.txns, b.txns);
    }

    #[test]
    fn zipf_is_head_heavy() {
        let zipf = Zipf::new(1024);
        let mut rng = SimRng::seed_from(7);
        let mut head = 0u64;
        const DRAWS: u64 = 10_000;
        for _ in 0..DRAWS {
            if zipf.sample(&mut rng) < 8 {
                head += 1;
            }
        }
        // Ranks 0..8 hold ~36% of the rank-1 mass over 1024 ranks.
        assert!(head > DRAWS / 4, "head draws {head} of {DRAWS}");
    }

    #[test]
    fn transfers_never_self_move() {
        let setup = build(ScenarioKind::Transfers, 4, 64, 3);
        for stream in &setup.txns {
            for t in stream {
                if let Txn::Transfer { from, to, .. } = t {
                    assert_ne!(from, to);
                }
            }
        }
    }

    #[test]
    fn dex_streams_exclude_the_dex_account() {
        let setup = build(ScenarioKind::Dex, 4, 64, 3);
        let dex_acct = ContractBank::dex_account(&setup.layout);
        for stream in &setup.txns {
            for t in stream {
                if let Txn::Call {
                    caller,
                    args,
                    func,
                    contract,
                    ..
                } = t
                {
                    assert_ne!(*caller, dex_acct);
                    if *contract == TOKEN && *func == token::TRANSFER {
                        assert_ne!(args[0], dex_acct);
                    }
                }
            }
        }
    }

    #[test]
    fn user_tx_and_gas_accounting() {
        let setup = build(ScenarioKind::Transfers, 2, 10, 5);
        assert_eq!(setup.user_txs, 20);
        assert_eq!(setup.gas_total, 20 * TRANSFER_GAS);
        let storm = build(ScenarioKind::TokenStorm, 2, 10, 5);
        assert!(storm.gas_total > storm.user_txs * TRANSFER_GAS);
    }

    #[test]
    fn regions_cover_every_state_and_param_line() {
        let setup = build(ScenarioKind::TokenStorm, 2, 16, 1);
        for &(a, _) in &setup.init {
            let line = a.line().0;
            assert!(
                setup.regions.iter().any(|r| r.contains(line)),
                "line {line} uncovered"
            );
        }
    }

    #[test]
    fn check_catches_a_lost_update() {
        let setup = build(ScenarioKind::Transfers, 2, 16, 2);
        let mut mem = run_flat(&setup);
        let victim = setup.layout.account_addr(0).0;
        *mem.entry(victim).or_insert(0) += 1;
        assert!(setup
            .check
            .verify(&mut |a| *mem.get(&a.0).unwrap_or(&0))
            .is_err());
    }
}
