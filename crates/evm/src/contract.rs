//! Contracts: named straight-line functions over the stack-machine ops,
//! plus the standard two-contract library the scenario generators use.
//!
//! The library is deliberately branch-free and built from wrapping
//! arithmetic only, so every balance movement is commutative: the final
//! token state after a set of transfers is the same under any
//! serialization. That property is what lets the differential tests
//! compare a concurrent run's final memory word-for-word against one
//! sequential ground-truth execution.

use crate::ops::Op;
use crate::storage::StateLayout;

/// A contract's index in the [`ContractBank`] (and its storage region in
/// the [`StateLayout`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContractId(pub u8);

/// The token contract.
pub const TOKEN: ContractId = ContractId(0);
/// The dex contract.
pub const DEX: ContractId = ContractId(1);

/// Function indices of the token contract.
pub mod token {
    /// `mint(to, amount)` — supply += amount, balance[to] += amount.
    pub const MINT: u8 = 0;
    /// `transfer(to, amount)` — balance[caller] -= amount, balance[to] += amount.
    pub const TRANSFER: u8 = 1;
    /// `transfer_from(from, to, amount)` — balance[from] -= amount, balance[to] += amount.
    pub const TRANSFER_FROM: u8 = 2;
    /// `balance_of(who)` — read-only.
    pub const BALANCE_OF: u8 = 3;
    /// Storage slot of the total supply.
    pub const SUPPLY_SLOT: u64 = 0;
    /// First storage slot of the balance table (`balance[a]` lives at
    /// `BALANCE_BASE_SLOT + (a & account_mask)`).
    pub const BALANCE_BASE_SLOT: u64 = 1;
}

/// Function indices of the dex contract.
pub mod dex {
    /// `swap(amount_in)` — pulls `amount_in` of the token from the
    /// caller, pays out `reserve_b >> 4` from the dex's own balance.
    pub const SWAP: u8 = 0;
    /// `deposit(amount_a, amount_b)` — reserves += amounts.
    pub const DEPOSIT: u8 = 1;
    /// Storage slot of reserve A (grows by every swap's `amount_in`).
    pub const RESERVE_A_SLOT: u64 = 0;
    /// Storage slot of reserve B (shrinks by every swap's payout).
    pub const RESERVE_B_SLOT: u64 = 1;
}

/// One callable contract function: a fixed arity and a straight-line op
/// sequence ending in [`Op::Stop`].
#[derive(Debug, Clone)]
pub struct Function {
    /// Function name (diagnostics only).
    pub name: &'static str,
    /// Number of call arguments.
    pub arity: u8,
    /// The body.
    pub ops: Vec<Op>,
}

/// A contract: a name plus its function table.
#[derive(Debug, Clone)]
pub struct Contract {
    /// Contract name (diagnostics and per-contract attribution).
    pub name: &'static str,
    /// Callable functions, indexed by the `u8` in [`Op::Call`].
    pub functions: Vec<Function>,
}

/// The deployed contract set. Both the sequential interpreter and the
/// TxVM compiler resolve [`Op::Call`] through the same bank.
#[derive(Debug, Clone)]
pub struct ContractBank {
    contracts: Vec<Contract>,
}

impl ContractBank {
    /// A bank over an explicit contract list.
    #[must_use]
    pub fn new(contracts: Vec<Contract>) -> ContractBank {
        ContractBank { contracts }
    }

    /// The contract at `id`.
    #[must_use]
    pub fn get(&self, id: ContractId) -> Option<&Contract> {
        self.contracts.get(id.0 as usize)
    }

    /// Function `func` of contract `id`.
    #[must_use]
    pub fn function(&self, id: ContractId, func: u8) -> Option<&Function> {
        self.get(id)?.functions.get(func as usize)
    }

    /// Number of deployed contracts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.contracts.len()
    }

    /// `true` when no contracts are deployed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.contracts.is_empty()
    }

    /// The standard library: the token (contract 0) and the dex
    /// (contract 1), with balance keys masked to `layout.account_mask()`.
    #[must_use]
    pub fn library(layout: &StateLayout) -> ContractBank {
        let mask = layout.account_mask();
        ContractBank::new(vec![token_contract(mask), dex_contract(layout)])
    }

    /// The dex's pseudo-account (holds the swap float): the highest
    /// account index.
    #[must_use]
    pub fn dex_account(layout: &StateLayout) -> u64 {
        layout.accounts - 1
    }
}

/// Emits `[.. a] -> [.. key(a)]` followed by `Dup`+`SLoad`, i.e. leaves
/// `[key, balance[a]]` on the stack.
fn balance_key(ops: &mut Vec<Op>, mask: u64) {
    ops.push(Op::And(mask));
    ops.push(Op::Push(token::BALANCE_BASE_SLOT));
    ops.push(Op::Add);
}

fn token_contract(mask: u64) -> Contract {
    // mint(to, amount)
    let mut mint = vec![
        Op::Push(token::SUPPLY_SLOT),
        Op::Push(token::SUPPLY_SLOT),
        Op::SLoad,
        Op::Arg(1),
        Op::Add,
        Op::SStore,
        Op::Arg(0),
    ];
    balance_key(&mut mint, mask);
    mint.extend([
        Op::Dup(0),
        Op::SLoad,
        Op::Arg(1),
        Op::Add,
        Op::SStore,
        Op::Stop,
    ]);

    // transfer(to, amount): debit the caller, credit `to`.
    let mut transfer = vec![Op::Caller];
    balance_key(&mut transfer, mask);
    transfer.extend([
        Op::Dup(0),
        Op::SLoad,
        Op::Arg(1),
        Op::Sub,
        Op::SStore,
        Op::Arg(0),
    ]);
    balance_key(&mut transfer, mask);
    transfer.extend([
        Op::Dup(0),
        Op::SLoad,
        Op::Arg(1),
        Op::Add,
        Op::SStore,
        Op::Stop,
    ]);

    // transfer_from(from, to, amount)
    let mut transfer_from = vec![Op::Arg(0)];
    balance_key(&mut transfer_from, mask);
    transfer_from.extend([
        Op::Dup(0),
        Op::SLoad,
        Op::Arg(2),
        Op::Sub,
        Op::SStore,
        Op::Arg(1),
    ]);
    balance_key(&mut transfer_from, mask);
    transfer_from.extend([
        Op::Dup(0),
        Op::SLoad,
        Op::Arg(2),
        Op::Add,
        Op::SStore,
        Op::Stop,
    ]);

    // balance_of(who)
    let mut balance_of = vec![Op::Arg(0)];
    balance_key(&mut balance_of, mask);
    balance_of.extend([Op::SLoad, Op::Stop]);

    Contract {
        name: "token",
        functions: vec![
            Function {
                name: "mint",
                arity: 2,
                ops: mint,
            },
            Function {
                name: "transfer",
                arity: 2,
                ops: transfer,
            },
            Function {
                name: "transfer_from",
                arity: 3,
                ops: transfer_from,
            },
            Function {
                name: "balance_of",
                arity: 1,
                ops: balance_of,
            },
        ],
    }
}

fn dex_contract(layout: &StateLayout) -> Contract {
    let dex_acct = ContractBank::dex_account(layout);

    // swap(amount_in): pull amount_in caller -> dex, bump reserve A,
    // compute the payout from reserve B, pay out dex -> caller.
    let swap = vec![
        Op::Caller,
        Op::Push(dex_acct),
        Op::Arg(0),
        Op::Call(TOKEN, token::TRANSFER_FROM),
        Op::Pop,
        Op::Push(dex::RESERVE_A_SLOT),
        Op::Push(dex::RESERVE_A_SLOT),
        Op::SLoad,
        Op::Arg(0),
        Op::Add,
        Op::SStore,
        Op::Push(dex::RESERVE_B_SLOT),
        Op::SLoad,
        Op::Shr(4),
        Op::MStore(0),
        Op::Push(dex::RESERVE_B_SLOT),
        Op::Push(dex::RESERVE_B_SLOT),
        Op::SLoad,
        Op::MLoad(0),
        Op::Sub,
        Op::SStore,
        Op::Push(dex_acct),
        Op::Caller,
        Op::MLoad(0),
        Op::Call(TOKEN, token::TRANSFER_FROM),
        Op::Pop,
        Op::MLoad(0),
        Op::Stop,
    ];

    // deposit(amount_a, amount_b)
    let deposit = vec![
        Op::Push(dex::RESERVE_A_SLOT),
        Op::Push(dex::RESERVE_A_SLOT),
        Op::SLoad,
        Op::Arg(0),
        Op::Add,
        Op::SStore,
        Op::Push(dex::RESERVE_B_SLOT),
        Op::Push(dex::RESERVE_B_SLOT),
        Op::SLoad,
        Op::Arg(1),
        Op::Add,
        Op::SStore,
        Op::Stop,
    ];

    Contract {
        name: "dex",
        functions: vec![
            Function {
                name: "swap",
                arity: 1,
                ops: swap,
            },
            Function {
                name: "deposit",
                arity: 2,
                ops: deposit,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_resolves_every_published_index() {
        let bank = ContractBank::library(&StateLayout::standard());
        assert_eq!(bank.len(), 2);
        assert_eq!(bank.function(TOKEN, token::MINT).unwrap().name, "mint");
        assert_eq!(
            bank.function(TOKEN, token::TRANSFER).unwrap().name,
            "transfer"
        );
        assert_eq!(bank.function(TOKEN, token::TRANSFER_FROM).unwrap().arity, 3);
        assert_eq!(bank.function(TOKEN, token::BALANCE_OF).unwrap().arity, 1);
        assert_eq!(bank.function(DEX, dex::SWAP).unwrap().name, "swap");
        assert_eq!(bank.function(DEX, dex::DEPOSIT).unwrap().arity, 2);
        assert!(bank.function(DEX, 9).is_none());
        assert!(bank.function(ContractId(7), 0).is_none());
    }

    #[test]
    fn bodies_end_in_stop() {
        let bank = ContractBank::library(&StateLayout::standard());
        for c in [TOKEN, DEX] {
            for f in &bank.get(c).unwrap().functions {
                assert_eq!(*f.ops.last().unwrap(), Op::Stop, "{}", f.name);
            }
        }
    }

    #[test]
    fn balance_table_fits_the_storage_region() {
        let l = StateLayout::standard();
        assert!(token::BALANCE_BASE_SLOT + l.account_mask() < l.slots_per_contract);
    }
}
