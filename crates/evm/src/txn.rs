//! User transactions and the sequential executor.
//!
//! A [`Txn`] is what a user submits: either a native balance transfer
//! (no contract code) or a contract call with a gas limit. The scenario
//! generators produce per-thread `Txn` streams; the TxVM lowering turns
//! each into one hardware transaction, and [`execute_txn`] replays the
//! same streams on the reference [`Machine`] to produce the sequential
//! ground truth.

use crate::contract::ContractId;
use crate::machine::{ExecutionError, Machine};
use crate::ops::TRANSFER_GAS;
use crate::storage::Storage;

/// One user transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Txn {
    /// Native balance movement: `balance[from] -= amount`,
    /// `balance[to] += amount`.
    Transfer {
        /// Debited account.
        from: u64,
        /// Credited account.
        to: u64,
        /// Amount moved (wrapping).
        amount: u64,
    },
    /// A bounded-gas contract call.
    Call {
        /// Originating account (the `Caller` op's value, inherited by
        /// inlined callees).
        caller: u64,
        /// Callee contract.
        contract: ContractId,
        /// Function index in the callee's table.
        func: u8,
        /// Call arguments.
        args: Vec<u64>,
        /// Gas budget; the transaction is rejected at submission if its
        /// static gas exceeds it.
        gas_limit: u64,
    },
}

/// Receipt of a sequentially executed transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Receipt {
    /// Return value (0 for transfers).
    pub ret: u64,
    /// Gas consumed.
    pub gas_used: u64,
}

/// Executes one transaction on the reference machine.
///
/// # Errors
///
/// Any [`ExecutionError`] from the contract call (never for transfers).
pub fn execute_txn<S: Storage>(
    machine: &mut Machine<S>,
    txn: &Txn,
) -> Result<Receipt, ExecutionError> {
    match txn {
        Txn::Transfer { from, to, amount } => {
            machine.transfer(*from, *to, *amount);
            Ok(Receipt {
                ret: 0,
                gas_used: TRANSFER_GAS,
            })
        }
        Txn::Call {
            caller,
            contract,
            func,
            args,
            gas_limit,
        } => {
            let out = machine.call(*caller, *contract, *func, args, *gas_limit)?;
            Ok(Receipt {
                ret: out.ret,
                gas_used: out.gas_used,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{token, ContractBank, TOKEN};
    use crate::ops::TX_GAS_LIMIT;
    use crate::storage::{ImageStorage, StateLayout, Storage};

    #[test]
    fn transfer_and_call_both_execute() {
        let layout = StateLayout::standard();
        let mut m = Machine::new(ContractBank::library(&layout), layout, ImageStorage::new());
        let r = execute_txn(
            &mut m,
            &Txn::Transfer {
                from: 1,
                to: 2,
                amount: 5,
            },
        )
        .unwrap();
        assert_eq!(r.gas_used, TRANSFER_GAS);
        let r = execute_txn(
            &mut m,
            &Txn::Call {
                caller: 0,
                contract: TOKEN,
                func: token::MINT,
                args: vec![2, 10],
                gas_limit: TX_GAS_LIMIT,
            },
        )
        .unwrap();
        assert!(r.gas_used > TRANSFER_GAS);
        assert_eq!(m.storage().sload(layout.account_addr(2)), 5);
    }
}
