//! The persistent storage layer and the on-machine state layout.
//!
//! Two things live here. [`Storage`] is the sputnikvm-style persistence
//! interface the [`Machine`](crate::Machine) writes through, with
//! [`ImageStorage`] as the reference word-map implementation.
//! [`StateLayout`] is the shared address map: it places native account
//! balances and per-contract storage slots onto the simulator's
//! word-addressed cache lines, **one hot word per line**, so that a hot
//! balance or a hot reserve is a hot cache line. The sequential
//! interpreter and the TxVM lowering both resolve state through the same
//! layout, which is what makes word-for-word differential comparison of
//! their final states possible.

use crate::contract::ContractId;
use chats_mem::{Addr, WORDS_PER_LINE};

/// Persistent word storage, keyed by simulated word address.
pub trait Storage {
    /// Reads the word at `addr` (zero if never written).
    fn sload(&self, addr: Addr) -> u64;
    /// Writes the word at `addr`.
    fn sstore(&mut self, addr: Addr, value: u64);
}

/// The reference storage: a sorted word map, dumpable as a memory image.
#[derive(Debug, Clone, Default)]
pub struct ImageStorage {
    words: std::collections::BTreeMap<u64, u64>,
}

impl ImageStorage {
    /// An empty storage.
    #[must_use]
    pub fn new() -> ImageStorage {
        ImageStorage::default()
    }

    /// Seeds the storage from an initial memory image.
    #[must_use]
    pub fn from_image(init: &[(Addr, u64)]) -> ImageStorage {
        let mut s = ImageStorage::new();
        for &(a, v) in init {
            s.sstore(a, v);
        }
        s
    }

    /// Every written word, in address order.
    pub fn image(&self) -> impl Iterator<Item = (Addr, u64)> + '_ {
        self.words.iter().map(|(&a, &v)| (Addr(a), v))
    }
}

impl Storage for ImageStorage {
    fn sload(&self, addr: Addr) -> u64 {
        self.words.get(&addr.0).copied().unwrap_or(0)
    }

    fn sstore(&mut self, addr: Addr, value: u64) {
        self.words.insert(addr.0, value);
    }
}

/// Maps the transaction model's state onto simulated memory lines.
///
/// Layout (in lines): native accounts first, one balance word per line;
/// then one storage region per contract, one slot word per line. Slot
/// keys are masked to the (power-of-two) region size, so every storage
/// access a contract can express stays inside its own region — the
/// model's whole address-safety story, enforced identically by the
/// interpreter and the compiled code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateLayout {
    /// First line of the native-account region.
    pub account_base_line: u64,
    /// Number of native accounts (power of two).
    pub accounts: u64,
    /// First line of contract storage (contract 0's region).
    pub storage_base_line: u64,
    /// Storage slots per contract (power of two; one line each).
    pub slots_per_contract: u64,
    /// Number of contract storage regions.
    pub contracts: u64,
}

impl StateLayout {
    /// The standard scenario layout: 1024 accounts, two contracts with
    /// 2048 slots each.
    #[must_use]
    pub fn standard() -> StateLayout {
        StateLayout {
            account_base_line: 1,
            accounts: 1024,
            storage_base_line: 1 + 1024,
            slots_per_contract: 2048,
            contracts: 2,
        }
    }

    /// Mask applied to account indices (`accounts` is a power of two).
    #[must_use]
    pub fn account_mask(&self) -> u64 {
        self.accounts - 1
    }

    /// Mask applied to storage slot keys.
    #[must_use]
    pub fn slot_mask(&self) -> u64 {
        self.slots_per_contract - 1
    }

    /// Word address of account `acct`'s native balance (index masked).
    #[must_use]
    pub fn account_addr(&self, acct: u64) -> Addr {
        Addr((self.account_base_line + (acct & self.account_mask())) * WORDS_PER_LINE)
    }

    /// First line of contract `c`'s storage region.
    #[must_use]
    pub fn contract_base_line(&self, c: ContractId) -> u64 {
        assert!(u64::from(c.0) < self.contracts, "contract out of layout");
        self.storage_base_line + u64::from(c.0) * self.slots_per_contract
    }

    /// Word address of slot `key` of contract `c` (key masked).
    #[must_use]
    pub fn slot_addr(&self, c: ContractId, key: u64) -> Addr {
        Addr((self.contract_base_line(c) + (key & self.slot_mask())) * WORDS_PER_LINE)
    }

    /// First line past all state regions (where scenario-private data,
    /// like parameter tables, may start).
    #[must_use]
    pub fn end_line(&self) -> u64 {
        self.storage_base_line + self.contracts * self.slots_per_contract
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_layout_is_power_of_two() {
        let l = StateLayout::standard();
        assert!(l.accounts.is_power_of_two());
        assert!(l.slots_per_contract.is_power_of_two());
    }

    #[test]
    fn one_word_per_line() {
        let l = StateLayout::standard();
        let a = l.account_addr(5);
        let b = l.account_addr(6);
        assert_ne!(a.line(), b.line());
        assert_eq!(a.offset_in_line(), 0);
    }

    #[test]
    fn slot_keys_are_masked_into_region() {
        let l = StateLayout::standard();
        let c = ContractId(1);
        let lo = l.slot_addr(c, 0);
        let wrapped = l.slot_addr(c, l.slots_per_contract);
        assert_eq!(lo, wrapped);
        assert!(lo.line().0 >= l.contract_base_line(c));
        assert!(l.slot_addr(c, l.slot_mask()).line().0 < l.end_line());
    }

    #[test]
    fn account_indices_are_masked() {
        let l = StateLayout::standard();
        assert_eq!(l.account_addr(0), l.account_addr(l.accounts));
    }

    #[test]
    fn image_storage_round_trips() {
        let mut s = ImageStorage::new();
        assert_eq!(s.sload(Addr(8)), 0);
        s.sstore(Addr(8), 7);
        assert_eq!(s.sload(Addr(8)), 7);
        let img: Vec<_> = s.image().collect();
        assert_eq!(img, vec![(Addr(8), 7)]);
    }
}
