#![warn(missing_docs)]

//! `chats-evm`: a smart-contract transaction frontier compiled to TxVM.
//!
//! Every other workload in this repository is a synthetic STAMP-pattern
//! kernel. This crate supplies a *production-shaped* frontier instead: a
//! small account/storage/gas transaction model — a word-addressed stack
//! machine with contract calls, in the `Machine` / `Memory` / `Storage`
//! layering of sputnikvm — plus a compiler that lowers each user
//! transaction (native transfer, token mint/transfer, contract call with
//! a bounded gas budget) to TxVM bytecode, so each user transaction
//! executes as **one hardware transaction** over shared account and
//! storage cache lines.
//!
//! The layers:
//!
//! * [`ops`] — the contract instruction set (stack machine opcodes) and
//!   their static gas costs,
//! * [`memory`] — the per-call scratch [`memory::Memory`] layer
//!   (`MLoad`/`MStore` slots),
//! * [`storage`] — the persistent [`storage::Storage`] layer plus the
//!   [`storage::StateLayout`] that maps accounts and contract storage
//!   slots onto the simulator's word-addressed cache lines (one hot
//!   balance = one hot line),
//! * [`contract`] — contracts as named functions over ops, with a small
//!   library (`token`, `dex`) used by the scenario generators,
//! * [`machine`] — the sequential reference interpreter
//!   `Machine<M, S>`: ground truth for differential tests,
//! * [`compile`] — the lowering from a contract call to straight-line
//!   TxVM code between `tx_begin`/`tx_end`, with compile-time stack
//!   mapping (stack slots become TxVM registers) and static gas
//!   metering,
//! * [`txn`] — user transactions and [`txn::execute_txn`], the
//!   sequential executor,
//! * [`scenario`] — deterministic scenario generators (`transfers`,
//!   `token-storm` with a Zipf-skewed account mix, `dex`
//!   read-modify-write flows) that emit per-thread TxVM programs, the
//!   initial memory image, and exact/conservation state checks,
//! * [`check_kernel`] — counted-sum kernels for `chats-check`'s
//!   schedule explorer, built through the same compiler.
//!
//! Contention shape: hot contracts become hot cache lines (the token
//! supply word, the dex reserves), pairwise transfers become pairwise
//! conflicts, and popular-token storms (Zipf-skewed account draws)
//! become chain stress for CHATS' forwarding chains.
//!
//! # Example
//!
//! ```
//! use chats_evm::scenario::{build, ScenarioKind};
//!
//! let setup = build(ScenarioKind::TokenStorm, 2, 8, 42);
//! assert_eq!(setup.programs.len(), 2);
//! assert_eq!(setup.user_txs, 16);
//! ```

pub mod check_kernel;
pub mod compile;
pub mod contract;
pub mod machine;
pub mod memory;
pub mod ops;
pub mod scenario;
pub mod storage;
pub mod txn;

pub use compile::{CompileError, Lowerer};
pub use contract::{Contract, ContractBank, ContractId, Function};
pub use machine::{ExecutionError, Machine};
pub use memory::{Memory, SeqMemory};
pub use ops::{GasSchedule, Op};
pub use storage::{ImageStorage, StateLayout, Storage};
pub use txn::{execute_txn, Txn};
