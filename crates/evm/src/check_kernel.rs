//! Counted-sum attack kernels built through the real contract compiler,
//! for `chats-check`'s schedule explorer.
//!
//! The explorer runs one identical program on every thread with no
//! register presets, so unlike the [`scenario`](crate::scenario)
//! generators these kernels draw their accounts with the VM's own `Rand`
//! (each thread's seed differs) instead of parameter tables. The
//! invariant is the standard counted-increment one: every mint adds 1 to
//! the supply word and 1 to one balance word, so
//! `sum(counters) == threads * per_thread` must hold under any policy,
//! any schedule, and any survivable fault plan.

use crate::compile::Lowerer;
use crate::contract::{token, ContractBank, TOKEN};
use crate::ops::TX_GAS_LIMIT;
use crate::storage::StateLayout;
use chats_tvm::{Kernel, ProgramBuilder, Reg};

/// Mint storm: each transaction mints 1 token to a random account below
/// `pool`, through the compiled token contract (supply RMW + balance
/// RMW, both on their own hot lines).
///
/// Invariant: supply plus the `pool` balances sum to
/// `threads * iters * 2`.
///
/// # Panics
///
/// Panics if `iters` or `pool` is zero, or `pool` exceeds the standard
/// layout's account count.
#[must_use]
pub fn mint_storm(iters: u64, pool: u64) -> Kernel {
    assert!(iters > 0 && pool > 0, "degenerate mint_storm kernel");
    let layout = StateLayout::standard();
    assert!(pool <= layout.accounts, "pool exceeds the account space");
    let bank = ContractBank::library(&layout);
    let low = Lowerer::new(&bank, &layout);

    let (i, n, caller, to, amount, bound, ret) =
        (Reg(0), Reg(2), Reg(4), Reg(5), Reg(6), Reg(7), Reg(9));
    let mut b = ProgramBuilder::new();
    b.imm(i, 0)
        .imm(n, iters)
        .imm(caller, 0)
        .imm(amount, 1)
        .imm(bound, pool);
    let top = b.label();
    b.bind(top);
    b.rand(to, bound);
    b.tx_begin();
    low.emit_call(
        &mut b,
        (TOKEN, token::MINT),
        caller,
        &[to, amount],
        ret,
        TX_GAS_LIMIT,
    )
    .expect("token mint lowers");
    b.tx_end();
    b.pause(20);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();

    let mut counters = vec![layout.slot_addr(TOKEN, token::SUPPLY_SLOT).0];
    counters.extend((0..pool).map(|a| layout.slot_addr(TOKEN, token::BALANCE_BASE_SLOT + a).0));
    Kernel {
        program: b.build(),
        counters,
        per_thread: iters * 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chats_tvm::{Vm, VmEvent};
    use std::collections::HashMap;

    fn interpret(k: &Kernel, seed: u64) -> HashMap<u64, u64> {
        let mut mem = HashMap::new();
        let mut vm = Vm::new(k.program.clone(), seed);
        for _ in 0..2_000_000u64 {
            match vm.step() {
                VmEvent::Compute(_) | VmEvent::TxBegin | VmEvent::TxEnd => {}
                VmEvent::Load(a) => vm.complete_load(*mem.get(&a.0).unwrap_or(&0)),
                VmEvent::Store(a, v) => {
                    mem.insert(a.0, v);
                    vm.complete_store();
                }
                VmEvent::Halted => return mem,
            }
        }
        panic!("kernel did not halt");
    }

    #[test]
    fn invariant_holds_single_threaded() {
        let k = mint_storm(9, 16);
        let mem = interpret(&k, 11);
        let sum: u64 = k.counters.iter().map(|a| mem.get(a).unwrap_or(&0)).sum();
        assert_eq!(sum, k.per_thread);
    }

    #[test]
    fn different_seeds_hit_different_balances() {
        let k = mint_storm(20, 64);
        assert_ne!(interpret(&k, 1), interpret(&k, 2));
    }

    #[test]
    fn stray_writes_stay_inside_the_counter_set() {
        let k = mint_storm(5, 8);
        let mem = interpret(&k, 3);
        for &a in mem.keys() {
            assert!(k.counters.contains(&a), "write outside counters at {a}");
        }
    }
}
