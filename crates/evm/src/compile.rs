//! Lowering contract calls to straight-line TxVM code.
//!
//! The operand stack is mapped at compile time: stack slot `i` lives in
//! TxVM register `16 + i`, so every stack op becomes at most a couple of
//! register moves and no runtime stack exists at all. Calls are inlined
//! (the op set has no dynamic dispatch), scratch memory gets a disjoint
//! register group per call depth (per-frame semantics, exactly like the
//! interpreter's fresh [`SeqMemory`](crate::memory::SeqMemory)), and gas
//! is fully static: a transaction that lowers successfully can never run
//! out of gas, overflow its stack, or touch state outside its contract's
//! storage region.
//!
//! Register map (the driver program owns everything the compiler does
//! not):
//!
//! ```text
//! r0..r9    driver / caller / argument registers (untouched)
//! r10..r15  scratch-memory slots, MEM_SLOTS per call depth
//! r16..r27  operand stack slots 0..MAX_STACK
//! r28..r29  compiler scratch
//! r30..r31  untouched (r31 is the workload tid convention)
//! ```

use crate::contract::{ContractBank, ContractId};
use crate::ops::{GasSchedule, Op, MAX_CALL_DEPTH, MAX_STACK, MEM_SLOTS};
use crate::storage::StateLayout;
use chats_tvm::{ProgramBuilder, Reg};

/// First register of the per-depth scratch-memory groups.
const MEM_BASE: u8 = 10;
/// First register of the operand-stack slots.
const STACK_BASE: u8 = 16;
/// Compiler scratch register (`Swap` lowering).
const SCRATCH: Reg = Reg(28);

/// Why a transaction cannot be lowered. These are the *submission-time*
/// rejections of the model — the runtime counterpart
/// ([`ExecutionError`](crate::machine::ExecutionError)) can only occur
/// for calls that would also fail to compile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Static gas exceeds the transaction's limit.
    OutOfGas {
        /// Gas the call needs.
        needed: u64,
        /// The transaction's gas limit.
        limit: u64,
    },
    /// The operand stack would exceed [`MAX_STACK`] slots.
    StackOverflow,
    /// An op pops more than its frame has pushed.
    StackUnderflow,
    /// Inlining would exceed [`MAX_CALL_DEPTH`].
    CallDepth,
    /// No such contract/function in the bank.
    UnknownFunction(ContractId, u8),
    /// `Arg(i)` beyond the function's arity, or a call-site argument
    /// count that does not match it.
    BadArg(u8),
    /// `MLoad`/`MStore` slot at or above [`MEM_SLOTS`].
    MemSlot(u8),
    /// A caller-supplied register collides with the compiler's reserved
    /// range (r10..r29).
    ReservedRegister(Reg),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::OutOfGas { needed, limit } => {
                write!(f, "static gas {needed} exceeds limit {limit}")
            }
            CompileError::StackOverflow => write!(f, "operand stack exceeds {MAX_STACK} slots"),
            CompileError::StackUnderflow => write!(f, "operand stack underflow"),
            CompileError::CallDepth => write!(f, "call depth exceeds {MAX_CALL_DEPTH}"),
            CompileError::UnknownFunction(c, fun) => {
                write!(f, "unknown function {fun} of contract {}", c.0)
            }
            CompileError::BadArg(i) => write!(f, "argument {i} out of range"),
            CompileError::MemSlot(s) => write!(f, "memory slot {s} out of range"),
            CompileError::ReservedRegister(r) => {
                write!(f, "register r{} is reserved by the compiler", r.0)
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// The contract-to-TxVM compiler.
#[derive(Debug, Clone, Copy)]
pub struct Lowerer<'a> {
    bank: &'a ContractBank,
    layout: &'a StateLayout,
    schedule: GasSchedule,
}

impl<'a> Lowerer<'a> {
    /// A lowerer over a deployed bank and layout, with the default gas
    /// schedule.
    #[must_use]
    pub fn new(bank: &'a ContractBank, layout: &'a StateLayout) -> Lowerer<'a> {
        Lowerer {
            bank,
            layout,
            schedule: GasSchedule::default(),
        }
    }

    /// The exact gas a call of `func` consumes (call overheads included,
    /// nested calls inlined). Equal to the interpreter's dynamic
    /// `gas_used` — the op set is straight-line, so there is nothing
    /// dynamic about gas at all.
    ///
    /// # Errors
    ///
    /// Any structural [`CompileError`] in the function or its callees.
    pub fn static_gas(&self, contract: ContractId, func: u8) -> Result<u64, CompileError> {
        let arity = self.arity(contract, func)?;
        let mut scratch = ProgramBuilder::new();
        let args: Vec<Reg> = (0..arity).map(Reg).collect();
        let (gas, _) = self.emit_fn(&mut scratch, (contract, func), Reg(0), &args, 0, 1)?;
        Ok(gas)
    }

    /// Emits the full inlined body of `func` into `b`, reading the
    /// caller account from `caller` and the arguments from `args`
    /// (driver registers r0..r9), leaving the return value in `ret`.
    /// The emitted code is straight-line (no branches, no `Rand`) and
    /// contains no transaction markers — the driver brackets it with
    /// `tx_begin`/`tx_end` so one user transaction is one hardware
    /// transaction.
    ///
    /// Returns the call's (static == dynamic) gas.
    ///
    /// # Errors
    ///
    /// Any [`CompileError`]; on error the builder may contain a partial
    /// emission and should be discarded.
    pub fn emit_call(
        &self,
        b: &mut ProgramBuilder,
        target: (ContractId, u8),
        caller: Reg,
        args: &[Reg],
        ret: Reg,
        gas_limit: u64,
    ) -> Result<u64, CompileError> {
        let (contract, func) = target;
        for &r in args.iter().chain([&caller, &ret]) {
            if (MEM_BASE..30).contains(&r.0) {
                return Err(CompileError::ReservedRegister(r));
            }
        }
        let arity = self.arity(contract, func)?;
        if args.len() != arity as usize {
            return Err(CompileError::BadArg(arity));
        }
        let (gas, final_sp) = self.emit_fn(b, target, caller, args, 0, 1)?;
        if gas > gas_limit {
            return Err(CompileError::OutOfGas {
                needed: gas,
                limit: gas_limit,
            });
        }
        if final_sp > 0 {
            b.mov(ret, slot(final_sp - 1));
        } else {
            b.imm(ret, 0);
        }
        Ok(gas)
    }

    fn arity(&self, contract: ContractId, func: u8) -> Result<u8, CompileError> {
        self.bank
            .function(contract, func)
            .map(|f| f.arity)
            .ok_or(CompileError::UnknownFunction(contract, func))
    }

    /// Emits one inlined frame. `sp_base` is the first operand-stack
    /// slot this frame may use; `args` are the registers holding its
    /// arguments (driver registers for the entry frame, the caller's
    /// top-of-stack slots for nested frames — those sit *below*
    /// `sp_base`, so the frame cannot clobber them). Returns the frame's
    /// gas and the stack height at its `Stop`.
    fn emit_fn(
        &self,
        b: &mut ProgramBuilder,
        target: (ContractId, u8),
        caller: Reg,
        args: &[Reg],
        sp_base: usize,
        depth: usize,
    ) -> Result<(u64, usize), CompileError> {
        let (contract, func) = target;
        if depth > MAX_CALL_DEPTH {
            return Err(CompileError::CallDepth);
        }
        let f = self
            .bank
            .function(contract, func)
            .ok_or(CompileError::UnknownFunction(contract, func))?;
        let arity = f.arity;
        let ops = f.ops.clone();
        let mut gas = self.schedule.call;
        let mut sp = sp_base;

        // Fresh per-frame scratch memory: zero this depth's register
        // group iff the function touches it.
        if ops
            .iter()
            .any(|o| matches!(o, Op::MLoad(_) | Op::MStore(_)))
        {
            for s in 0..MEM_SLOTS as u8 {
                b.imm(mem_reg(depth, s), 0);
            }
        }

        for op in &ops {
            if !matches!(op, Op::Call(..) | Op::Stop) {
                gas += self.schedule.cost(op);
            }
            match *op {
                Op::Push(v) => {
                    b.imm(self.push(&mut sp)?, v);
                }
                Op::Pop => {
                    self.popn(&mut sp, sp_base, 1)?;
                }
                Op::Dup(n) => {
                    let src = below(sp, sp_base, n)?;
                    let dst = self.push(&mut sp)?;
                    b.mov(dst, src);
                }
                Op::Swap(n) => {
                    let top = below(sp, sp_base, 0)?;
                    let other = below(sp, sp_base, n + 1)?;
                    b.mov(SCRATCH, top);
                    b.mov(top, other);
                    b.mov(other, SCRATCH);
                }
                Op::Add => {
                    self.popn(&mut sp, sp_base, 2)?;
                    b.add(slot(sp), slot(sp), slot(sp + 1));
                    sp += 1;
                }
                Op::Sub => {
                    self.popn(&mut sp, sp_base, 2)?;
                    b.sub(slot(sp), slot(sp), slot(sp + 1));
                    sp += 1;
                }
                Op::Mul => {
                    self.popn(&mut sp, sp_base, 2)?;
                    b.mul(slot(sp), slot(sp), slot(sp + 1));
                    sp += 1;
                }
                Op::Shr(n) => {
                    let t = below(sp, sp_base, 0)?;
                    b.shri(t, t, n);
                }
                Op::And(m) => {
                    let t = below(sp, sp_base, 0)?;
                    b.andi(t, t, m);
                }
                Op::Caller => {
                    let dst = self.push(&mut sp)?;
                    b.mov(dst, caller);
                }
                Op::Arg(i) => {
                    let src = *args.get(i as usize).ok_or(CompileError::BadArg(i))?;
                    let dst = self.push(&mut sp)?;
                    b.mov(dst, src);
                }
                Op::MLoad(s) => {
                    let src = checked_mem_reg(depth, s)?;
                    let dst = self.push(&mut sp)?;
                    b.mov(dst, src);
                }
                Op::MStore(s) => {
                    let dst = checked_mem_reg(depth, s)?;
                    let src = below(sp, sp_base, 0)?;
                    b.mov(dst, src);
                    self.popn(&mut sp, sp_base, 1)?;
                }
                Op::SLoad => {
                    let t = below(sp, sp_base, 0)?;
                    self.emit_slot_addr(b, contract, t);
                    b.load(t, t);
                }
                Op::SStore => {
                    let val = below(sp, sp_base, 0)?;
                    let key = below(sp, sp_base, 1)?;
                    self.emit_slot_addr(b, contract, key);
                    b.store(key, val);
                    self.popn(&mut sp, sp_base, 2)?;
                }
                Op::Call(callee, cf) => {
                    let a = self.arity(callee, cf)? as usize;
                    if sp < sp_base + a {
                        return Err(CompileError::StackUnderflow);
                    }
                    let call_args: Vec<Reg> = (sp - a..sp).map(slot).collect();
                    let (callee_gas, callee_sp) =
                        self.emit_fn(b, (callee, cf), caller, &call_args, sp, depth + 1)?;
                    gas += callee_gas;
                    sp -= a;
                    let dst = self.push(&mut sp)?;
                    if callee_sp > 0 {
                        b.mov(dst, slot(callee_sp - 1));
                    } else {
                        b.imm(dst, 0);
                    }
                }
                Op::Stop => return Ok((gas, sp)),
            }
        }
        // Missing Stop behaves like a trailing one (arity kept for the
        // call-site contract; nothing else to do).
        let _ = arity;
        Ok((gas, sp))
    }

    /// Turns the slot key in `key_reg` into the word address of that
    /// slot of `contract`'s storage region, in place. The mask keeps
    /// every expressible access inside the region.
    fn emit_slot_addr(&self, b: &mut ProgramBuilder, contract: ContractId, key_reg: Reg) {
        b.andi(key_reg, key_reg, self.layout.slot_mask());
        b.addi(key_reg, key_reg, self.layout.contract_base_line(contract));
        b.shli(key_reg, key_reg, 3);
    }

    fn push(&self, sp: &mut usize) -> Result<Reg, CompileError> {
        if *sp >= MAX_STACK {
            return Err(CompileError::StackOverflow);
        }
        let r = slot(*sp);
        *sp += 1;
        Ok(r)
    }

    fn popn(&self, sp: &mut usize, sp_base: usize, n: usize) -> Result<(), CompileError> {
        if *sp < sp_base + n {
            return Err(CompileError::StackUnderflow);
        }
        *sp -= n;
        Ok(())
    }
}

/// Register of operand-stack slot `i`.
fn slot(i: usize) -> Reg {
    debug_assert!(i < MAX_STACK);
    Reg(STACK_BASE + i as u8)
}

/// Register of scratch-memory slot `s` at call depth `depth` (1-based).
fn mem_reg(depth: usize, s: u8) -> Reg {
    Reg(MEM_BASE + ((depth - 1) * MEM_SLOTS) as u8 + s)
}

fn checked_mem_reg(depth: usize, s: u8) -> Result<Reg, CompileError> {
    if (s as usize) >= MEM_SLOTS {
        return Err(CompileError::MemSlot(s));
    }
    Ok(mem_reg(depth, s))
}

/// The slot `n` below the top of the frame's stack.
fn below(sp: usize, sp_base: usize, n: u8) -> Result<Reg, CompileError> {
    let i = sp
        .checked_sub(1 + n as usize)
        .filter(|&i| i >= sp_base)
        .ok_or(CompileError::StackUnderflow)?;
    Ok(slot(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{dex, token, ContractBank, DEX, TOKEN};
    use crate::machine::Machine;
    use crate::ops::TX_GAS_LIMIT;
    use crate::storage::{ImageStorage, Storage};
    use chats_mem::Addr;
    use chats_tvm::{Vm, VmEvent};
    use std::collections::HashMap;

    /// Runs a TxVM program single-threaded over a flat memory.
    fn interpret(program: chats_tvm::Program, init: &HashMap<u64, u64>) -> HashMap<u64, u64> {
        let mut mem = init.clone();
        let mut vm = Vm::new(program, 7);
        for _ in 0..1_000_000u64 {
            match vm.step() {
                VmEvent::Compute(_) | VmEvent::TxBegin | VmEvent::TxEnd => {}
                VmEvent::Load(a) => vm.complete_load(*mem.get(&a.0).unwrap_or(&0)),
                VmEvent::Store(a, v) => {
                    mem.insert(a.0, v);
                    vm.complete_store();
                }
                VmEvent::Halted => return mem,
            }
        }
        panic!("program did not halt");
    }

    /// Lowers one call with literal arguments and runs it on TxVM.
    fn run_lowered(
        caller: u64,
        contract: ContractId,
        func: u8,
        args: &[u64],
        init: &HashMap<u64, u64>,
    ) -> (HashMap<u64, u64>, u64) {
        let layout = StateLayout::standard();
        let bank = ContractBank::library(&layout);
        let low = Lowerer::new(&bank, &layout);
        let mut b = ProgramBuilder::new();
        b.imm(Reg(0), caller);
        let arg_regs: Vec<Reg> = args
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let r = Reg(1 + i as u8);
                b.imm(r, v);
                r
            })
            .collect();
        b.tx_begin();
        let gas = low
            .emit_call(
                &mut b,
                (contract, func),
                Reg(0),
                &arg_regs,
                Reg(9),
                TX_GAS_LIMIT,
            )
            .unwrap();
        b.tx_end();
        b.halt();
        let mem = interpret(b.build(), init);
        (mem, gas)
    }

    /// Runs the same call on the reference interpreter.
    fn run_reference(
        caller: u64,
        contract: ContractId,
        func: u8,
        args: &[u64],
        init: &HashMap<u64, u64>,
    ) -> (HashMap<u64, u64>, u64) {
        let layout = StateLayout::standard();
        let bank = ContractBank::library(&layout);
        let image: Vec<(Addr, u64)> = init.iter().map(|(&a, &v)| (Addr(a), v)).collect();
        let mut m = Machine::new(bank, layout, ImageStorage::from_image(&image));
        let out = m.call(caller, contract, func, args, TX_GAS_LIMIT).unwrap();
        let final_mem = m.into_storage().image().map(|(a, v)| (a.0, v)).collect();
        (final_mem, out.gas_used)
    }

    fn differential(caller: u64, contract: ContractId, func: u8, args: &[u64]) {
        let layout = StateLayout::standard();
        let mut init = HashMap::new();
        // Pre-fund a few balances and the reserves so subtraction paths
        // are exercised with non-zero state.
        for a in [caller, 3, ContractBank::dex_account(&layout)] {
            init.insert(
                layout
                    .slot_addr(
                        TOKEN,
                        token::BALANCE_BASE_SLOT + (a & layout.account_mask()),
                    )
                    .0,
                10_000,
            );
        }
        init.insert(layout.slot_addr(DEX, dex::RESERVE_A_SLOT).0, 500);
        init.insert(layout.slot_addr(DEX, dex::RESERVE_B_SLOT).0, 800);

        let (tvm_mem, tvm_gas) = run_lowered(caller, contract, func, args, &init);
        let (ref_mem, ref_gas) = run_reference(caller, contract, func, args, &init);
        assert_eq!(tvm_gas, ref_gas, "static gas != interpreter gas");
        // Every word the reference wrote (or seeded) must match; the TxVM
        // run may not write anything extra outside the seeded words.
        for (&a, &v) in &ref_mem {
            assert_eq!(
                tvm_mem.get(&a).copied().unwrap_or(0),
                v,
                "word {a} diverges"
            );
        }
        for (&a, &v) in &tvm_mem {
            if !ref_mem.contains_key(&a) {
                assert_eq!(v, 0, "phantom write at word {a}");
            }
        }
    }

    #[test]
    fn lowered_mint_matches_reference() {
        differential(2, TOKEN, token::MINT, &[3, 250]);
    }

    #[test]
    fn lowered_transfer_matches_reference() {
        differential(2, TOKEN, token::TRANSFER, &[3, 77]);
    }

    #[test]
    fn lowered_transfer_from_matches_reference() {
        differential(9, TOKEN, token::TRANSFER_FROM, &[2, 3, 55]);
    }

    #[test]
    fn lowered_balance_of_matches_reference() {
        differential(1, TOKEN, token::BALANCE_OF, &[3]);
    }

    #[test]
    fn lowered_swap_with_nested_calls_matches_reference() {
        differential(2, DEX, dex::SWAP, &[120]);
    }

    #[test]
    fn lowered_deposit_matches_reference() {
        differential(4, DEX, dex::DEPOSIT, &[30, 40]);
    }

    #[test]
    fn static_gas_matches_interpreter_for_whole_library() {
        let layout = StateLayout::standard();
        let bank = ContractBank::library(&layout);
        let low = Lowerer::new(&bank, &layout);
        let cases: [(ContractId, u8, Vec<u64>); 6] = [
            (TOKEN, token::MINT, vec![1, 2]),
            (TOKEN, token::TRANSFER, vec![1, 2]),
            (TOKEN, token::TRANSFER_FROM, vec![1, 2, 3]),
            (TOKEN, token::BALANCE_OF, vec![1]),
            (DEX, dex::SWAP, vec![5]),
            (DEX, dex::DEPOSIT, vec![5, 6]),
        ];
        for (c, f, args) in cases {
            let static_gas = low.static_gas(c, f).unwrap();
            let mut m = Machine::new(ContractBank::library(&layout), layout, ImageStorage::new());
            let out = m.call(0, c, f, &args, TX_GAS_LIMIT).unwrap();
            assert_eq!(static_gas, out.gas_used, "contract {} fn {f}", c.0);
        }
    }

    #[test]
    fn gas_limit_rejects_at_compile_time() {
        let layout = StateLayout::standard();
        let bank = ContractBank::library(&layout);
        let low = Lowerer::new(&bank, &layout);
        let mut b = ProgramBuilder::new();
        let err = low
            .emit_call(&mut b, (DEX, dex::SWAP), Reg(0), &[Reg(1)], Reg(9), 10)
            .unwrap_err();
        assert!(matches!(err, CompileError::OutOfGas { limit: 10, .. }));
    }

    #[test]
    fn reserved_registers_are_rejected() {
        let layout = StateLayout::standard();
        let bank = ContractBank::library(&layout);
        let low = Lowerer::new(&bank, &layout);
        let mut b = ProgramBuilder::new();
        let err = low
            .emit_call(
                &mut b,
                (TOKEN, token::BALANCE_OF),
                Reg(16),
                &[Reg(1)],
                Reg(9),
                TX_GAS_LIMIT,
            )
            .unwrap_err();
        assert_eq!(err, CompileError::ReservedRegister(Reg(16)));
    }

    #[test]
    fn wrong_argument_count_is_rejected() {
        let layout = StateLayout::standard();
        let bank = ContractBank::library(&layout);
        let low = Lowerer::new(&bank, &layout);
        let mut b = ProgramBuilder::new();
        let err = low
            .emit_call(
                &mut b,
                (TOKEN, token::MINT),
                Reg(0),
                &[Reg(1)],
                Reg(9),
                TX_GAS_LIMIT,
            )
            .unwrap_err();
        assert_eq!(err, CompileError::BadArg(2));
    }

    #[test]
    fn slot_keys_cannot_escape_the_region() {
        // A hostile key (u64::MAX) must land inside the contract's own
        // storage region after lowering.
        let layout = StateLayout::standard();
        let bank = ContractBank::library(&layout);
        let low = Lowerer::new(&bank, &layout);
        let mut b = ProgramBuilder::new();
        b.imm(Reg(0), 0);
        b.imm(Reg(1), u64::MAX);
        low.emit_call(
            &mut b,
            (TOKEN, token::BALANCE_OF),
            Reg(0),
            &[Reg(1)],
            Reg(9),
            TX_GAS_LIMIT,
        )
        .unwrap();
        b.halt();
        let mem = interpret(b.build(), &HashMap::new());
        // Nothing was written; the loaded address is untracked here, so
        // instead check via the reference that the masked slot resolves
        // in-region for the worst-case key.
        assert!(mem.is_empty());
        let addr = layout.slot_addr(TOKEN, u64::MAX ^ layout.account_mask());
        assert!(addr.line().0 < layout.end_line());
    }

    #[test]
    fn storage_trait_object_safety_smoke() {
        // Storage is used generically; make sure a plain map impl works.
        let mut s = ImageStorage::new();
        s.sstore(Addr(16), 9);
        assert_eq!(s.sload(Addr(16)), 9);
    }
}
