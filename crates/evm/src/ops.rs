//! The contract instruction set: a word-sized stack machine with static
//! gas costs.
//!
//! Contracts are straight-line op sequences (control flow lives in the
//! *driver* loops the scenario generators emit, and in static
//! [`Op::Call`] inlining), which is what makes both the compile-time
//! stack mapping and the static gas metering exact: the cost of a call
//! is the sum of its ops, known before the transaction ever runs.

use crate::contract::ContractId;

/// One contract opcode.
///
/// Stack effects are written `[before] -> [after]` with the top of the
/// stack on the right.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `[] -> [v]`
    Push(u64),
    /// `[v] -> []`
    Pop,
    /// `[.. x ..] -> [.. x .. x]` — copies the value `n` below the top
    /// (`Dup(0)` duplicates the top).
    Dup(u8),
    /// Swaps the top with the value `n + 1` below it (`Swap(0)` swaps the
    /// top two).
    Swap(u8),
    /// `[a b] -> [a + b]` (wrapping)
    Add,
    /// `[a b] -> [a - b]` (wrapping)
    Sub,
    /// `[a b] -> [a * b]` (wrapping)
    Mul,
    /// `[a] -> [a >> n]`
    Shr(u32),
    /// `[a] -> [a & m]`
    And(u64),
    /// `[] -> [caller]` — the transaction's originating account index.
    Caller,
    /// `[] -> [args[i]]` — the i-th call argument.
    Arg(u8),
    /// `[] -> [memory[slot]]` — per-call scratch memory.
    MLoad(u8),
    /// `[v] -> []` — `memory[slot] = v`.
    MStore(u8),
    /// `[key] -> [storage[key]]` — persistent contract storage.
    SLoad,
    /// `[key value] -> []` — `storage[key] = value`.
    SStore,
    /// `[a0 .. an-1] -> [ret]` — calls function `f` (an index into the
    /// callee's function table) of contract `c` with the top `arity`
    /// values as arguments (arity comes from the callee's signature); the
    /// callee's return value replaces them. Calls are inlined at compile
    /// time and their gas is charged to the calling transaction.
    Call(ContractId, u8),
    /// End of execution. The function's return value is the top of the
    /// stack (0 when the stack is empty).
    Stop,
}

/// Static gas cost per opcode class. Storage accesses dominate, as they
/// do on real chains — and as they do on the simulated machine, where
/// each `SLoad`/`SStore` is a transactional memory access over a shared
/// cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GasSchedule {
    /// Stack manipulation (`Push`, `Pop`, `Dup`, `Swap`, `Caller`, `Arg`).
    pub stack: u64,
    /// Arithmetic (`Add`, `Sub`, `Mul`, `Shr`, `And`).
    pub arith: u64,
    /// Scratch memory (`MLoad`, `MStore`).
    pub memory: u64,
    /// Storage read.
    pub sload: u64,
    /// Storage write.
    pub sstore: u64,
    /// Call overhead (the callee's ops are charged on top).
    pub call: u64,
}

impl Default for GasSchedule {
    fn default() -> GasSchedule {
        GasSchedule {
            stack: 1,
            arith: 1,
            memory: 2,
            sload: 20,
            sstore: 50,
            call: 40,
        }
    }
}

impl GasSchedule {
    /// The cost of one op, *excluding* any inlined callee (the compiler
    /// and interpreter add callee costs themselves).
    #[must_use]
    pub fn cost(&self, op: &Op) -> u64 {
        match op {
            Op::Push(_) | Op::Pop | Op::Dup(_) | Op::Swap(_) | Op::Caller | Op::Arg(_) => {
                self.stack
            }
            Op::Add | Op::Sub | Op::Mul | Op::Shr(_) | Op::And(_) => self.arith,
            Op::MLoad(_) | Op::MStore(_) => self.memory,
            Op::SLoad => self.sload,
            Op::SStore => self.sstore,
            Op::Call(..) => self.call,
            Op::Stop => 0,
        }
    }
}

/// Default per-transaction gas budget. Generously above the library
/// contracts' needs and far below anything unbounded.
pub const TX_GAS_LIMIT: u64 = 10_000;

/// Gas charged for a native balance transfer (no contract code runs).
pub const TRANSFER_GAS: u64 = 21;

/// Maximum call-inline depth (the transaction entry call is depth 1).
/// Scratch memory is per-frame, so the compiler reserves `MEM_SLOTS`
/// TxVM registers per depth level.
pub const MAX_CALL_DEPTH: usize = 3;

/// Contract stack depth limit — bounded by the TxVM registers the
/// compiler can dedicate to stack slots.
pub const MAX_STACK: usize = 12;

/// Per-call scratch memory slots.
pub const MEM_SLOTS: usize = 2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_dominates_gas() {
        let g = GasSchedule::default();
        assert!(g.cost(&Op::SStore) > g.cost(&Op::SLoad));
        assert!(g.cost(&Op::SLoad) > g.cost(&Op::Add));
        assert_eq!(g.cost(&Op::Stop), 0);
    }
}
