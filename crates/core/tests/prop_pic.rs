//! Property tests for the CHATS chaining rules.
//!
//! The central claim of the paper (§III-B): the PiC rules never accept a
//! forwarding that creates a cyclic producer-consumer dependency, for *any*
//! history of conflicts, commits and aborts. We simulate random histories
//! over a pool of abstract transactions, apply only the pure decision
//! functions, maintain the explicit dependency graph the hardware never
//! materializes — and assert it stays acyclic, with commit order always
//! compatible with the dependencies.

use chats_core::{
    chats_receive_spec, chats_resolve, ConflictResolution, PicContext, SpecRespAction,
};
use proptest::prelude::*;

const TXS: usize = 8;

/// One abstract in-flight transaction.
#[derive(Debug, Clone, Default)]
struct Tx {
    ctx: PicContext,
    /// Producers this transaction consumed from (still uncommitted).
    producers: Vec<usize>,
    /// Lifetime generation, bumped on commit/abort (dead edges are
    /// detected by generation mismatch).
    gen: u64,
}

#[derive(Debug, Clone)]
struct World {
    txs: Vec<Tx>,
    /// Directed edges consumer -> producer with the generation of each
    /// endpoint at creation.
    edges: Vec<(usize, u64, usize, u64)>,
}

impl World {
    fn new() -> World {
        World {
            txs: (0..TXS).map(|_| Tx::default()).collect(),
            edges: Vec::new(),
        }
    }

    fn live_edges(&self) -> Vec<(usize, usize)> {
        self.edges
            .iter()
            .filter(|(c, cg, p, pg)| self.txs[*c].gen == *cg && self.txs[*p].gen == *pg)
            .map(|(c, _, p, _)| (*c, *p))
            .collect()
    }

    fn is_acyclic(&self) -> bool {
        // DFS over live consumer->producer edges.
        let edges = self.live_edges();
        let mut color = [0u8; TXS]; // 0 white, 1 grey, 2 black
        fn dfs(n: usize, edges: &[(usize, usize)], color: &mut [u8; TXS]) -> bool {
            color[n] = 1;
            for &(c, p) in edges {
                if c == n {
                    if color[p] == 1 {
                        return false;
                    }
                    if color[p] == 0 && !dfs(p, edges, color) {
                        return false;
                    }
                }
            }
            color[n] = 2;
            true
        }
        for n in 0..TXS {
            if color[n] == 0 && !dfs(n, &edges, &mut color) {
                return false;
            }
        }
        true
    }

    /// A conflict: `req` requests a block owned by `owner`.
    fn conflict(&mut self, owner: usize, req: usize) {
        if owner == req {
            return;
        }
        let remote_pic = self.txs[req].ctx.pic;
        match chats_resolve(self.txs[owner].ctx, remote_pic) {
            ConflictResolution::Forward { local_pic_after } => {
                // The producer adopts its new PiC before responding.
                self.txs[owner].ctx.pic = local_pic_after;
                match chats_receive_spec(self.txs[req].ctx, local_pic_after) {
                    SpecRespAction::Accept { new_pic } => {
                        self.txs[req].ctx.pic = new_pic;
                        self.txs[req].ctx.cons = true;
                        self.txs[req].producers.push(owner);
                        self.edges
                            .push((req, self.txs[req].gen, owner, self.txs[owner].gen));
                    }
                    SpecRespAction::AbortSelf => self.abort(req),
                }
            }
            ConflictResolution::AbortLocal => self.abort(owner),
        }
    }

    /// Commit: only legal when every consumed value has been validated,
    /// i.e. all producers have committed (their generation moved on).
    fn try_commit(&mut self, i: usize) -> bool {
        let producers_alive = {
            let tx = &self.txs[i];
            self.edges
                .iter()
                .any(|(c, cg, p, pg)| *c == i && *cg == tx.gen && self.txs[*p].gen == *pg)
        };
        if producers_alive {
            return false; // validation cannot complete yet
        }
        // All producers committed: Cons clears, then commit resets the PiC.
        self.txs[i] = Tx {
            gen: self.txs[i].gen + 1,
            ..Tx::default()
        };
        true
    }

    /// Abort: reset state; consumers of this transaction are doomed to
    /// misvalidate, which the hardware delivers as cascading aborts.
    fn abort(&mut self, i: usize) {
        let doomed: Vec<usize> = self
            .live_edges()
            .iter()
            .filter(|(_, p)| *p == i)
            .map(|(c, _)| *c)
            .collect();
        self.txs[i] = Tx {
            gen: self.txs[i].gen + 1,
            ..Tx::default()
        };
        for c in doomed {
            self.abort(c);
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Conflict(usize, usize),
    Commit(usize),
    Abort(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..TXS, 0..TXS).prop_map(|(a, b)| Op::Conflict(a, b)),
        2 => (0..TXS).prop_map(Op::Commit),
        1 => (0..TXS).prop_map(Op::Abort),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// No history of conflicts/commits/aborts ever creates an accepted
    /// dependency cycle.
    #[test]
    fn dependency_graph_stays_acyclic(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut w = World::new();
        for op in ops {
            match op {
                Op::Conflict(a, b) => w.conflict(a, b),
                Op::Commit(i) => { let _ = w.try_commit(i); }
                Op::Abort(i) => w.abort(i),
            }
            prop_assert!(w.is_acyclic(), "cycle accepted: {:?}", w.live_edges());
        }
    }

    /// Every live dependency edge has the producer's PiC strictly above the
    /// consumer's — the ordering invariant validation relies on.
    #[test]
    fn producers_stay_above_consumers(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut w = World::new();
        for op in ops {
            if let Op::Conflict(a, b) = op {
                w.conflict(a, b);
            }
            for (c, p) in w.live_edges() {
                let (cp, pp) = (w.txs[c].ctx.pic, w.txs[p].ctx.pic);
                prop_assert!(cp.is_set() && pp.is_set());
                prop_assert!(
                    cp.value() < pp.value(),
                    "edge {c}->{p}: consumer {cp:?} !< producer {pp:?}"
                );
            }
        }
    }

    /// Progress: in any quiescent state (no more conflicts), repeatedly
    /// committing ready transactions drains the whole pool — i.e. chains
    /// can always be unwound in dependency order.
    #[test]
    fn chains_always_unwind(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        let mut w = World::new();
        for op in ops {
            match op {
                Op::Conflict(a, b) => w.conflict(a, b),
                Op::Commit(i) => { let _ = w.try_commit(i); }
                Op::Abort(i) => w.abort(i),
            }
        }
        // Drain: every pass must commit at least one transaction with
        // live dependencies remaining, else there is a cycle/deadlock.
        loop {
            if w.live_edges().is_empty() {
                break;
            }
            let mut progressed = false;
            for i in 0..TXS {
                if w.try_commit(i) {
                    progressed = true;
                }
            }
            prop_assert!(progressed, "chain cannot unwind: {:?}", w.live_edges());
        }
    }
}
