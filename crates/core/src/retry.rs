//! Retry, fallback and power-escalation management.
//!
//! Best-effort HTM offers no progress guarantee, so every configuration
//! retries a bounded number of times and then takes a software fallback
//! path (§V-C): a global lock (with eager subscription) or, for power-based
//! systems, the power token.

use crate::abort::AbortCause;

/// What a transaction should do after an abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryVerdict {
    /// Re-execute speculatively (after backoff).
    Retry,
    /// Request elevated priority (power token) before re-executing
    /// speculatively; if the token is busy, keep retrying normally.
    RequestPower,
    /// Give up on speculation: take the fallback lock.
    Fallback,
}

/// Tracks abort counts for one transaction attempt sequence and applies the
/// Table II retry thresholds.
///
/// # Example
///
/// ```
/// use chats_core::{AbortCause, RetryManager, RetryVerdict};
///
/// let mut rm = RetryManager::new(2, None);
/// assert_eq!(rm.on_abort(AbortCause::Conflict), RetryVerdict::Retry);
/// assert_eq!(rm.on_abort(AbortCause::Conflict), RetryVerdict::Retry);
/// // Third abort exceeds 2 retries: fall back.
/// assert_eq!(rm.on_abort(AbortCause::Conflict), RetryVerdict::Fallback);
/// ```
#[derive(Debug, Clone)]
pub struct RetryManager {
    max_retries: u32,
    power_threshold: Option<u32>,
    attempts: u32,
    conflict_aborts: u32,
    faulted_attempts: u32,
}

/// Fault-induced aborts of the *same* transaction tolerated before it is
/// demoted from CHATS forwarding to requester-wins (the middle rung of the
/// graceful-degradation ladder; see [`RetryManager::note_fault`]).
pub const DEMOTE_AFTER_FAULTS: u32 = 3;

impl RetryManager {
    /// `max_retries` speculative re-executions are allowed before the
    /// fallback path; `power_threshold`, when `Some(n)`, requests the power
    /// token after the `n`-th conflict-induced abort (PowerTM behaviour:
    /// "software triggers an elevated priority status after the second
    /// conflict-induced abort").
    #[must_use]
    pub fn new(max_retries: u32, power_threshold: Option<u32>) -> RetryManager {
        RetryManager {
            max_retries,
            power_threshold,
            attempts: 0,
            conflict_aborts: 0,
            faulted_attempts: 0,
        }
    }

    /// Registers an abort of the current attempt and decides what to do
    /// next.
    pub fn on_abort(&mut self, cause: AbortCause) -> RetryVerdict {
        self.attempts += 1;
        if cause == AbortCause::Conflict || cause == AbortCause::ValidationMismatch {
            self.conflict_aborts += 1;
        }
        if self.attempts > self.max_retries {
            return RetryVerdict::Fallback;
        }
        if let Some(t) = self.power_threshold {
            if self.conflict_aborts >= t {
                return RetryVerdict::RequestPower;
            }
        }
        RetryVerdict::Retry
    }

    /// Number of aborted attempts so far.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Randomized-exponential backoff window for the *next* retry, given
    /// the per-machine base: `base << attempts`, capped at seven doublings
    /// and 4096 cycles. The caller adds `base + rng.below(window)` cycles
    /// of delay (the randomness comes from `chats_sim::rng`, keeping the
    /// manager itself deterministic and state-free). This is the first
    /// rung of the graceful-degradation ladder.
    #[must_use]
    pub fn backoff_window(&self, base: u64) -> u64 {
        let window = (base << self.attempts.clamp(1, 7)).min(4096);
        window.max(1)
    }

    /// Registers a *fault-induced* abort (spurious abort, forced VSB
    /// eviction, injected message loss) of the current transaction.
    /// After [`DEMOTE_AFTER_FAULTS`] such aborts the transaction is
    /// [demoted](RetryManager::demoted) — the second rung of the ladder:
    /// keep making progress under environmental pressure by refusing to
    /// extend chains instead of burning the remaining retry budget on
    /// speculation that keeps getting shot down.
    pub fn note_fault(&mut self) {
        self.faulted_attempts = self.faulted_attempts.saturating_add(1);
    }

    /// `true` once the current transaction has absorbed enough
    /// fault-induced aborts to be demoted from CHATS forwarding to
    /// requester-wins conflict resolution. Cleared by
    /// [`RetryManager::reset`] (demotion is per-transaction). Without
    /// fault injection this is always `false`.
    #[must_use]
    pub fn demoted(&self) -> bool {
        self.faulted_attempts >= DEMOTE_AFTER_FAULTS
    }

    /// Resets for the next transaction (after a commit or a completed
    /// fallback execution).
    pub fn reset(&mut self) {
        self.attempts = 0;
        self.conflict_aborts = 0;
        self.faulted_attempts = 0;
    }
}

impl chats_snap::Snap for RetryManager {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        self.max_retries.save(w);
        self.power_threshold.save(w);
        self.attempts.save(w);
        self.conflict_aborts.save(w);
        self.faulted_attempts.save(w);
    }
    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        Ok(RetryManager {
            max_retries: chats_snap::Snap::load(r)?,
            power_threshold: chats_snap::Snap::load(r)?,
            attempts: chats_snap::Snap::load(r)?,
            conflict_aborts: chats_snap::Snap::load(r)?,
            faulted_attempts: chats_snap::Snap::load(r)?,
        })
    }
}

/// The single global fallback lock with eager subscription.
///
/// Transactions read the lock word at `tx_begin` (adding it to their read
/// set), so a non-speculative acquisition by a falling-back thread aborts
/// every running transaction through plain coherence. This type models the
/// lock itself; the read-set subscription is the machine's job.
#[derive(Debug, Clone, Default)]
pub struct FallbackLock {
    holder: Option<usize>,
    waiters: u64,
}

impl FallbackLock {
    /// An unheld lock.
    #[must_use]
    pub fn new() -> FallbackLock {
        FallbackLock::default()
    }

    /// Attempts to acquire for `core`. Returns `true` on success.
    pub fn try_acquire(&mut self, core: usize) -> bool {
        if self.holder.is_none() {
            self.holder = Some(core);
            true
        } else {
            self.waiters += 1;
            false
        }
    }

    /// Releases the lock.
    ///
    /// # Panics
    ///
    /// Panics if `core` is not the holder — a serialization bug in the
    /// caller.
    pub fn release(&mut self, core: usize) {
        assert_eq!(self.holder, Some(core), "release by non-holder");
        self.holder = None;
    }

    /// Current holder, if any.
    #[must_use]
    pub fn holder(&self) -> Option<usize> {
        self.holder
    }

    /// `true` while some thread executes the fallback path.
    #[must_use]
    pub fn is_held(&self) -> bool {
        self.holder.is_some()
    }

    /// Failed acquisition attempts, a contention metric.
    #[must_use]
    pub fn contended_acquires(&self) -> u64 {
        self.waiters
    }
}

impl chats_snap::Snap for FallbackLock {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        self.holder.save(w);
        self.waiters.save(w);
    }
    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        Ok(FallbackLock {
            holder: chats_snap::Snap::load(r)?,
            waiters: chats_snap::Snap::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retries_then_fallback() {
        let mut rm = RetryManager::new(3, None);
        for _ in 0..3 {
            assert_eq!(rm.on_abort(AbortCause::Capacity), RetryVerdict::Retry);
        }
        assert_eq!(rm.on_abort(AbortCause::Capacity), RetryVerdict::Fallback);
    }

    #[test]
    fn zero_retries_falls_back_immediately() {
        let mut rm = RetryManager::new(0, None);
        assert_eq!(rm.on_abort(AbortCause::Conflict), RetryVerdict::Fallback);
    }

    #[test]
    fn power_requested_after_second_conflict_abort() {
        let mut rm = RetryManager::new(10, Some(2));
        assert_eq!(rm.on_abort(AbortCause::Conflict), RetryVerdict::Retry);
        assert_eq!(
            rm.on_abort(AbortCause::Conflict),
            RetryVerdict::RequestPower
        );
    }

    #[test]
    fn non_conflict_aborts_do_not_escalate() {
        let mut rm = RetryManager::new(10, Some(2));
        for _ in 0..5 {
            assert_eq!(rm.on_abort(AbortCause::Capacity), RetryVerdict::Retry);
        }
    }

    #[test]
    fn validation_mismatch_counts_as_conflict_for_escalation() {
        let mut rm = RetryManager::new(10, Some(2));
        rm.on_abort(AbortCause::ValidationMismatch);
        assert_eq!(
            rm.on_abort(AbortCause::ValidationMismatch),
            RetryVerdict::RequestPower
        );
    }

    #[test]
    fn fallback_beats_power() {
        let mut rm = RetryManager::new(1, Some(1));
        assert_eq!(
            rm.on_abort(AbortCause::Conflict),
            RetryVerdict::RequestPower
        );
        assert_eq!(rm.on_abort(AbortCause::Conflict), RetryVerdict::Fallback);
    }

    #[test]
    fn reset_restores_budget() {
        let mut rm = RetryManager::new(1, None);
        rm.on_abort(AbortCause::Conflict);
        rm.reset();
        assert_eq!(rm.attempts(), 0);
        assert_eq!(rm.on_abort(AbortCause::Conflict), RetryVerdict::Retry);
    }

    #[test]
    fn demotion_after_k_faulted_attempts_and_reset_clears_it() {
        let mut rm = RetryManager::new(10, None);
        assert!(!rm.demoted());
        for _ in 0..DEMOTE_AFTER_FAULTS {
            assert!(!rm.demoted());
            rm.note_fault();
        }
        assert!(rm.demoted());
        rm.reset();
        assert!(!rm.demoted(), "demotion is per-transaction");
    }

    #[test]
    fn organic_aborts_never_demote() {
        let mut rm = RetryManager::new(100, None);
        for _ in 0..50 {
            rm.on_abort(AbortCause::Conflict);
        }
        assert!(!rm.demoted());
    }

    #[test]
    fn backoff_window_doubles_then_saturates() {
        let mut rm = RetryManager::new(100, None);
        assert_eq!(rm.backoff_window(16), 32, "attempts=0 counts as 1");
        rm.on_abort(AbortCause::Conflict);
        assert_eq!(rm.backoff_window(16), 32);
        rm.on_abort(AbortCause::Conflict);
        assert_eq!(rm.backoff_window(16), 64);
        for _ in 0..20 {
            rm.on_abort(AbortCause::Conflict);
        }
        assert_eq!(rm.backoff_window(16), 2048, "seven doublings max");
        assert_eq!(rm.backoff_window(4096), 4096, "hard 4096-cycle cap");
    }

    #[test]
    fn lock_acquire_release() {
        let mut l = FallbackLock::new();
        assert!(!l.is_held());
        assert!(l.try_acquire(3));
        assert!(l.is_held());
        assert_eq!(l.holder(), Some(3));
        assert!(!l.try_acquire(4));
        assert_eq!(l.contended_acquires(), 1);
        l.release(3);
        assert!(l.try_acquire(4));
    }

    #[test]
    #[should_panic(expected = "non-holder")]
    fn foreign_release_panics() {
        let mut l = FallbackLock::new();
        l.try_acquire(1);
        l.release(2);
    }
}
