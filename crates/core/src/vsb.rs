//! The Validation State Buffer (VSB).
//!
//! A small fully-associative buffer (4 entries in the paper's sweet-spot
//! configuration) that keeps a *pristine* copy of every speculatively
//! received cache line until it has been validated (§IV-B). A transaction
//! cannot commit while the VSB is non-empty; its contents are discarded on
//! abort.
//!
//! The buffer has two pointers — next free entry and next entry to
//! validate — and a round-robin validation order, modelled here as a ring.

use chats_mem::{Line, LineAddr};

/// One VSB entry: the address and the original speculative data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VsbEntry {
    /// Line this entry guards.
    pub addr: LineAddr,
    /// The value consumed when the `SpecResp` arrived; compared against
    /// every validation response.
    pub data: Line,
}

/// The Validation State Buffer.
///
/// # Example
///
/// ```
/// use chats_core::ValidationStateBuffer;
/// use chats_mem::{Line, LineAddr};
///
/// let mut vsb = ValidationStateBuffer::new(4);
/// assert!(vsb.insert(LineAddr(3), Line::splat(7)));
/// assert_eq!(vsb.len(), 1);
/// let next = vsb.next_to_validate().unwrap();
/// assert_eq!(next.addr, LineAddr(3));
/// ```
#[derive(Debug, Clone)]
pub struct ValidationStateBuffer {
    capacity: usize,
    entries: Vec<VsbEntry>,
    validate_cursor: usize,
}

impl ValidationStateBuffer {
    /// Creates a buffer with room for `capacity` lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> ValidationStateBuffer {
        assert!(capacity > 0, "the VSB needs at least one entry");
        ValidationStateBuffer {
            capacity,
            entries: Vec::with_capacity(capacity),
            validate_cursor: 0,
        }
    }

    /// Buffer capacity in lines: the maximum number of blocks a transaction
    /// can hold speculatively at once.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records a speculatively received line. Returns `false` when the
    /// buffer is full (the conflict must then be resolved without
    /// forwarding) or the line is already present (a second `SpecResp` for
    /// the same line replaces nothing — the original copy is what future
    /// validations must match).
    pub fn insert(&mut self, addr: LineAddr, data: Line) -> bool {
        if self.entries.len() >= self.capacity || self.contains(addr) {
            return false;
        }
        self.entries.push(VsbEntry { addr, data });
        true
    }

    /// `true` if `addr` is being tracked.
    #[must_use]
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.entries.iter().any(|e| e.addr == addr)
    }

    /// Pristine copy stored for `addr`, if tracked.
    #[must_use]
    pub fn get(&self, addr: LineAddr) -> Option<&VsbEntry> {
        self.entries.iter().find(|e| e.addr == addr)
    }

    /// The entry the validation timer should probe next (round robin), or
    /// `None` when the buffer is empty.
    #[must_use]
    pub fn next_to_validate(&self) -> Option<&VsbEntry> {
        if self.entries.is_empty() {
            return None;
        }
        Some(&self.entries[self.validate_cursor % self.entries.len()])
    }

    /// Advances the validation cursor past the entry just probed.
    pub fn advance_cursor(&mut self) {
        if !self.entries.is_empty() {
            self.validate_cursor = (self.validate_cursor + 1) % self.entries.len();
        }
    }

    /// Removes `addr` after a successful validation. Returns `true` if it
    /// was present.
    pub fn remove(&mut self, addr: LineAddr) -> bool {
        match self.entries.iter().position(|e| e.addr == addr) {
            Some(idx) => {
                self.entries.remove(idx);
                if self.entries.is_empty() {
                    self.validate_cursor = 0;
                } else {
                    self.validate_cursor %= self.entries.len();
                }
                true
            }
            None => false,
        }
    }

    /// Discards everything (transaction abort).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.validate_cursor = 0;
    }

    /// Number of unvalidated lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when every speculative consumption has been validated —
    /// the commit precondition.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates the tracked entries (validation order starts at the
    /// cursor).
    pub fn iter(&self) -> impl Iterator<Item = &VsbEntry> {
        self.entries.iter()
    }
}

impl chats_snap::Snap for VsbEntry {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        self.addr.save(w);
        self.data.save(w);
    }
    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        Ok(VsbEntry {
            addr: chats_snap::Snap::load(r)?,
            data: chats_snap::Snap::load(r)?,
        })
    }
}

impl chats_snap::Snap for ValidationStateBuffer {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        w.u64(self.capacity as u64);
        self.entries.save(w);
        w.u64(self.validate_cursor as u64);
    }
    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        let capacity = usize::load(r)?;
        if capacity == 0 {
            return Err(r.err("the VSB needs at least one entry"));
        }
        let entries: Vec<VsbEntry> = chats_snap::Snap::load(r)?;
        let validate_cursor = usize::load(r)?;
        if entries.len() > capacity {
            return Err(r.err("VSB entries exceed capacity"));
        }
        if validate_cursor != 0 && validate_cursor >= entries.len() {
            return Err(r.err("VSB cursor out of range"));
        }
        Ok(ValidationStateBuffer {
            capacity,
            entries,
            validate_cursor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vsb() -> ValidationStateBuffer {
        ValidationStateBuffer::new(4)
    }

    #[test]
    fn insert_until_full() {
        let mut v = vsb();
        for i in 0..4 {
            assert!(v.insert(LineAddr(i), Line::splat(i)));
        }
        assert!(!v.insert(LineAddr(9), Line::zeroed()), "buffer full");
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn duplicate_insert_is_rejected() {
        let mut v = vsb();
        assert!(v.insert(LineAddr(1), Line::splat(1)));
        assert!(!v.insert(LineAddr(1), Line::splat(2)));
        assert_eq!(v.get(LineAddr(1)).unwrap().data, Line::splat(1));
    }

    #[test]
    fn round_robin_validation_order() {
        let mut v = vsb();
        v.insert(LineAddr(10), Line::zeroed());
        v.insert(LineAddr(20), Line::zeroed());
        v.insert(LineAddr(30), Line::zeroed());
        assert_eq!(v.next_to_validate().unwrap().addr, LineAddr(10));
        v.advance_cursor();
        assert_eq!(v.next_to_validate().unwrap().addr, LineAddr(20));
        v.advance_cursor();
        assert_eq!(v.next_to_validate().unwrap().addr, LineAddr(30));
        v.advance_cursor();
        assert_eq!(v.next_to_validate().unwrap().addr, LineAddr(10));
    }

    #[test]
    fn remove_keeps_cursor_valid() {
        let mut v = vsb();
        v.insert(LineAddr(1), Line::zeroed());
        v.insert(LineAddr(2), Line::zeroed());
        v.advance_cursor(); // cursor at index 1 (addr 2)
        assert!(v.remove(LineAddr(2)));
        // Cursor must wrap back onto the single remaining entry.
        assert_eq!(v.next_to_validate().unwrap().addr, LineAddr(1));
        assert!(v.remove(LineAddr(1)));
        assert!(v.next_to_validate().is_none());
        assert!(!v.remove(LineAddr(1)), "double remove");
    }

    #[test]
    fn clear_empties_everything() {
        let mut v = vsb();
        v.insert(LineAddr(1), Line::zeroed());
        v.insert(LineAddr(2), Line::zeroed());
        v.clear();
        assert!(v.is_empty());
        assert!(v.next_to_validate().is_none());
    }

    #[test]
    fn commit_precondition_is_emptiness() {
        let mut v = vsb();
        assert!(v.is_empty());
        v.insert(LineAddr(7), Line::zeroed());
        assert!(!v.is_empty());
        v.remove(LineAddr(7));
        assert!(v.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        ValidationStateBuffer::new(0);
    }
}
