//! The *Position in Chain* (PiC) register.
//!
//! Each core carries one 5-bit PiC plus a one-bit `Cons` flag (§IV). The
//! PiC encodes imprecise-but-sufficient information about the transaction's
//! position in a chain of forwardings: if set, it is strictly greater than
//! the PiC of every transaction that has received speculative data from it.
//! One encoding is reserved for "not part of any chain" (PiC∅).

use std::fmt;

/// Number of usable PiC values in the paper's default configuration
/// (5-bit register, one encoding reserved for the unset state).
pub const PIC_RANGE: u8 = 31;

/// Hard encoding ceiling: whatever register width an experiment
/// configures, values must fit one byte with one encoding reserved for
/// PiC∅.
pub const PIC_ENCODING_LIMIT: u8 = u8::MAX;

/// A Position-in-Chain value: either unset (PiC∅) or a number in
/// `0..=PIC_RANGE-1`.
///
/// The initial value [`Pic::INIT`] sits in the middle of the range so chains
/// can grow from either end (§IV-C).
///
/// # Example
///
/// ```
/// use chats_core::Pic;
/// let p = Pic::INIT;
/// assert_eq!(p.decremented(), Some(Pic::new(14)));
/// assert!(Pic::unset().is_unset());
/// assert!(Pic::new(0).decremented().is_none()); // underflow
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pic(Option<u8>);

impl Pic {
    /// The middle-of-range initial value taken by a fresh producer.
    pub const INIT: Pic = Pic(Some(PIC_RANGE / 2));

    /// The unset value PiC∅: not part of any chain.
    #[must_use]
    pub const fn unset() -> Pic {
        Pic(None)
    }

    /// A set PiC with the given position.
    ///
    /// # Panics
    ///
    /// Panics if `v >= PIC_ENCODING_LIMIT` (reserved for PiC∅).
    #[must_use]
    pub fn new(v: u8) -> Pic {
        assert!(
            v < PIC_ENCODING_LIMIT,
            "PiC value {v} exceeds the encoding limit"
        );
        Pic(Some(v))
    }

    /// The middle-of-range initial value for a register with `range`
    /// usable positions (the width-sensitivity experiments; the default
    /// register uses [`Pic::INIT`]).
    ///
    /// # Panics
    ///
    /// Panics if `range < 3` (chains need at least producer, middle and
    /// consumer positions) or `range >= PIC_ENCODING_LIMIT`.
    #[must_use]
    pub fn init_for(range: u8) -> Pic {
        assert!(
            (3..PIC_ENCODING_LIMIT).contains(&range),
            "unusable PiC range {range}"
        );
        Pic(Some(range / 2))
    }

    /// `true` for PiC∅.
    #[must_use]
    pub fn is_unset(self) -> bool {
        self.0.is_none()
    }

    /// `true` when part of a chain.
    #[must_use]
    pub fn is_set(self) -> bool {
        self.0.is_some()
    }

    /// The numeric position, if set.
    #[must_use]
    pub fn value(self) -> Option<u8> {
        self.0
    }

    /// One position lower (a consumer's PiC), or `None` on underflow —
    /// underflow forces the requester-wins policy (§IV-C).
    #[must_use]
    pub fn decremented(self) -> Option<Pic> {
        match self.0 {
            Some(0) | None => None,
            Some(v) => Some(Pic(Some(v - 1))),
        }
    }

    /// One position higher (a producer overtaking a requester), or `None`
    /// on overflow past the default 5-bit range — overflow forces the
    /// requester-wins policy (§IV-C).
    #[must_use]
    pub fn incremented(self) -> Option<Pic> {
        self.incremented_within(PIC_RANGE)
    }

    /// One position higher within a register of `range` usable positions,
    /// or `None` on overflow.
    #[must_use]
    pub fn incremented_within(self, range: u8) -> Option<Pic> {
        match self.0 {
            None => None,
            Some(v) if v + 1 >= range => None,
            Some(v) => Some(Pic(Some(v + 1))),
        }
    }

    /// Resets to PiC∅ (transaction commit or abort).
    pub fn reset(&mut self) {
        self.0 = None;
    }
}

impl Default for Pic {
    fn default() -> Pic {
        Pic::unset()
    }
}

impl chats_snap::Snap for Pic {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        self.0.save(w);
    }
    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        let v: Option<u8> = chats_snap::Snap::load(r)?;
        if v == Some(PIC_ENCODING_LIMIT) {
            return Err(r.err("PiC value collides with the reserved unset encoding"));
        }
        Ok(Pic(v))
    }
}

impl chats_snap::Snap for PicContext {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        self.pic.save(w);
        self.cons.save(w);
    }
    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        Ok(PicContext {
            pic: chats_snap::Snap::load(r)?,
            cons: chats_snap::Snap::load(r)?,
        })
    }
}

impl fmt::Debug for Pic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            None => write!(f, "PiC∅"),
            Some(v) => write!(f, "PiC({v})"),
        }
    }
}

impl fmt::Display for Pic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The per-core chaining context consulted on every conflict: the PiC plus
/// the `Cons` bit, which records whether the transaction is currently
/// consuming speculative data pending validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PicContext {
    /// Position in chain.
    pub pic: Pic,
    /// `true` while any speculatively received block awaits validation.
    pub cons: bool,
}

impl PicContext {
    /// A fresh, unchained context.
    #[must_use]
    pub fn new() -> PicContext {
        PicContext::default()
    }

    /// Resets both fields, as on abort. (On commit the PiC also resets; the
    /// `Cons` bit is already clear because commit requires an empty VSB.)
    pub fn reset(&mut self) {
        self.pic.reset();
        self.cons = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_is_middle_of_range() {
        assert_eq!(Pic::INIT.value(), Some(15));
    }

    #[test]
    fn unset_round_trip() {
        let p = Pic::unset();
        assert!(p.is_unset());
        assert!(!p.is_set());
        assert_eq!(p.value(), None);
    }

    #[test]
    fn decrement_walks_down_and_underflows() {
        let mut p = Pic::new(2);
        p = p.decremented().unwrap();
        assert_eq!(p, Pic::new(1));
        p = p.decremented().unwrap();
        assert_eq!(p, Pic::new(0));
        assert_eq!(p.decremented(), None);
        assert_eq!(Pic::unset().decremented(), None);
    }

    #[test]
    fn increment_walks_up_and_overflows() {
        let top = Pic::new(PIC_RANGE - 1);
        assert_eq!(top.incremented(), None);
        assert_eq!(Pic::new(PIC_RANGE - 2).incremented(), Some(top));
        assert_eq!(Pic::unset().incremented(), None);
    }

    #[test]
    #[should_panic(expected = "encoding limit")]
    fn new_rejects_encoding_limit() {
        let _ = Pic::new(PIC_ENCODING_LIMIT);
    }

    #[test]
    fn init_for_is_middle_of_any_range() {
        assert_eq!(Pic::init_for(7).value(), Some(3));
        assert_eq!(Pic::init_for(31), Pic::INIT);
    }

    #[test]
    fn incremented_within_respects_custom_range() {
        assert_eq!(Pic::new(2).incremented_within(3), None);
        assert_eq!(Pic::new(1).incremented_within(3), Some(Pic::new(2)));
        // Values beyond the default range still move inside a wider one.
        assert_eq!(Pic::new(40).incremented_within(63), Some(Pic::new(41)));
    }

    #[test]
    #[should_panic(expected = "unusable PiC range")]
    fn init_for_rejects_tiny_ranges() {
        let _ = Pic::init_for(2);
    }

    #[test]
    fn reset_clears() {
        let mut ctx = PicContext {
            pic: Pic::new(7),
            cons: true,
        };
        ctx.reset();
        assert!(ctx.pic.is_unset());
        assert!(!ctx.cons);
    }

    #[test]
    fn five_bits_suffice() {
        // The whole usable range plus the unset encoding fits in 5 bits.
        assert!((PIC_RANGE as u32) < 1 << 5);
    }
}
