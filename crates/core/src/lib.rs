#![warn(missing_docs)]

//! CHATS — CHAining TransactionS: the paper's primary contribution.
//!
//! This crate implements the *logic* of CHATS and of every conflict
//! resolution policy it is evaluated against, independent of any timing
//! model. All decisions here are pure functions over small pieces of state,
//! which is what makes the mechanism cheap in hardware (< 280 bytes/core)
//! and what lets this crate prove its key invariant with property tests:
//! **no sequence of forwarding decisions accepted by the PiC rules can
//! create a dependency cycle**.
//!
//! The pieces, mirroring §III–§IV of the paper:
//!
//! * [`pic`] — the 5-bit *Position in Chain* register and the `Cons` bit,
//! * [`decision`] — the Figure 3 rule table: producer-side conflict
//!   resolution, consumer-side `SpecResp` acceptance, and the validation
//!   PiC check,
//! * [`vsb`] — the 4-entry *Validation State Buffer* holding pristine
//!   copies of speculatively received lines,
//! * [`policy`] — the six evaluated HTM systems (Table II) and their
//!   configuration knobs,
//! * [`abort`] — abort-cause taxonomy (Figure 5),
//! * [`retry`] — retry/fallback-lock management and power escalation,
//! * [`power`] — the PowerTM-style single power-token arbiter,
//! * [`levc`] — the idealized-timestamp logic of LEVC-BE-Idealized,
//! * [`naive`] — the bounded-misvalidation counter of the naive
//!   requester-speculates configuration.
//!
//! # Example: one forwarding decision
//!
//! ```
//! use chats_core::{chats_resolve, ConflictResolution, Pic, PicContext};
//!
//! // Two unconnected transactions conflict (Fig. 3A): forward.
//! let local = PicContext { pic: Pic::unset(), cons: false };
//! match chats_resolve(local, Pic::unset()) {
//!     ConflictResolution::Forward { local_pic_after } => {
//!         assert_eq!(local_pic_after, Pic::INIT);
//!     }
//!     ConflictResolution::AbortLocal => unreachable!("Fig. 3A forwards"),
//! }
//! ```

pub mod abort;
pub mod decision;

/// Deterministic fast hashing for simulator-internal hot maps.
///
/// Implemented in `chats-mem` (the lowest crate in the dependency
/// stack, so the backing store can use it too) and re-exported here as
/// the canonical import path for policy- and machine-level code.
pub mod fasthash {
    pub use chats_mem::fasthash::*;
}
pub mod levc;
pub mod naive;
pub mod pic;
pub mod policy;
pub mod power;
pub mod retry;
pub mod vsb;

pub use abort::AbortCause;
pub use decision::{
    chats_receive_spec, chats_resolve, chats_resolve_bounded, validation_pic_check,
    ConflictOverride, ConflictResolution, SpecRespAction,
};
pub use levc::{LevcArbiter, LevcDecision, Timestamp, TimestampSource};
pub use naive::NaiveValidationCounter;
pub use pic::{Pic, PicContext};
pub use policy::{Ablation, ForwardSet, HtmSystem, PolicyConfig};
pub use power::PowerToken;
pub use retry::{FallbackLock, RetryManager, RetryVerdict, DEMOTE_AFTER_FAULTS};
pub use vsb::{ValidationStateBuffer, VsbEntry};
