//! Abort-cause taxonomy.
//!
//! Figure 5 of the paper splits aborted transactions by the reason that
//! caused the abort; this enum is that split, shared by the HTM engine and
//! the statistics layer.

use std::fmt;

/// Why a transaction aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AbortCause {
    /// A conflicting access resolved against this transaction
    /// (requester-wins victim, power-transaction priority, ...).
    Conflict,
    /// A write-set or speculatively received line was evicted from L1.
    Capacity,
    /// Value-based validation found a mismatch: the consumed speculative
    /// value turned out wrong (producer overwrote it, aborted, or a third
    /// writer intervened).
    ValidationMismatch,
    /// The PiC (or, for LEVC, timestamp) cycle check fired during
    /// validation or `SpecResp` reception.
    CycleDetected,
    /// The naive requester-speculates misvalidation counter reached zero.
    ValidationBudgetExhausted,
    /// Another thread acquired the fallback lock this transaction had
    /// eagerly subscribed to.
    FallbackLock,
    /// Explicit user abort or an unmodelled condition.
    Other,
}

impl AbortCause {
    /// All causes, in the display order used by the Figure 5 harness.
    pub const ALL: [AbortCause; 7] = [
        AbortCause::Conflict,
        AbortCause::Capacity,
        AbortCause::ValidationMismatch,
        AbortCause::CycleDetected,
        AbortCause::ValidationBudgetExhausted,
        AbortCause::FallbackLock,
        AbortCause::Other,
    ];

    /// Short label used in tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AbortCause::Conflict => "conflict",
            AbortCause::Capacity => "capacity",
            AbortCause::ValidationMismatch => "val-mismatch",
            AbortCause::CycleDetected => "cycle",
            AbortCause::ValidationBudgetExhausted => "val-budget",
            AbortCause::FallbackLock => "fallback-lock",
            AbortCause::Other => "other",
        }
    }
}

impl fmt::Display for AbortCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn labels_are_unique() {
        let labels: HashSet<&str> = AbortCause::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), AbortCause::ALL.len());
    }

    #[test]
    fn display_matches_label() {
        for c in AbortCause::ALL {
            assert_eq!(c.to_string(), c.label());
        }
    }
}
