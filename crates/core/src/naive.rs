//! The naive requester-speculates escape counter.
//!
//! The Naive R-S configuration (§VI-B) always forwards, with no cycle
//! avoidance. To escape the deadlocks that cyclic dependencies would cause,
//! each core carries a small saturating counter that is decremented on
//! every *unsuccessful* validation attempt (one that comes back still
//! speculative) and reset on a successful validation. Reaching zero aborts
//! the transaction. The paper uses a 4-bit counter: 16 attempts.

/// Bounded-misvalidation counter for one core.
///
/// # Example
///
/// ```
/// use chats_core::NaiveValidationCounter;
/// let mut c = NaiveValidationCounter::new(2); // 2 bits: budget of 4
/// assert!(!c.on_unsuccessful_validation());
/// assert!(!c.on_unsuccessful_validation());
/// assert!(!c.on_unsuccessful_validation());
/// assert!(c.on_unsuccessful_validation(), "budget exhausted: abort");
/// ```
#[derive(Debug, Clone)]
pub struct NaiveValidationCounter {
    budget: u32,
    remaining: u32,
}

impl NaiveValidationCounter {
    /// A counter with `bits` bits, i.e. a budget of `2^bits` unsuccessful
    /// validations.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or larger than 16.
    #[must_use]
    pub fn new(bits: u32) -> NaiveValidationCounter {
        assert!(
            (1..=16).contains(&bits),
            "counter bits out of range: {bits}"
        );
        let budget = 1u32 << bits;
        NaiveValidationCounter {
            budget,
            remaining: budget,
        }
    }

    /// Registers an unsuccessful validation attempt. Returns `true` when
    /// the budget is exhausted and the transaction must abort.
    pub fn on_unsuccessful_validation(&mut self) -> bool {
        self.remaining = self.remaining.saturating_sub(1);
        self.remaining == 0
    }

    /// Registers a successful validation: the counter refills.
    pub fn on_successful_validation(&mut self) {
        self.remaining = self.budget;
    }

    /// Refills the budget (new transaction attempt).
    pub fn reset(&mut self) {
        self.remaining = self.budget;
    }

    /// Attempts left before a forced abort.
    #[must_use]
    pub fn remaining(&self) -> u32 {
        self.remaining
    }
}

impl chats_snap::Snap for NaiveValidationCounter {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        self.budget.save(w);
        self.remaining.save(w);
    }
    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        let budget = u32::load(r)?;
        let remaining = u32::load(r)?;
        if budget == 0 || remaining > budget {
            return Err(r.err("naive counter out of range"));
        }
        Ok(NaiveValidationCounter { budget, remaining })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_bits_allow_sixteen_attempts() {
        let mut c = NaiveValidationCounter::new(4);
        for i in 0..15 {
            assert!(
                !c.on_unsuccessful_validation(),
                "attempt {i} must not abort"
            );
        }
        assert!(c.on_unsuccessful_validation());
    }

    #[test]
    fn success_refills() {
        let mut c = NaiveValidationCounter::new(2);
        c.on_unsuccessful_validation();
        c.on_unsuccessful_validation();
        c.on_successful_validation();
        assert_eq!(c.remaining(), 4);
    }

    #[test]
    fn reset_refills() {
        let mut c = NaiveValidationCounter::new(2);
        while !c.on_unsuccessful_validation() {}
        c.reset();
        assert_eq!(c.remaining(), 4);
    }

    #[test]
    fn exhausted_counter_stays_exhausted() {
        let mut c = NaiveValidationCounter::new(1);
        assert!(!c.on_unsuccessful_validation());
        assert!(c.on_unsuccessful_validation());
        assert!(c.on_unsuccessful_validation(), "saturates at zero");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_bits_panics() {
        let _ = NaiveValidationCounter::new(0);
    }
}
