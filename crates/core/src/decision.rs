//! The Figure 3 rule table: when to forward, when to fall back to
//! requester-wins, and how PiCs move.
//!
//! Three pure functions cover the whole protocol surface of CHATS:
//!
//! * [`chats_resolve`] — run by the *producer* (the transaction that owns
//!   the conflicting block and receives the forwarded request),
//! * [`chats_receive_spec`] — run by the *consumer* when a `SpecResp`
//!   arrives,
//! * [`validation_pic_check`] — run by the consumer on every validation
//!   response, catching cycles created by racy, out-of-date PiCs (§IV-C).
//!
//! The invariant these functions maintain: **after any accepted forwarding,
//! the producer's PiC is strictly greater than the consumer's**. Since every
//! edge in the dependency graph therefore goes from a higher PiC to a lower
//! one (at edge-creation time, and producers only ever *raise* their PiC
//! when their own consumptions are validated), no cycle can be accepted.

use crate::pic::{Pic, PicContext, PIC_RANGE};

/// Producer-side outcome of a conflict (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictResolution {
    /// Apply requester-speculates: answer with a `SpecResp` carrying
    /// `local_pic_after`, which the producer must adopt as its own PiC
    /// before responding.
    Forward {
        /// The producer's PiC after this forwarding (always set, and always
        /// strictly greater than the requester's PiC).
        local_pic_after: Pic,
    },
    /// Apply requester-wins: the local (producer) transaction aborts and the
    /// request is serviced with committed data.
    AbortLocal,
}

/// Consumer-side outcome of receiving a `SpecResp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecRespAction {
    /// Consume the speculative value; adopt `new_pic` and set `Cons`.
    Accept {
        /// The consumer's PiC after accepting (unchanged if already set).
        new_pic: Pic,
    },
    /// A cycle (or PiC underflow) was detected; the consumer aborts.
    AbortSelf,
}

/// Decides how a producer resolves a conflicting request (Fig. 3 / §IV-C).
///
/// `local` is the producer's chaining context; `remote` is the PiC carried
/// by the conflicting request. Returns either a forwarding (with the
/// producer's updated PiC) or requester-wins.
///
/// # Example
///
/// ```
/// use chats_core::{chats_resolve, ConflictResolution, Pic, PicContext};
///
/// // Fig. 3D: a consuming transaction (Cons set) may not raise its PiC
/// // past its producer's, so a request from an equal-or-higher PiC aborts it.
/// let local = PicContext { pic: Pic::new(10), cons: true };
/// assert_eq!(chats_resolve(local, Pic::new(10)), ConflictResolution::AbortLocal);
/// ```
#[must_use]
pub fn chats_resolve(local: PicContext, remote: Pic) -> ConflictResolution {
    chats_resolve_bounded(local, remote, PIC_RANGE)
}

/// [`chats_resolve`] for a PiC register with `range` usable positions —
/// the register-width sensitivity experiments. Narrower registers overflow
/// sooner and fall back to requester-wins more often.
///
/// # Panics
///
/// Panics (in debug builds) if `range < 3`.
#[must_use]
pub fn chats_resolve_bounded(local: PicContext, remote: Pic, range: u8) -> ConflictResolution {
    debug_assert!(range >= 3, "unusable PiC range {range}");
    match (local.pic.value(), remote.value()) {
        // Fig. 3A: two unconnected transactions. Producer takes PiC_init.
        (None, None) => forward_if_consumer_fits(Pic::init_for(range)),
        // Fig. 3C: unchained producer joins above a chained requester.
        (None, Some(_)) => match remote.incremented_within(range) {
            Some(p) => forward_if_consumer_fits(p),
            None => ConflictResolution::AbortLocal, // overflow
        },
        // Fig. 3B: chained producer, unchained requester: PiC unchanged.
        (Some(_), None) => forward_if_consumer_fits(local.pic),
        (Some(l), Some(r)) => {
            if r < l {
                // Rule (ii): requester already below us; forward, unchanged.
                // The requester keeps its own (lower) PiC, so no fit check
                // is needed.
                ConflictResolution::Forward {
                    local_pic_after: local.pic,
                }
            } else if local.cons {
                // Fig. 3D/E: we consumed unvalidated data, so raising our
                // PiC could overtake one of our producers: requester-wins.
                ConflictResolution::AbortLocal
            } else {
                // Fig. 3F: all our consumptions validated; overtake the
                // requester.
                match remote.incremented_within(range) {
                    Some(p) => ConflictResolution::Forward { local_pic_after: p },
                    None => ConflictResolution::AbortLocal, // overflow
                }
            }
        }
    }
}

/// Forwards with `pic` unless an *unchained* requester could not adopt
/// `pic - 1` (underflow ⇒ requester-wins, §IV-C).
fn forward_if_consumer_fits(pic: Pic) -> ConflictResolution {
    if pic.decremented().is_some() {
        ConflictResolution::Forward {
            local_pic_after: pic,
        }
    } else {
        ConflictResolution::AbortLocal
    }
}

/// Decides how a consumer reacts to a `SpecResp` carrying `fwd_pic`.
///
/// An unchained consumer adopts `fwd_pic - 1`; a chained consumer keeps its
/// PiC but must verify it is still strictly below the producer's — an
/// equal-or-higher value means a cycle slipped through a race and the
/// consumer aborts.
///
/// # Example
///
/// ```
/// use chats_core::{chats_receive_spec, Pic, PicContext, SpecRespAction};
///
/// let own = PicContext { pic: Pic::unset(), cons: false };
/// match chats_receive_spec(own, Pic::INIT) {
///     SpecRespAction::Accept { new_pic } => assert_eq!(new_pic, Pic::new(14)),
///     SpecRespAction::AbortSelf => unreachable!(),
/// }
/// ```
#[must_use]
pub fn chats_receive_spec(own: PicContext, fwd_pic: Pic) -> SpecRespAction {
    debug_assert!(fwd_pic.is_set(), "a SpecResp always carries a set PiC");
    match own.pic.value() {
        None => match fwd_pic.decremented() {
            Some(p) => SpecRespAction::Accept { new_pic: p },
            None => SpecRespAction::AbortSelf, // underflow
        },
        Some(own_v) => {
            let fwd_v = fwd_pic.value().expect("SpecResp PiC is set");
            if own_v >= fwd_v {
                SpecRespAction::AbortSelf
            } else {
                SpecRespAction::Accept { new_pic: own.pic }
            }
        }
    }
}

/// The legal alternatives at an owner-side conflict, as enumerated for
/// schedule exploration (`chats-check`).
///
/// Whatever [`chats_resolve`] (or a baseline policy) would decide, the
/// coherence protocol itself admits two further outcomes at the same point:
/// the owner may NACK the request (every system retries NACKed requests),
/// or the owner may abort itself and let the requester win (always safe —
/// it is the Baseline resolution). A schedule explorer may substitute
/// either without violating the protocol, which is what makes conflict
/// resolution a *decision point* rather than a fixed function.
///
/// Variant order matters: `from_index(0)` is the default (follow the
/// policy), matching the decision-point convention that choice 0 perturbs
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictOverride {
    /// Resolve exactly as the configured policy dictates.
    FollowPolicy,
    /// NACK the requester; it backs off and retries, the owner keeps going.
    ForceNack,
    /// Abort the owner and service the request with committed data
    /// (requester-wins), regardless of policy.
    ForceRequesterWins,
}

impl ConflictOverride {
    /// Number of alternatives (the decision point's fan-out).
    pub const COUNT: u32 = 3;

    /// Maps a decision choice index to an override; out-of-range indices
    /// clamp to the default.
    #[must_use]
    pub fn from_index(i: u32) -> ConflictOverride {
        match i {
            1 => ConflictOverride::ForceNack,
            2 => ConflictOverride::ForceRequesterWins,
            _ => ConflictOverride::FollowPolicy,
        }
    }

    /// Stable name for traces and reproducers.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ConflictOverride::FollowPolicy => "follow_policy",
            ConflictOverride::ForceNack => "force_nack",
            ConflictOverride::ForceRequesterWins => "force_requester_wins",
        }
    }
}

/// The validation-time PiC check (§IV-B): on any validation response that
/// carries a PiC, the consumer aborts if its own PiC is greater than or
/// equal to the response's. Returns `true` when the transaction must abort.
///
/// This is the safety net for cycles created by stale PiCs in flight.
#[must_use]
pub fn validation_pic_check(own: Pic, response_pic: Pic) -> bool {
    match (own.value(), response_pic.value()) {
        (Some(o), Some(r)) => o >= r,
        // A consumer always has a set PiC; being unset here means the
        // transaction already reset (aborting anyway), so don't signal.
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(pic: Pic, cons: bool) -> PicContext {
        PicContext { pic, cons }
    }

    #[test]
    fn conflict_override_index_zero_is_default() {
        assert_eq!(
            ConflictOverride::from_index(0),
            ConflictOverride::FollowPolicy
        );
        assert_eq!(
            ConflictOverride::from_index(ConflictOverride::COUNT + 5),
            ConflictOverride::FollowPolicy,
            "out-of-range clamps to the default"
        );
        let labels: Vec<_> = (0..ConflictOverride::COUNT)
            .map(|i| ConflictOverride::from_index(i).label())
            .collect();
        assert_eq!(
            labels,
            ["follow_policy", "force_nack", "force_requester_wins"]
        );
    }

    #[test]
    fn fig3a_both_unset_forwards_with_init() {
        let r = chats_resolve(ctx(Pic::unset(), false), Pic::unset());
        assert_eq!(
            r,
            ConflictResolution::Forward {
                local_pic_after: Pic::INIT
            }
        );
    }

    #[test]
    fn fig3b_chained_producer_unchained_requester_keeps_pic() {
        let r = chats_resolve(ctx(Pic::new(20), true), Pic::unset());
        assert_eq!(
            r,
            ConflictResolution::Forward {
                local_pic_after: Pic::new(20)
            }
        );
    }

    #[test]
    fn fig3c_unchained_producer_joins_above_requester() {
        let r = chats_resolve(ctx(Pic::unset(), false), Pic::new(9));
        assert_eq!(
            r,
            ConflictResolution::Forward {
                local_pic_after: Pic::new(10)
            }
        );
    }

    #[test]
    fn fig3d_consumer_with_higher_requester_aborts() {
        let r = chats_resolve(ctx(Pic::new(5), true), Pic::new(9));
        assert_eq!(r, ConflictResolution::AbortLocal);
    }

    #[test]
    fn fig3e_equal_pics_with_cons_aborts() {
        let r = chats_resolve(ctx(Pic::new(5), true), Pic::new(5));
        assert_eq!(r, ConflictResolution::AbortLocal);
    }

    #[test]
    fn fig3f_validated_consumer_overtakes() {
        let r = chats_resolve(ctx(Pic::new(5), false), Pic::new(9));
        assert_eq!(
            r,
            ConflictResolution::Forward {
                local_pic_after: Pic::new(10)
            }
        );
    }

    #[test]
    fn rule_two_lower_requester_forwards_unchanged() {
        // Even while consuming: the requester is already below us.
        let r = chats_resolve(ctx(Pic::new(8), true), Pic::new(3));
        assert_eq!(
            r,
            ConflictResolution::Forward {
                local_pic_after: Pic::new(8)
            }
        );
    }

    #[test]
    fn overflow_falls_back_to_requester_wins() {
        let top = Pic::new(crate::pic::PIC_RANGE - 1);
        assert_eq!(
            chats_resolve(ctx(Pic::unset(), false), top),
            ConflictResolution::AbortLocal
        );
        assert_eq!(
            chats_resolve(ctx(Pic::new(2), false), top),
            ConflictResolution::AbortLocal
        );
    }

    #[test]
    fn underflow_falls_back_to_requester_wins() {
        // Producer at PiC 0 cannot give an unchained requester PiC -1.
        assert_eq!(
            chats_resolve(ctx(Pic::new(0), false), Pic::unset()),
            ConflictResolution::AbortLocal
        );
    }

    #[test]
    fn consumer_accepts_and_adopts_lower_pic() {
        match chats_receive_spec(ctx(Pic::unset(), false), Pic::new(12)) {
            SpecRespAction::Accept { new_pic } => assert_eq!(new_pic, Pic::new(11)),
            SpecRespAction::AbortSelf => panic!("must accept"),
        }
    }

    #[test]
    fn chained_consumer_keeps_its_pic() {
        match chats_receive_spec(ctx(Pic::new(4), true), Pic::new(12)) {
            SpecRespAction::Accept { new_pic } => assert_eq!(new_pic, Pic::new(4)),
            SpecRespAction::AbortSelf => panic!("must accept"),
        }
    }

    #[test]
    fn consumer_detects_inverted_pic_and_aborts() {
        assert_eq!(
            chats_receive_spec(ctx(Pic::new(12), true), Pic::new(12)),
            SpecRespAction::AbortSelf
        );
        assert_eq!(
            chats_receive_spec(ctx(Pic::new(13), true), Pic::new(12)),
            SpecRespAction::AbortSelf
        );
    }

    #[test]
    fn consumer_underflow_aborts() {
        assert_eq!(
            chats_receive_spec(ctx(Pic::unset(), false), Pic::new(0)),
            SpecRespAction::AbortSelf
        );
    }

    #[test]
    fn validation_check_flags_cycles() {
        assert!(validation_pic_check(Pic::new(9), Pic::new(9)));
        assert!(validation_pic_check(Pic::new(10), Pic::new(9)));
        assert!(!validation_pic_check(Pic::new(8), Pic::new(9)));
        assert!(!validation_pic_check(Pic::unset(), Pic::new(9)));
    }

    /// The paper's central claim, checked exhaustively for the producer
    /// side: whenever `chats_resolve` forwards, the producer's PiC after
    /// the forwarding is strictly greater than the PiC the consumer ends up
    /// with.
    #[test]
    fn forwarding_always_orders_producer_above_consumer() {
        let pics: Vec<Pic> = std::iter::once(Pic::unset())
            .chain((0..crate::pic::PIC_RANGE).map(Pic::new))
            .collect();
        for &local_pic in &pics {
            for cons in [false, true] {
                for &remote in &pics {
                    let local = ctx(local_pic, cons);
                    if let ConflictResolution::Forward { local_pic_after } =
                        chats_resolve(local, remote)
                    {
                        let producer = local_pic_after.value().expect("forward sets PiC");
                        // What does the consumer end up with?
                        let consumer_after =
                            match chats_receive_spec(ctx(remote, remote.is_set()), local_pic_after)
                            {
                                SpecRespAction::Accept { new_pic } => new_pic,
                                SpecRespAction::AbortSelf => continue, // no edge created
                            };
                        let consumer = consumer_after.value().expect("consumer PiC set");
                        assert!(
                            producer > consumer,
                            "{local_pic:?}/{cons} vs {remote:?}: producer {producer} !> consumer {consumer}"
                        );
                    }
                }
            }
        }
    }
}
