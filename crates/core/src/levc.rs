//! LEVC-BE-Idealized: the comparison system of §VI-B and Figure 11.
//!
//! A best-effort adaptation of Limited Early Value Communication (Pant &
//! Byrd) with *idealized* timestamps: globally unique, never rolling over,
//! acquired instantly at transaction begin and carried by every coherence
//! message at no cost. Its restrictions, as described by the paper:
//!
//! * a producer may forward speculative data to **one** consumer only,
//! * chains longer than 1 are disallowed — a transaction that has consumed
//!   speculative data cannot itself forward, and a producer cannot consume,
//! * stalling (requester-stall) is the base policy, with timestamp-ordered
//!   deadlock avoidance: an *older* requester never waits on a younger
//!   owner (the owner aborts instead),
//! * the scheme is unaware of forwarding dependencies, which is what makes
//!   it liable to wasted forwardings (§II).

use std::fmt;

/// An idealized transaction timestamp: smaller is older.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Timestamp(pub u64);

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts{}", self.0)
    }
}

/// Global monotonic timestamp source.
#[derive(Debug, Clone, Default)]
pub struct TimestampSource {
    next: u64,
}

impl TimestampSource {
    /// A source starting at zero.
    #[must_use]
    pub fn new() -> TimestampSource {
        TimestampSource::default()
    }

    /// Issues the next timestamp (at transaction begin).
    pub fn issue(&mut self) -> Timestamp {
        let t = Timestamp(self.next);
        self.next += 1;
        t
    }
}

impl chats_snap::Snap for Timestamp {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        w.u64(self.0);
    }
    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        Ok(Timestamp(r.u64()?))
    }
}

impl chats_snap::Snap for TimestampSource {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        w.u64(self.next);
    }
    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        Ok(TimestampSource { next: r.u64()? })
    }
}

impl chats_snap::Snap for LevcArbiter {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        self.ts.save(w);
        self.has_forwarded.save(w);
        self.has_consumed.save(w);
    }
    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        Ok(LevcArbiter {
            ts: chats_snap::Snap::load(r)?,
            has_forwarded: chats_snap::Snap::load(r)?,
            has_consumed: chats_snap::Snap::load(r)?,
        })
    }
}

/// Producer-side decision for a conflict under LEVC-BE-Idealized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevcDecision {
    /// Forward speculative data (and remember the consumer).
    Forward,
    /// Nack: the requester stalls and retries later.
    Stall,
    /// The local (owner) transaction aborts (older requester wins).
    AbortLocal,
}

/// Per-transaction LEVC forwarding state for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevcArbiter {
    /// This transaction's timestamp (`None` outside a transaction).
    pub ts: Option<Timestamp>,
    /// Whether we already forwarded to some consumer (limit: one).
    pub has_forwarded: bool,
    /// Whether we consumed speculative data (then we may not forward).
    pub has_consumed: bool,
}

impl LevcArbiter {
    /// Fresh state at transaction begin.
    #[must_use]
    pub fn begin(ts: Timestamp) -> LevcArbiter {
        LevcArbiter {
            ts: Some(ts),
            has_forwarded: false,
            has_consumed: false,
        }
    }

    /// Resolves a conflicting request from a transaction with timestamp
    /// `remote_ts` (consumers must be *younger* than producers so commit
    /// order matches timestamp order).
    #[must_use]
    pub fn resolve(&self, remote_ts: Timestamp, remote_has_consumed: bool) -> LevcDecision {
        let own = match self.ts {
            Some(t) => t,
            None => return LevcDecision::AbortLocal, // not in a tx: nothing to protect
        };
        if remote_ts < own {
            // Older requester must not wait on us: requester wins.
            return LevcDecision::AbortLocal;
        }
        // Younger requester. Forward if all LEVC restrictions hold:
        // single consumer, no chains (neither side already in a chain).
        if !self.has_forwarded && !self.has_consumed && !remote_has_consumed {
            LevcDecision::Forward
        } else {
            LevcDecision::Stall
        }
    }

    /// Marks a forwarding done (producer side).
    pub fn note_forwarded(&mut self) {
        self.has_forwarded = true;
    }

    /// Marks a consumption done (consumer side).
    pub fn note_consumed(&mut self) {
        self.has_consumed = true;
    }

    /// Clears everything (commit or abort).
    pub fn reset(&mut self) {
        *self = LevcArbiter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_are_monotonic() {
        let mut src = TimestampSource::new();
        let a = src.issue();
        let b = src.issue();
        assert!(a < b);
    }

    #[test]
    fn older_requester_wins() {
        let owner = LevcArbiter::begin(Timestamp(10));
        assert_eq!(owner.resolve(Timestamp(3), false), LevcDecision::AbortLocal);
    }

    #[test]
    fn younger_requester_gets_forwarded_once() {
        let mut owner = LevcArbiter::begin(Timestamp(3));
        assert_eq!(owner.resolve(Timestamp(10), false), LevcDecision::Forward);
        owner.note_forwarded();
        // Second consumer: the single-consumer restriction stalls it.
        assert_eq!(owner.resolve(Timestamp(11), false), LevcDecision::Stall);
    }

    #[test]
    fn consumers_cannot_forward() {
        let mut owner = LevcArbiter::begin(Timestamp(3));
        owner.note_consumed();
        assert_eq!(owner.resolve(Timestamp(10), false), LevcDecision::Stall);
    }

    #[test]
    fn consumers_cannot_consume_again_via_remote_flag() {
        let owner = LevcArbiter::begin(Timestamp(3));
        // The requester already consumed from someone: chain length would
        // exceed 1, so stall it.
        assert_eq!(owner.resolve(Timestamp(10), true), LevcDecision::Stall);
    }

    #[test]
    fn outside_transaction_never_blocks() {
        let idle = LevcArbiter::default();
        assert_eq!(idle.resolve(Timestamp(0), false), LevcDecision::AbortLocal);
    }

    #[test]
    fn reset_clears_flags() {
        let mut a = LevcArbiter::begin(Timestamp(1));
        a.note_forwarded();
        a.note_consumed();
        a.reset();
        assert_eq!(a, LevcArbiter::default());
    }
}
