//! The PowerTM-style power token.
//!
//! At most one transaction in the system holds elevated priority at a
//! time (§VI-B "Power transactions"). Conflicts involving a power
//! transaction are always resolved in its favour; power transactions may
//! nack requesters without invalidating their own data. In PCHATS, power
//! transactions are exclusively *producers* of speculative data and sit at
//! the top of every chain without needing a PiC.

/// The global single power token.
///
/// # Example
///
/// ```
/// use chats_core::PowerToken;
/// let mut t = PowerToken::new();
/// assert!(t.try_acquire(0));
/// assert!(!t.try_acquire(1), "only one power transaction at a time");
/// t.release(0);
/// assert!(t.try_acquire(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PowerToken {
    holder: Option<usize>,
    grants: u64,
    denials: u64,
}

impl PowerToken {
    /// An unheld token.
    #[must_use]
    pub fn new() -> PowerToken {
        PowerToken::default()
    }

    /// Attempts to grant elevated priority to `core`. Idempotent for the
    /// current holder.
    pub fn try_acquire(&mut self, core: usize) -> bool {
        match self.holder {
            None => {
                self.holder = Some(core);
                self.grants += 1;
                true
            }
            Some(h) if h == core => true,
            Some(_) => {
                self.denials += 1;
                false
            }
        }
    }

    /// Drops elevated priority (commit or abort of the power transaction).
    /// Releasing without holding is a no-op for other cores' safety.
    pub fn release(&mut self, core: usize) {
        if self.holder == Some(core) {
            self.holder = None;
        }
    }

    /// Core currently running with elevated priority.
    #[must_use]
    pub fn holder(&self) -> Option<usize> {
        self.holder
    }

    /// `true` if `core` is the power transaction.
    #[must_use]
    pub fn is_power(&self, core: usize) -> bool {
        self.holder == Some(core)
    }

    /// Total successful grants (a pressure metric).
    #[must_use]
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Total denied requests (a contention metric).
    #[must_use]
    pub fn denials(&self) -> u64 {
        self.denials
    }
}

impl chats_snap::Snap for PowerToken {
    fn save(&self, w: &mut chats_snap::SnapWriter) {
        self.holder.save(w);
        self.grants.save(w);
        self.denials.save(w);
    }
    fn load(r: &mut chats_snap::SnapReader<'_>) -> Result<Self, chats_snap::SnapError> {
        Ok(PowerToken {
            holder: chats_snap::Snap::load(r)?,
            grants: chats_snap::Snap::load(r)?,
            denials: chats_snap::Snap::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_grant() {
        let mut t = PowerToken::new();
        assert!(t.try_acquire(5));
        assert!(t.is_power(5));
        assert!(!t.is_power(6));
        assert!(!t.try_acquire(6));
        assert_eq!(t.holder(), Some(5));
    }

    #[test]
    fn reacquire_is_idempotent() {
        let mut t = PowerToken::new();
        assert!(t.try_acquire(1));
        assert!(t.try_acquire(1));
        assert_eq!(t.grants(), 1);
    }

    #[test]
    fn release_then_regrant() {
        let mut t = PowerToken::new();
        t.try_acquire(1);
        t.release(1);
        assert_eq!(t.holder(), None);
        assert!(t.try_acquire(2));
    }

    #[test]
    fn foreign_release_is_ignored() {
        let mut t = PowerToken::new();
        t.try_acquire(1);
        t.release(2);
        assert!(t.is_power(1));
    }

    #[test]
    fn counters_track_pressure() {
        let mut t = PowerToken::new();
        t.try_acquire(0);
        t.try_acquire(1);
        t.try_acquire(2);
        assert_eq!(t.grants(), 1);
        assert_eq!(t.denials(), 2);
    }
}
