//! The six evaluated HTM systems and their configuration (Table II).

use std::fmt;

/// Which transactional blocks are eligible for speculative forwarding
/// (§VI-D "Blocks that can be forwarded").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ForwardSet {
    /// `R/W`: read- and write-set blocks may be forwarded.
    ReadWrite,
    /// `W`: only write-set blocks may be forwarded.
    WriteOnly,
    /// `Rrestrict/W`: read- and write-set blocks, but a heuristic skips
    /// blocks with an in-flight local exclusive request (they are about to
    /// be overwritten, so forwarding them would just seed misvalidations).
    RestrictedReadWrite,
}

impl ForwardSet {
    /// `true` if read-set (unmodified) blocks may be forwarded at all.
    #[must_use]
    pub fn forwards_read_set(self) -> bool {
        !matches!(self, ForwardSet::WriteOnly)
    }

    /// `true` if the in-flight-GETX heuristic applies.
    #[must_use]
    pub fn restricts_inflight_writes(self) -> bool {
        matches!(self, ForwardSet::RestrictedReadWrite)
    }

    /// Table/figure label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ForwardSet::ReadWrite => "R/W",
            ForwardSet::WriteOnly => "W",
            ForwardSet::RestrictedReadWrite => "Rrestrict/W",
        }
    }
}

impl fmt::Display for ForwardSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The HTM system under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum HtmSystem {
    /// Intel-RTM-like best-effort baseline: requester-wins, lazy
    /// versioning, eager conflict detection.
    Baseline,
    /// Naive requester-speculates: always forward, bounded-misvalidation
    /// escape counter.
    NaiveRs,
    /// CHATS: PiC-guided chaining (the paper's proposal).
    Chats,
    /// PowerTM-style dual priority with nacks, no forwarding.
    Power,
    /// CHATS combined with PowerTM (power transactions produce only).
    Pchats,
    /// Best-effort adaptation of LEVC with idealized timestamps.
    LevcBeIdealized,
}

impl HtmSystem {
    /// All systems in the paper's plotting order.
    pub const ALL: [HtmSystem; 6] = [
        HtmSystem::Baseline,
        HtmSystem::NaiveRs,
        HtmSystem::Chats,
        HtmSystem::Power,
        HtmSystem::Pchats,
        HtmSystem::LevcBeIdealized,
    ];

    /// Figure label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            HtmSystem::Baseline => "Baseline",
            HtmSystem::NaiveRs => "Naive R-S",
            HtmSystem::Chats => "CHATS",
            HtmSystem::Power => "Power",
            HtmSystem::Pchats => "PCHATS",
            HtmSystem::LevcBeIdealized => "LEVC-BE-Id",
        }
    }

    /// `true` for systems that can forward speculative values.
    #[must_use]
    pub fn forwards(self) -> bool {
        !matches!(self, HtmSystem::Baseline | HtmSystem::Power)
    }

    /// `true` for systems using the power token.
    #[must_use]
    pub fn uses_power_token(self) -> bool {
        matches!(self, HtmSystem::Power | HtmSystem::Pchats)
    }
}

impl fmt::Display for HtmSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Full per-system configuration: Table II of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PolicyConfig {
    /// The system being run.
    pub system: HtmSystem,
    /// Forwardable-block selection (meaningless for non-forwarding systems).
    pub forward_set: ForwardSet,
    /// Transactional retries before the fallback path.
    pub retries: u32,
    /// VSB entries (max simultaneously speculated blocks).
    pub vsb_size: usize,
    /// Cycles between validation probes; `0` means validation only happens
    /// when commit is attempted (the LEVC-BE-Idealized setting).
    pub validation_interval: u64,
    /// Conflict-induced aborts before requesting the power token
    /// (power-based systems only).
    pub power_threshold: u32,
    /// Bits of the naive misvalidation counter (Naive R-S only).
    pub naive_counter_bits: u32,
    /// Design-choice ablations (all off in the paper's configurations).
    pub ablation: Ablation,
    /// PiC register width in bits (the paper uses 5); the usable range is
    /// `2^bits - 1` positions plus the reserved PiC∅ encoding.
    pub pic_bits: u32,
}

/// Ablations of individual CHATS design choices, used by the ablation
/// harness to quantify what each mechanism contributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ablation {
    /// Disable the Fig. 3F rule: a transaction whose consumptions are all
    /// validated may NOT raise its PiC past a higher requester; the
    /// conflict resolves requester-wins instead. Quantifies how much of
    /// CHATS's win comes from letting chains re-link after validation.
    pub no_pic_overtake: bool,
    /// Restrict chains to a single link, like prior work (LEVC): a
    /// transaction already in a chain (set PiC) never forwards again.
    /// Quantifies the value of arbitrary-length chains.
    pub single_link_chains: bool,
}

impl PolicyConfig {
    /// The Table II configuration for `system`.
    #[must_use]
    pub fn for_system(system: HtmSystem) -> PolicyConfig {
        let base = PolicyConfig {
            system,
            forward_set: ForwardSet::RestrictedReadWrite,
            retries: 6,
            vsb_size: 4,
            validation_interval: 50,
            power_threshold: 2,
            naive_counter_bits: 4,
            ablation: Ablation::default(),
            pic_bits: 5,
        };
        match system {
            HtmSystem::Baseline => PolicyConfig { retries: 6, ..base },
            HtmSystem::NaiveRs => PolicyConfig { retries: 2, ..base },
            HtmSystem::Chats => PolicyConfig {
                retries: 32,
                ..base
            },
            HtmSystem::Power => PolicyConfig { retries: 2, ..base },
            HtmSystem::Pchats => PolicyConfig { retries: 1, ..base },
            HtmSystem::LevcBeIdealized => PolicyConfig {
                retries: 64,
                validation_interval: 0,
                ..base
            },
        }
    }

    /// Builder-style override of the retry threshold (Fig. 9 sweeps).
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> PolicyConfig {
        self.retries = retries;
        self
    }

    /// Builder-style override of the VSB size (Fig. 10 sweeps).
    #[must_use]
    pub fn with_vsb_size(mut self, vsb_size: usize) -> PolicyConfig {
        self.vsb_size = vsb_size;
        self
    }

    /// Builder-style override of the validation interval (Fig. 10 sweeps).
    #[must_use]
    pub fn with_validation_interval(mut self, interval: u64) -> PolicyConfig {
        self.validation_interval = interval;
        self
    }

    /// Builder-style override of the forwardable-block set (Fig. 8 sweeps).
    #[must_use]
    pub fn with_forward_set(mut self, fs: ForwardSet) -> PolicyConfig {
        self.forward_set = fs;
        self
    }

    /// Builder-style override of the ablation flags.
    #[must_use]
    pub fn with_ablation(mut self, ablation: Ablation) -> PolicyConfig {
        self.ablation = ablation;
        self
    }

    /// Builder-style override of the PiC register width (the PiC-width
    /// sensitivity experiment).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `2..=7`.
    #[must_use]
    pub fn with_pic_bits(mut self, bits: u32) -> PolicyConfig {
        assert!((2..=7).contains(&bits), "PiC width {bits} out of 2..=7");
        self.pic_bits = bits;
        self
    }

    /// Usable PiC positions for the configured register width.
    #[must_use]
    pub fn pic_range(&self) -> u8 {
        ((1u32 << self.pic_bits) - 1) as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_two_retries() {
        assert_eq!(PolicyConfig::for_system(HtmSystem::Baseline).retries, 6);
        assert_eq!(PolicyConfig::for_system(HtmSystem::NaiveRs).retries, 2);
        assert_eq!(PolicyConfig::for_system(HtmSystem::Chats).retries, 32);
        assert_eq!(PolicyConfig::for_system(HtmSystem::Power).retries, 2);
        assert_eq!(PolicyConfig::for_system(HtmSystem::Pchats).retries, 1);
        assert_eq!(
            PolicyConfig::for_system(HtmSystem::LevcBeIdealized).retries,
            64
        );
    }

    #[test]
    fn table_two_vsb_and_validation() {
        for s in [HtmSystem::NaiveRs, HtmSystem::Chats, HtmSystem::Pchats] {
            let c = PolicyConfig::for_system(s);
            assert_eq!(c.vsb_size, 4);
            assert_eq!(c.validation_interval, 50);
        }
        let levc = PolicyConfig::for_system(HtmSystem::LevcBeIdealized);
        assert_eq!(levc.vsb_size, 4);
        assert_eq!(levc.validation_interval, 0);
    }

    #[test]
    fn forwarding_capability_matches_paper() {
        assert!(!HtmSystem::Baseline.forwards());
        assert!(!HtmSystem::Power.forwards());
        assert!(HtmSystem::Chats.forwards());
        assert!(HtmSystem::Pchats.forwards());
        assert!(HtmSystem::NaiveRs.forwards());
        assert!(HtmSystem::LevcBeIdealized.forwards());
    }

    #[test]
    fn power_token_usage() {
        assert!(HtmSystem::Power.uses_power_token());
        assert!(HtmSystem::Pchats.uses_power_token());
        assert!(!HtmSystem::Chats.uses_power_token());
    }

    #[test]
    fn forward_set_predicates() {
        assert!(ForwardSet::ReadWrite.forwards_read_set());
        assert!(!ForwardSet::WriteOnly.forwards_read_set());
        assert!(ForwardSet::RestrictedReadWrite.forwards_read_set());
        assert!(ForwardSet::RestrictedReadWrite.restricts_inflight_writes());
        assert!(!ForwardSet::ReadWrite.restricts_inflight_writes());
    }

    #[test]
    fn builders_override() {
        let c = PolicyConfig::for_system(HtmSystem::Chats)
            .with_retries(8)
            .with_vsb_size(16)
            .with_validation_interval(200)
            .with_forward_set(ForwardSet::WriteOnly);
        assert_eq!(c.retries, 8);
        assert_eq!(c.vsb_size, 16);
        assert_eq!(c.validation_interval, 200);
        assert_eq!(c.forward_set, ForwardSet::WriteOnly);
    }

    #[test]
    fn pic_width_defaults_to_five_bits() {
        let c = PolicyConfig::for_system(HtmSystem::Chats);
        assert_eq!(c.pic_bits, 5);
        assert_eq!(c.pic_range(), 31);
        assert_eq!(c.with_pic_bits(3).pic_range(), 7);
    }

    #[test]
    #[should_panic(expected = "out of 2..=7")]
    fn pic_width_bounds_enforced() {
        let _ = PolicyConfig::for_system(HtmSystem::Chats).with_pic_bits(8);
    }

    #[test]
    fn ablations_default_off() {
        let c = PolicyConfig::for_system(HtmSystem::Chats);
        assert!(!c.ablation.no_pic_overtake);
        assert!(!c.ablation.single_link_chains);
        let ab = Ablation {
            no_pic_overtake: true,
            single_link_chains: false,
        };
        assert!(c.with_ablation(ab).ablation.no_pic_overtake);
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = HtmSystem::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), HtmSystem::ALL.len());
    }
}
