#![warn(missing_docs)]

//! Deterministic fault injection for the CHATS simulator.
//!
//! CHATS is a *best-effort* HTM: the paper's guarantees assume transactions
//! can spuriously abort at any time and that the fallback path serializes
//! when optimism fails. This crate supplies the adversary that exercises
//! those guarantees: a serializable, content-hashable [`FaultPlan`]
//! scheduling
//!
//! * **NoC perturbations** — per-message delay jitter, bounded reordering
//!   (hold-back windows that let later messages overtake), duplication, and
//!   drop-with-timeout on retryable demand requests;
//! * **HTM best-effort events** — spurious abort storms, per-core freeze and
//!   slowdown windows, forced VSB evictions;
//! * **protocol stress** — validation-response delays (and, for directed
//!   tests, outright validation-response drops) that push chains toward the
//!   retry threshold.
//!
//! The runtime side is [`FaultState`]: the plan plus a dedicated
//! [`chats_sim::SimRng`] stream seeded from `machine seed ^ plan hash`, so
//!
//! 1. identical `(seed, plan)` pairs inject identical faults — runs are
//!    bit-reproducible, and failing schedules shrink and replay;
//! 2. the machine's own RNG stream is never touched — with no plan
//!    installed (or an [empty](FaultPlan::is_empty) one) the simulator is
//!    bit-identical to a build without this crate.
//!
//! Probabilities are integer **permille** (0–1000) so plans serialize
//! exactly and hash stably; no floats anywhere.
//!
//! # Example
//!
//! ```
//! use chats_faults::{FaultKind, FaultPlan, FaultState};
//!
//! let plan = FaultPlan::lossy_noc();
//! let text = plan.to_value().to_json();
//! let back = FaultPlan::from_value(&serde::Value::from_json(&text).unwrap()).unwrap();
//! assert_eq!(back, plan);
//! assert_eq!(back.hash(), plan.hash());
//!
//! let mut st = FaultState::new(plan, 0xC4A75);
//! let mut delayed = 0;
//! for _ in 0..1000 {
//!     if st.delay_jitter().is_some() {
//!         delayed += 1;
//!     }
//! }
//! assert!(delayed > 0);
//! assert_eq!(st.injected(FaultKind::Delay), delayed);
//! ```

use chats_sim::SimRng;
use serde::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Format marker embedded in serialized plans and their canonical hash
/// text, so layout changes invalidate cache keys instead of aliasing them.
pub const FAULT_FORMAT_VERSION: u64 = 1;

/// FNV-1a over `bytes` (the same construction the runner uses for job
/// identity; duplicated here because `chats-faults` sits *below* the
/// runner in the dependency graph).
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The category of one injected fault, carried on `FaultInjected` trace
/// events and tallied by [`FaultState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FaultKind {
    /// Extra per-message NoC latency (delay jitter).
    Delay,
    /// A message held back within the reorder window, letting later
    /// messages overtake it (bounded reordering).
    Reorder,
    /// A message delivered twice (the protocol's epoch and
    /// matching guards absorb the duplicate).
    Duplicate,
    /// A retryable demand request dropped; the requester re-issues after
    /// its drop timeout.
    Drop,
    /// A spurious (environmental) transaction abort.
    SpuriousAbort,
    /// A core frozen for a window of cycles (interrupt / SMM-style).
    Freeze,
    /// A core slowed for a short window (frequency droop-style).
    Slowdown,
    /// A speculatively received line force-evicted from the VSB, aborting
    /// the consumer.
    VsbEvict,
    /// A validation response held back for extra cycles.
    ValidationDelay,
    /// A validation response dropped outright (directed hang tests — the
    /// protocol has no retry on this path; the watchdog must catch it).
    ValidationDrop,
}

impl FaultKind {
    /// Every kind, in display order.
    pub const ALL: [FaultKind; 10] = [
        FaultKind::Delay,
        FaultKind::Reorder,
        FaultKind::Duplicate,
        FaultKind::Drop,
        FaultKind::SpuriousAbort,
        FaultKind::Freeze,
        FaultKind::Slowdown,
        FaultKind::VsbEvict,
        FaultKind::ValidationDelay,
        FaultKind::ValidationDrop,
    ];

    /// Stable kebab-case label (trace displays, reports, JSON keys).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Delay => "delay",
            FaultKind::Reorder => "reorder",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Drop => "drop",
            FaultKind::SpuriousAbort => "spurious-abort",
            FaultKind::Freeze => "freeze",
            FaultKind::Slowdown => "slowdown",
            FaultKind::VsbEvict => "vsb-evict",
            FaultKind::ValidationDelay => "validation-delay",
            FaultKind::ValidationDrop => "validation-drop",
        }
    }

    fn index(self) -> usize {
        FaultKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("kind in ALL")
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// NoC perturbation schedule: applies to every message injected into the
/// crossbar (drops are restricted to retryable demand requests — see
/// [`FaultKind::Drop`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NocFaults {
    /// Permille chance a message gets extra delay.
    pub delay_permille: u32,
    /// Maximum extra delay in cycles (uniform in `1..=delay_max`).
    pub delay_max: u64,
    /// Permille chance a message is held back a full reorder window.
    pub reorder_permille: u32,
    /// Hold-back window in cycles — messages sent up to this much later
    /// can overtake the held message.
    pub reorder_window: u64,
    /// Permille chance a message is delivered twice.
    pub duplicate_permille: u32,
    /// Permille chance a *retryable demand request* is dropped.
    pub drop_permille: u32,
    /// Requester-side retry timeout after a dropped demand request, in
    /// cycles.
    pub drop_timeout: u64,
}

/// Best-effort HTM event schedule: spurious aborts, core freezes and
/// slowdowns, forced VSB evictions. Rolled once per core-step event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HtmFaults {
    /// Permille chance (per core step, inside a storm window) that a
    /// running transaction spuriously aborts.
    pub spurious_abort_permille: u32,
    /// Storm period in cycles; `0` means spurious aborts are eligible at
    /// any time instead of only inside storm windows.
    pub storm_period: u64,
    /// Storm window length in cycles (aborts fire only while
    /// `cycle % storm_period < storm_len` when `storm_period > 0`).
    pub storm_len: u64,
    /// Permille chance (per core step) the core freezes.
    pub freeze_permille: u32,
    /// Freeze duration in cycles.
    pub freeze_cycles: u64,
    /// Permille chance (per core step) the core is briefly slowed.
    pub slowdown_permille: u32,
    /// Slowdown stall in cycles (much shorter than a freeze).
    pub slowdown_cycles: u64,
    /// Permille chance (per core step) a held VSB entry is force-evicted,
    /// aborting the consumer with a capacity cause.
    pub vsb_evict_permille: u32,
}

/// Protocol stress schedule: validation-response perturbation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProtocolFaults {
    /// Permille chance a validation data response is held back.
    pub validation_delay_permille: u32,
    /// Maximum validation-response hold-back in cycles (uniform in
    /// `1..=validation_delay_max`).
    pub validation_delay_max: u64,
    /// Absolute number of validation data responses to *drop* (directed
    /// hang tests; the watchdog converts the resulting livelock into a
    /// structured failure report).
    pub drop_validation_data: u64,
}

/// A complete, serializable fault schedule.
///
/// Plans are content-hashable ([`FaultPlan::hash`]) the same way runner job
/// specs are, so they participate in cache keys; an
/// [empty](FaultPlan::is_empty) plan never perturbs anything and never
/// contributes to a cache key.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Human-readable plan name (manifests, reports, artifact names).
    pub name: String,
    /// Extra salt folded into the fault RNG stream, so two otherwise
    /// identical plans can inject differently.
    pub seed_salt: u64,
    /// Progress-watchdog horizon in cycles: a non-halted core making no
    /// commit progress for this long trips the watchdog. `0` leaves the
    /// watchdog unarmed.
    pub watchdog_horizon: u64,
    /// NoC perturbations.
    pub noc: NocFaults,
    /// HTM best-effort events.
    pub htm: HtmFaults,
    /// Protocol stress.
    pub protocol: ProtocolFaults,
}

fn get_u64(m: &BTreeMap<String, Value>, key: &str) -> u64 {
    m.get(key).and_then(Value::as_u64).unwrap_or(0)
}

fn get_permille(m: &BTreeMap<String, Value>, key: &str) -> Result<u32, String> {
    let v = get_u64(m, key);
    if v > 1000 {
        return Err(format!("fault plan: '{key}' = {v} exceeds 1000 permille"));
    }
    Ok(v as u32)
}

fn section<'a>(
    v: &'a Value,
    key: &str,
) -> Result<std::borrow::Cow<'a, BTreeMap<String, Value>>, String> {
    match v.as_map().and_then(|m| m.get(key)) {
        None => Ok(std::borrow::Cow::Owned(BTreeMap::new())),
        Some(s) => s
            .as_map()
            .map(std::borrow::Cow::Borrowed)
            .ok_or_else(|| format!("fault plan: '{key}' is not an object")),
    }
}

impl FaultPlan {
    /// `true` when the plan schedules no injection at all (probabilities
    /// and drop counters all zero). Empty plans are guaranteed not to
    /// perturb a run — embedders skip installing fault state entirely.
    /// The watchdog horizon is deliberately *not* part of emptiness: a
    /// watch-only plan observes without perturbing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.noc == NocFaults::default()
            && self.htm == HtmFaults::default()
            && self.protocol == ProtocolFaults::default()
    }

    /// Canonical text form: every knob in a fixed order. Two plans are
    /// behaviorally identical iff their canonical forms are equal, and
    /// [`FaultPlan::hash`] is FNV-1a over this text.
    #[must_use]
    pub fn canonical(&self) -> String {
        let n = &self.noc;
        let h = &self.htm;
        let p = &self.protocol;
        format!(
            "faultplan.v{FAULT_FORMAT_VERSION}|name={}|salt={}|wd={}\
             |noc={},{},{},{},{},{},{}\
             |htm={},{},{},{},{},{},{},{}\
             |proto={},{},{}",
            self.name,
            self.seed_salt,
            self.watchdog_horizon,
            n.delay_permille,
            n.delay_max,
            n.reorder_permille,
            n.reorder_window,
            n.duplicate_permille,
            n.drop_permille,
            n.drop_timeout,
            h.spurious_abort_permille,
            h.storm_period,
            h.storm_len,
            h.freeze_permille,
            h.freeze_cycles,
            h.slowdown_permille,
            h.slowdown_cycles,
            h.vsb_evict_permille,
            p.validation_delay_permille,
            p.validation_delay_max,
            p.drop_validation_data,
        )
    }

    /// Content hash of the plan (cache keys, reproducer filenames).
    #[must_use]
    pub fn hash(&self) -> u64 {
        fnv1a_64(self.canonical().as_bytes())
    }

    /// The plan as a JSON value tree (the `plans/*.json` on-disk format).
    #[must_use]
    pub fn to_value(&self) -> Value {
        let n = &self.noc;
        let h = &self.htm;
        let p = &self.protocol;
        let noc: BTreeMap<String, Value> = [
            ("delay_permille", u64::from(n.delay_permille)),
            ("delay_max", n.delay_max),
            ("reorder_permille", u64::from(n.reorder_permille)),
            ("reorder_window", n.reorder_window),
            ("duplicate_permille", u64::from(n.duplicate_permille)),
            ("drop_permille", u64::from(n.drop_permille)),
            ("drop_timeout", n.drop_timeout),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), Value::U64(v)))
        .collect();
        let htm: BTreeMap<String, Value> = [
            (
                "spurious_abort_permille",
                u64::from(h.spurious_abort_permille),
            ),
            ("storm_period", h.storm_period),
            ("storm_len", h.storm_len),
            ("freeze_permille", u64::from(h.freeze_permille)),
            ("freeze_cycles", h.freeze_cycles),
            ("slowdown_permille", u64::from(h.slowdown_permille)),
            ("slowdown_cycles", h.slowdown_cycles),
            ("vsb_evict_permille", u64::from(h.vsb_evict_permille)),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), Value::U64(v)))
        .collect();
        let proto: BTreeMap<String, Value> = [
            (
                "validation_delay_permille",
                u64::from(p.validation_delay_permille),
            ),
            ("validation_delay_max", p.validation_delay_max),
            ("drop_validation_data", p.drop_validation_data),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), Value::U64(v)))
        .collect();
        Value::Map(
            [
                ("version".to_string(), Value::U64(FAULT_FORMAT_VERSION)),
                ("name".to_string(), Value::Str(self.name.clone())),
                ("seed_salt".to_string(), Value::U64(self.seed_salt)),
                (
                    "watchdog_horizon".to_string(),
                    Value::U64(self.watchdog_horizon),
                ),
                ("noc".to_string(), Value::Map(noc)),
                ("htm".to_string(), Value::Map(htm)),
                ("protocol".to_string(), Value::Map(proto)),
            ]
            .into_iter()
            .collect(),
        )
    }

    /// Inverse of [`FaultPlan::to_value`]. Missing knobs default to zero,
    /// so hand-written plans only need the faults they arm.
    ///
    /// # Errors
    ///
    /// Returns a message for non-object input, an unsupported `version`,
    /// or a permille knob above 1000.
    pub fn from_value(v: &Value) -> Result<FaultPlan, String> {
        let top = v.as_map().ok_or("fault plan: not a JSON object")?;
        let version = top
            .get("version")
            .and_then(Value::as_u64)
            .unwrap_or(FAULT_FORMAT_VERSION);
        if version != FAULT_FORMAT_VERSION {
            return Err(format!("fault plan: unsupported version {version}"));
        }
        let n = section(v, "noc")?;
        let h = section(v, "htm")?;
        let p = section(v, "protocol")?;
        Ok(FaultPlan {
            name: top
                .get("name")
                .and_then(Value::as_str)
                .unwrap_or("unnamed")
                .to_string(),
            seed_salt: get_u64(top, "seed_salt"),
            watchdog_horizon: get_u64(top, "watchdog_horizon"),
            noc: NocFaults {
                delay_permille: get_permille(&n, "delay_permille")?,
                delay_max: get_u64(&n, "delay_max"),
                reorder_permille: get_permille(&n, "reorder_permille")?,
                reorder_window: get_u64(&n, "reorder_window"),
                duplicate_permille: get_permille(&n, "duplicate_permille")?,
                drop_permille: get_permille(&n, "drop_permille")?,
                drop_timeout: get_u64(&n, "drop_timeout"),
            },
            htm: HtmFaults {
                spurious_abort_permille: get_permille(&h, "spurious_abort_permille")?,
                storm_period: get_u64(&h, "storm_period"),
                storm_len: get_u64(&h, "storm_len"),
                freeze_permille: get_permille(&h, "freeze_permille")?,
                freeze_cycles: get_u64(&h, "freeze_cycles"),
                slowdown_permille: get_permille(&h, "slowdown_permille")?,
                slowdown_cycles: get_u64(&h, "slowdown_cycles"),
                vsb_evict_permille: get_permille(&h, "vsb_evict_permille")?,
            },
            protocol: ProtocolFaults {
                validation_delay_permille: get_permille(&p, "validation_delay_permille")?,
                validation_delay_max: get_u64(&p, "validation_delay_max"),
                drop_validation_data: get_u64(&p, "drop_validation_data"),
            },
        })
    }

    /// The plan as pretty JSON text (the `plans/*.json` file content).
    #[must_use]
    pub fn to_json_text(&self) -> String {
        self.to_value().to_json()
    }

    /// Parses a plan from JSON text (inverse of [`FaultPlan::to_json_text`];
    /// lets callers embed plans in their own JSON documents without
    /// depending on this crate's value type).
    ///
    /// # Errors
    ///
    /// Returns the JSON parse error or the schema error from
    /// [`FaultPlan::from_value`].
    pub fn from_json_text(text: &str) -> Result<FaultPlan, String> {
        let v = Value::from_json(text)?;
        FaultPlan::from_value(&v)
    }

    /// Loads a plan from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns a message naming the path for I/O, JSON or schema problems.
    pub fn load(path: &Path) -> Result<FaultPlan, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        FaultPlan::from_json_text(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    // ---- shipped plans -------------------------------------------------

    /// Shipped plan: a lossy, jittery interconnect. Delay jitter,
    /// hold-back reordering, duplicates, and demand-request drops with a
    /// requester retry timeout.
    #[must_use]
    pub fn lossy_noc() -> FaultPlan {
        FaultPlan {
            name: "lossy-noc".to_string(),
            seed_salt: 0x10c,
            watchdog_horizon: 1_000_000,
            noc: NocFaults {
                delay_permille: 60,
                delay_max: 40,
                reorder_permille: 25,
                reorder_window: 48,
                duplicate_permille: 15,
                drop_permille: 25,
                drop_timeout: 1_500,
            },
            htm: HtmFaults::default(),
            protocol: ProtocolFaults::default(),
        }
    }

    /// Shipped plan: best-effort HTM weather — periodic spurious-abort
    /// storms, occasional core freezes and slowdowns, forced VSB
    /// evictions.
    #[must_use]
    pub fn abort_storm() -> FaultPlan {
        FaultPlan {
            name: "abort-storm".to_string(),
            seed_salt: 0x5702,
            watchdog_horizon: 1_000_000,
            noc: NocFaults::default(),
            htm: HtmFaults {
                spurious_abort_permille: 8,
                storm_period: 40_000,
                storm_len: 6_000,
                freeze_permille: 2,
                freeze_cycles: 800,
                slowdown_permille: 8,
                slowdown_cycles: 64,
                vsb_evict_permille: 3,
            },
            protocol: ProtocolFaults::default(),
        }
    }

    /// Shipped plan: validation stress — validation responses held back
    /// (plus mild NoC jitter), pushing chains toward the retry threshold.
    #[must_use]
    pub fn validation_stress() -> FaultPlan {
        FaultPlan {
            name: "validation-stress".to_string(),
            seed_salt: 0x7a1,
            watchdog_horizon: 1_000_000,
            noc: NocFaults {
                delay_permille: 10,
                delay_max: 16,
                ..NocFaults::default()
            },
            htm: HtmFaults::default(),
            protocol: ProtocolFaults {
                validation_delay_permille: 120,
                validation_delay_max: 160,
                drop_validation_data: 0,
            },
        }
    }

    /// Every shipped plan (the set CI's `fault-smoke` job explores and
    /// `plans/*.json` mirrors).
    #[must_use]
    pub fn shipped() -> Vec<FaultPlan> {
        vec![
            FaultPlan::lossy_noc(),
            FaultPlan::abort_storm(),
            FaultPlan::validation_stress(),
        ]
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:016x})", self.name, self.hash())
    }
}

/// The per-run injection state machine: the plan, a **dedicated** RNG
/// stream (the machine's own RNG is never consumed), and injection
/// tallies.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    rng: SimRng,
    injected: [u64; FaultKind::ALL.len()],
    val_drops_left: u64,
    dest_floor: BTreeMap<usize, u64>,
}

impl FaultState {
    /// Builds the runtime state for `plan` on a machine seeded with
    /// `machine_seed`. The fault stream is `seed ^ plan hash ^ salt`, so
    /// it is independent of (and does not perturb) the machine stream.
    #[must_use]
    pub fn new(plan: FaultPlan, machine_seed: u64) -> FaultState {
        let rng =
            SimRng::seed_from(machine_seed ^ plan.hash() ^ plan.seed_salt ^ 0xFA17_0000_0000_FA17);
        let val_drops_left = plan.protocol.drop_validation_data;
        FaultState {
            plan,
            rng,
            injected: [0; FaultKind::ALL.len()],
            val_drops_left,
            dest_floor: BTreeMap::new(),
        }
    }

    /// The installed plan.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injections of `kind` so far.
    #[must_use]
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()]
    }

    /// Total injections across every kind.
    #[must_use]
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Per-kind injection tallies, labelled, zero entries omitted.
    #[must_use]
    pub fn injection_counts(&self) -> BTreeMap<&'static str, u64> {
        FaultKind::ALL
            .into_iter()
            .filter(|&k| self.injected(k) > 0)
            .map(|k| (k.label(), self.injected(k)))
            .collect()
    }

    /// Serializes the dynamic injection state — RNG position, tallies,
    /// the validation-drop budget and per-destination sequencing floors —
    /// prefixed by the plan hash as a guard. The plan itself is not
    /// written: a restored machine reinstalls the same plan through its
    /// run configuration before restoring this state over it.
    pub fn save_state(&self, w: &mut chats_snap::SnapWriter) {
        use chats_snap::Snap;
        w.u64(self.plan.hash());
        self.rng.save(w);
        self.injected.save(w);
        w.u64(self.val_drops_left);
        self.dest_floor.save(w);
    }

    /// Restores state captured by [`FaultState::save_state`].
    ///
    /// # Errors
    ///
    /// Fails on a malformed stream or when the snapshot was taken under a
    /// different fault plan than the one installed here.
    pub fn restore_state(
        &mut self,
        r: &mut chats_snap::SnapReader<'_>,
    ) -> Result<(), chats_snap::SnapError> {
        use chats_snap::Snap;
        let hash = r.u64()?;
        if hash != self.plan.hash() {
            return Err(r.err(format!(
                "snapshot taken under fault plan {hash:016x}, machine runs {:016x}",
                self.plan.hash()
            )));
        }
        self.rng = Snap::load(r)?;
        self.injected = Snap::load(r)?;
        self.val_drops_left = r.u64()?;
        self.dest_floor = Snap::load(r)?;
        Ok(())
    }

    fn note(&mut self, kind: FaultKind) {
        self.injected[kind.index()] += 1;
    }

    /// One permille roll. Zero-probability knobs never touch the RNG, so
    /// plan sections left at zero cost nothing and change nothing.
    fn roll(&mut self, permille: u32) -> bool {
        permille > 0 && self.rng.chance(u64::from(permille.min(1000)), 1000)
    }

    // ---- NoC -----------------------------------------------------------

    /// Extra delay-jitter cycles for the message about to be injected, if
    /// the jitter fault fires.
    pub fn delay_jitter(&mut self) -> Option<u64> {
        if self.roll(self.plan.noc.delay_permille) {
            self.note(FaultKind::Delay);
            Some(1 + self.rng.below(self.plan.noc.delay_max.max(1)))
        } else {
            None
        }
    }

    /// Hold-back cycles for bounded reordering, if the reorder fault
    /// fires: the message is delayed a full window so later traffic can
    /// overtake it.
    pub fn reorder_hold(&mut self) -> Option<u64> {
        if self.roll(self.plan.noc.reorder_permille) {
            self.note(FaultKind::Reorder);
            Some(self.plan.noc.reorder_window.max(1))
        } else {
            None
        }
    }

    /// `true` when the message should be delivered twice.
    pub fn duplicate(&mut self) -> bool {
        let hit = self.roll(self.plan.noc.duplicate_permille);
        if hit {
            self.note(FaultKind::Duplicate);
        }
        hit
    }

    /// `true` when a retryable demand request should be dropped; the
    /// caller schedules the requester's retry after
    /// [`FaultState::drop_timeout`].
    pub fn drop_request(&mut self) -> bool {
        let hit = self.roll(self.plan.noc.drop_permille);
        if hit {
            self.note(FaultKind::Drop);
        }
        hit
    }

    /// Requester-side retry timeout after a dropped demand request.
    #[must_use]
    pub fn drop_timeout(&self) -> u64 {
        self.plan.noc.drop_timeout.max(1)
    }

    // ---- HTM -----------------------------------------------------------

    /// `true` when a running transaction should spuriously abort at
    /// cycle `now` (inside a storm window when storms are configured).
    pub fn spurious_abort(&mut self, now: u64) -> bool {
        let p = &self.plan.htm;
        if p.storm_period > 0 && now % p.storm_period >= p.storm_len {
            return false;
        }
        let hit = self.roll(p.spurious_abort_permille);
        if hit {
            self.note(FaultKind::SpuriousAbort);
        }
        hit
    }

    /// Freeze window length, if the freeze fault fires on this core step.
    pub fn freeze(&mut self) -> Option<u64> {
        if self.roll(self.plan.htm.freeze_permille) {
            self.note(FaultKind::Freeze);
            Some(self.plan.htm.freeze_cycles.max(1))
        } else {
            None
        }
    }

    /// Slowdown stall length, if the slowdown fault fires on this core
    /// step.
    pub fn slowdown(&mut self) -> Option<u64> {
        if self.roll(self.plan.htm.slowdown_permille) {
            self.note(FaultKind::Slowdown);
            Some(self.plan.htm.slowdown_cycles.max(1))
        } else {
            None
        }
    }

    /// `true` when a held VSB entry should be force-evicted on this core
    /// step.
    pub fn vsb_evict(&mut self) -> bool {
        let hit = self.roll(self.plan.htm.vsb_evict_permille);
        if hit {
            self.note(FaultKind::VsbEvict);
        }
        hit
    }

    // ---- protocol ------------------------------------------------------

    /// Extra hold-back cycles for a validation data response, if the
    /// validation-delay fault fires.
    pub fn validation_delay(&mut self) -> Option<u64> {
        if self.roll(self.plan.protocol.validation_delay_permille) {
            self.note(FaultKind::ValidationDelay);
            Some(
                1 + self
                    .rng
                    .below(self.plan.protocol.validation_delay_max.max(1)),
            )
        } else {
            None
        }
    }

    /// `true` when a validation data response should be dropped outright
    /// (consumes one unit of the plan's drop budget).
    pub fn drop_validation_data(&mut self) -> bool {
        if self.val_drops_left == 0 {
            return false;
        }
        self.val_drops_left -= 1;
        self.note(FaultKind::ValidationDrop);
        true
    }

    // ---- delivery sequencing -------------------------------------------

    /// Clamps a perturbed arrival time so messages reach `dest` in send
    /// order. The modeled coherence protocol — like any NoC with
    /// point-to-point ordering — depends on a response sent *before* a
    /// probe/invalidation arriving before it; naively jittering arrival
    /// times would let the later control message overtake the data and
    /// silently break coherence (the injection layer must perturb timing,
    /// not correctness). Delayed messages therefore hold back everything
    /// behind them to the same destination, while traffic to *other*
    /// nodes still overtakes freely — that is the bounded reordering the
    /// reorder knob models.
    pub fn sequence(&mut self, dest: usize, arrive: u64) -> u64 {
        let floor = self.dest_floor.entry(dest).or_insert(0);
        let at = arrive.max(*floor);
        *floor = at;
        at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_watch_only_plan_too() {
        assert!(FaultPlan::default().is_empty());
        let watch_only = FaultPlan {
            watchdog_horizon: 500,
            ..FaultPlan::default()
        };
        assert!(watch_only.is_empty());
        assert!(!FaultPlan::lossy_noc().is_empty());
    }

    #[test]
    fn shipped_plans_round_trip_and_hash_distinctly() {
        let mut hashes = std::collections::HashSet::new();
        for plan in FaultPlan::shipped() {
            let text = plan.to_value().to_json();
            let back = FaultPlan::from_value(&Value::from_json(&text).unwrap()).unwrap();
            assert_eq!(back, plan, "{} must round-trip", plan.name);
            assert!(hashes.insert(plan.hash()), "{} hash collides", plan.name);
        }
    }

    #[test]
    fn missing_knobs_default_to_zero() {
        let v = Value::from_json(r#"{"name":"tiny","noc":{"drop_permille":5,"drop_timeout":100}}"#)
            .unwrap();
        let p = FaultPlan::from_value(&v).unwrap();
        assert_eq!(p.name, "tiny");
        assert_eq!(p.noc.drop_permille, 5);
        assert_eq!(p.noc.delay_permille, 0);
        assert_eq!(p.htm, HtmFaults::default());
        assert!(!p.is_empty());
    }

    #[test]
    fn permille_over_1000_is_rejected() {
        let v = Value::from_json(r#"{"noc":{"drop_permille":1001}}"#).unwrap();
        let err = FaultPlan::from_value(&v).unwrap_err();
        assert!(err.contains("drop_permille"), "{err}");
    }

    #[test]
    fn state_is_deterministic_per_seed_and_diverges_across_seeds() {
        let drain = |seed: u64| {
            let mut st = FaultState::new(FaultPlan::lossy_noc(), seed);
            (0..256)
                .map(|_| (st.delay_jitter(), st.duplicate(), st.drop_request()))
                .collect::<Vec<_>>()
        };
        assert_eq!(drain(1), drain(1));
        assert_ne!(drain(1), drain(2));
    }

    #[test]
    fn zero_probability_sections_never_touch_the_rng() {
        // An all-zero plan's helpers must not consume RNG state: two
        // states fed disjoint call sequences stay in lockstep.
        let plan = FaultPlan {
            name: "zero".to_string(),
            ..FaultPlan::default()
        };
        let mut a = FaultState::new(plan.clone(), 9);
        let mut b = FaultState::new(plan, 9);
        for _ in 0..64 {
            assert!(a.delay_jitter().is_none());
            assert!(!a.duplicate());
        }
        assert!(!b.spurious_abort(0));
        assert_eq!(a.injected_total(), 0);
        assert_eq!(b.injected_total(), 0);
    }

    #[test]
    fn storms_gate_spurious_aborts() {
        let plan = FaultPlan {
            htm: HtmFaults {
                spurious_abort_permille: 1000,
                storm_period: 100,
                storm_len: 10,
                ..HtmFaults::default()
            },
            ..FaultPlan::default()
        };
        let mut st = FaultState::new(plan, 3);
        assert!(st.spurious_abort(5), "inside the storm window");
        assert!(!st.spurious_abort(50), "outside the storm window");
        assert!(st.spurious_abort(105), "next storm");
    }

    #[test]
    fn validation_drop_budget_is_finite() {
        let plan = FaultPlan {
            protocol: ProtocolFaults {
                drop_validation_data: 2,
                ..ProtocolFaults::default()
            },
            ..FaultPlan::default()
        };
        let mut st = FaultState::new(plan, 0);
        assert!(st.drop_validation_data());
        assert!(st.drop_validation_data());
        assert!(!st.drop_validation_data());
        assert_eq!(st.injected(FaultKind::ValidationDrop), 2);
    }

    #[test]
    fn injection_counts_are_labelled_and_sparse() {
        let mut st = FaultState::new(FaultPlan::lossy_noc(), 7);
        for _ in 0..2000 {
            let _ = st.delay_jitter();
        }
        let counts = st.injection_counts();
        assert_eq!(counts.get("delay"), Some(&st.injected(FaultKind::Delay)));
        assert!(!counts.contains_key("freeze"));
    }

    #[test]
    fn canonical_tracks_every_knob() {
        let base = FaultPlan::lossy_noc();
        let mut tweaked = base.clone();
        tweaked.htm.storm_len = 1;
        assert_ne!(base.canonical(), tweaked.canonical());
        assert_ne!(base.hash(), tweaked.hash());
    }

    #[test]
    fn kind_labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            FaultKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), FaultKind::ALL.len());
    }
}
