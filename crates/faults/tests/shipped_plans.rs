//! The shipped fault plans exist as canned JSON under `plans/` so they
//! can be passed to `chats-run --faults` / `chats-check explore --faults`
//! without building anything. This test keeps the files in sync with the
//! presets; regenerate with `UPDATE_PLANS=1 cargo test -p chats-faults`.

use chats_faults::FaultPlan;
use std::path::Path;

#[test]
fn shipped_plans_match_the_plans_directory() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../plans");
    let plans = FaultPlan::shipped();
    assert!(!plans.is_empty());
    for plan in plans {
        let path = dir.join(format!("{}.json", plan.name));
        if std::env::var_os("UPDATE_PLANS").is_some() {
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(&path, plan.to_json_text()).unwrap();
        }
        let loaded = FaultPlan::load(&path).unwrap_or_else(|e| {
            panic!("{e}\nregenerate with UPDATE_PLANS=1 cargo test -p chats-faults")
        });
        assert_eq!(loaded, plan, "{} drifted from its preset", plan.name);
        assert_eq!(loaded.hash(), plan.hash());
    }
}
