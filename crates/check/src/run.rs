//! Executing one (scenario, schedule) pair and judging the result.

use crate::scenario::Scenario;
use crate::schedule::{Recorder, Schedule};
use chats_core::PolicyConfig;
use chats_machine::{Machine, SimError, Tuning};
use chats_mem::Addr;
use chats_runner::hash::fnv1a_64;
use chats_sim::{DecisionRecord, SystemConfig};
use chats_tvm::Vm;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// What went wrong, when something did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The oracle recorded at least one violation (atomicity at commit or
    /// an inconsistent forwarded read).
    Violation,
    /// The committed counter sum misses the serializability invariant.
    SumMismatch,
    /// The event queue drained with live threads (a protocol bug).
    Deadlock,
    /// The machine panicked on an internal invariant.
    Panic,
}

impl FailureKind {
    /// Stable name (reproducer JSON, manifests).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::Violation => "violation",
            FailureKind::SumMismatch => "sum_mismatch",
            FailureKind::Deadlock => "deadlock",
            FailureKind::Panic => "panic",
        }
    }

    /// Inverse of [`FailureKind::as_str`].
    #[must_use]
    pub fn parse(s: &str) -> Option<FailureKind> {
        [
            FailureKind::Violation,
            FailureKind::SumMismatch,
            FailureKind::Deadlock,
            FailureKind::Panic,
        ]
        .into_iter()
        .find(|k| k.as_str() == s)
    }
}

/// Verdict of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// All checks held.
    Pass,
    /// A check failed (the interesting case).
    Fail(FailureKind),
    /// The run hit its cycle budget — hostile schedules can legitimately
    /// starve progress, so this is neither a pass nor a failure.
    Inconclusive(String),
}

/// Everything observed about one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The verdict.
    pub outcome: Outcome,
    /// Oracle violations, rendered (empty on pass/panic).
    pub violations: Vec<String>,
    /// Committed counter sum actually observed.
    pub sum: u64,
    /// The serializability invariant (`threads * kernel.per_thread`).
    pub expected: u64,
    /// FNV-1a digest of the committed memory image (0 after a panic).
    pub image_digest: u64,
    /// The full resolved decision trace (survives panics).
    pub decisions: Vec<DecisionRecord>,
    /// Free-form diagnostic (panic message, deadlock dump, …).
    pub detail: String,
}

impl RunResult {
    /// The decision trace as a replayable choice vector.
    #[must_use]
    pub fn choices(&self) -> Vec<u32> {
        self.decisions.iter().map(|d| d.chosen).collect()
    }

    /// `true` when the outcome is `Fail(kind)`.
    #[must_use]
    pub fn failed_with(&self, kind: FailureKind) -> bool {
        self.outcome == Outcome::Fail(kind)
    }
}

/// Canonical digest of a committed memory image.
#[must_use]
pub fn image_digest(image: &BTreeMap<u64, u64>) -> u64 {
    let mut text = String::new();
    for (addr, value) in image {
        let _ = write!(text, "{addr}:{value};");
    }
    fnv1a_64(text.as_bytes())
}

/// Runs `scenario` under `schedule` and judges the outcome.
///
/// The machine runs with both oracles armed in *record* mode, so
/// violations accumulate instead of panicking; residual panics (machine
/// invariants) are caught and reported as [`FailureKind::Panic`]. The
/// decision trace is recorded outside the machine and is complete even
/// for panicked runs, which is what makes shrinking possible.
#[must_use]
pub fn run_scenario(scenario: &Scenario, schedule: &Schedule) -> RunResult {
    let kernel = scenario.program.build();
    let expected = scenario.threads as u64 * kernel.per_thread;
    let recorder = Recorder::default();
    let hook = schedule.hook(Rc::clone(&recorder));

    let outcome = {
        let scenario = scenario.clone();
        let program = kernel.program.clone();
        // The machine panics loudly on internal invariants; silence the
        // default hook for the duration so expected failing runs (shrink
        // probes replay hundreds of them) do not spam stderr.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let mut sys = SystemConfig::small_test();
            sys.core.cores = scenario.threads;
            let tuning = Tuning {
                check_atomicity: true,
                oracle_record: true,
                debug_skip_validation: scenario.skip_validation_bug,
                ..Tuning::default()
            };
            let mut m = Machine::new(
                sys,
                PolicyConfig::for_system(scenario.system),
                tuning,
                scenario.seed,
            );
            m.set_decision_hook(hook);
            if let Some(plan) = &scenario.faults {
                m.set_fault_plan(plan);
            }
            for t in 0..scenario.threads {
                m.load_thread(
                    t,
                    Vm::new(program.clone(), scenario.seed ^ ((t as u64) << 7)),
                );
            }
            let run = m.run(scenario.max_cycles);
            (m, run)
        }));
        std::panic::set_hook(prev_hook);
        caught
    };

    let decisions = recorder.borrow().clone();
    match outcome {
        Err(payload) => RunResult {
            outcome: Outcome::Fail(FailureKind::Panic),
            violations: Vec::new(),
            sum: 0,
            expected,
            image_digest: 0,
            decisions,
            detail: panic_message(payload.as_ref()),
        },
        Ok((machine, run)) => {
            let violations: Vec<String> = machine
                .violations()
                .iter()
                .map(ToString::to_string)
                .collect();
            let sum: u64 = kernel
                .counters
                .iter()
                .map(|&a| machine.inspect_word(Addr(a)))
                .sum();
            let digest = image_digest(&machine.memory_image());
            let (outcome, detail) = match run {
                Err(SimError::Timeout { at_cycle }) => (
                    Outcome::Inconclusive(format!("cycle budget exhausted at {at_cycle}")),
                    String::new(),
                ),
                Err(SimError::Deadlock { at_cycle, detail }) => (
                    Outcome::Fail(FailureKind::Deadlock),
                    format!("deadlock at cycle {at_cycle}: {detail}"),
                ),
                // A fault schedule may legitimately starve progress (e.g.
                // dropped validation responses); the watchdog converts
                // that hang into a structured diagnosis rather than a
                // protocol failure.
                Err(SimError::WatchdogStall { report }) => {
                    (Outcome::Inconclusive(format!("{report}")), String::new())
                }
                Ok(_) if !violations.is_empty() => {
                    (Outcome::Fail(FailureKind::Violation), violations.join("\n"))
                }
                Ok(_) if sum != expected => (
                    Outcome::Fail(FailureKind::SumMismatch),
                    format!("committed sum {sum}, expected {expected}"),
                ),
                Ok(_) => (Outcome::Pass, String::new()),
            };
            RunResult {
                outcome,
                violations,
                sum,
                expected,
                image_digest: digest,
                decisions,
                detail,
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::smoke_scenarios;

    #[test]
    fn baseline_smoke_runs_pass() {
        for sc in smoke_scenarios() {
            let r = run_scenario(&sc, &Schedule::baseline());
            assert_eq!(r.outcome, Outcome::Pass, "{}: {}", sc.name, r.detail);
            assert_eq!(r.sum, r.expected, "{}", sc.name);
            assert!(
                !r.decisions.is_empty(),
                "{}: no decisions recorded",
                sc.name
            );
        }
    }

    #[test]
    fn identical_runs_are_bit_identical() {
        let sc = &smoke_scenarios()[0];
        let a = run_scenario(sc, &Schedule::baseline());
        let b = run_scenario(sc, &Schedule::baseline());
        assert_eq!(a.image_digest, b.image_digest);
        assert_eq!(a.choices(), b.choices());
    }

    #[test]
    fn full_trace_replay_reproduces_a_random_run() {
        let sc = &smoke_scenarios()[1];
        let walked = run_scenario(sc, &Schedule::random(99));
        let replayed = run_scenario(sc, &Schedule::replay(walked.choices()));
        assert_eq!(replayed.outcome, walked.outcome);
        assert_eq!(replayed.image_digest, walked.image_digest);
        assert_eq!(replayed.choices(), walked.choices());
    }

    #[test]
    fn oracles_hold_under_every_shipped_fault_plan() {
        use chats_machine::FaultPlan;
        for plan in FaultPlan::shipped() {
            let mut suite = smoke_scenarios();
            crate::scenario::apply_fault_plan(&mut suite, &plan);
            for sc in &suite {
                let r = run_scenario(sc, &Schedule::baseline());
                match &r.outcome {
                    // A fault schedule may starve progress; what it must
                    // never do is break serializability.
                    Outcome::Pass | Outcome::Inconclusive(_) => {}
                    Outcome::Fail(kind) => {
                        panic!("{}: {} under faults: {}", sc.name, kind.as_str(), r.detail)
                    }
                }
            }
        }
    }

    #[test]
    fn faulted_runs_replay_bit_exactly() {
        let mut suite = smoke_scenarios();
        crate::scenario::apply_fault_plan(&mut suite, &chats_machine::FaultPlan::abort_storm());
        let sc = &suite[0];
        let walked = run_scenario(sc, &Schedule::random(7));
        let replayed = run_scenario(sc, &Schedule::replay(walked.choices()));
        assert_eq!(replayed.outcome, walked.outcome);
        assert_eq!(replayed.image_digest, walked.image_digest);
    }

    #[test]
    fn failure_kinds_round_trip() {
        for k in [
            FailureKind::Violation,
            FailureKind::SumMismatch,
            FailureKind::Deadlock,
            FailureKind::Panic,
        ] {
            assert_eq!(FailureKind::parse(k.as_str()), Some(k));
        }
    }
}
