//! `chats-dissect`: the divergence-dissection command line.
//!
//! ```text
//! chats-dissect --workload W --system S [--smoke] [--interval N]
//!               [--threads N] [--seed X] [--max-cycles N]
//!               [--seed-b Y] [--faults-a PLAN] [--faults-b PLAN]
//!               [--report FILE] [--assert-fault-match]
//! ```
//!
//! Runs side A and side B of the named workload with epoch commitments
//! armed, brackets the first divergent epoch by diffing the commitment
//! chains, then replays that one epoch in lockstep to pin the exact
//! first divergent event. Exits 0 when the sides are identical, 1 when
//! they diverge (the expected outcome for a deliberate A/B experiment
//! is selected with `--assert-fault-match`, which instead exits 0 iff
//! the pinned event is the first fault injection on side B).

use chats_check::{dissect, DissectOutcome, DissectRequest, DissectSide, FaultPlan};
use chats_core::{HtmSystem, PolicyConfig};
use chats_machine::DEFAULT_COMMIT_INTERVAL;
use chats_workloads::RunConfig;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: chats-dissect --workload W [options]

options:
  --workload W              registry name of the workload (required)
  --system S                HTM system: baseline, naive-rs, chats, power,
                            pchats, levc (default chats)
  --smoke                   4-core quick-test machine (default: paper scale)
  --interval N              epoch-commitment interval in cycles (default 4096)
  --threads N               thread count override
  --seed X                  side A (and default side B) seed
  --max-cycles N            cycle budget override
  --seed-b Y                side B seed (default: side A's)
  --faults-a PLAN           fault plan on side A (name or JSON path)
  --faults-b PLAN           fault plan on side B (name or JSON path)
  --report FILE             write the JSON dissection report to FILE
  --assert-fault-match      exit 0 iff the pinned first-divergent event is
                            side B's first fault injection (CI mode)
  --quiet                   suppress the human-readable summary

exit status: 0 identical (or asserted match), 1 diverged (or failed
assertion), 2 usage/configuration error";

struct Args {
    workload: Option<String>,
    system: String,
    smoke: bool,
    interval: u64,
    threads: Option<usize>,
    seed: Option<u64>,
    max_cycles: Option<u64>,
    seed_b: Option<u64>,
    faults_a: Option<String>,
    faults_b: Option<String>,
    report: Option<PathBuf>,
    assert_fault_match: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workload: None,
        system: "chats".to_string(),
        smoke: false,
        interval: DEFAULT_COMMIT_INTERVAL,
        threads: None,
        seed: None,
        max_cycles: None,
        seed_b: None,
        faults_a: None,
        faults_b: None,
        report: None,
        assert_fault_match: false,
        quiet: false,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |what: &str| argv.next().ok_or_else(|| format!("{what} needs a value"));
        match arg.as_str() {
            "--workload" => args.workload = Some(value("--workload")?),
            "--system" => args.system = value("--system")?,
            "--smoke" => args.smoke = true,
            "--interval" => args.interval = parse_num(&value("--interval")?, "--interval")?,
            "--threads" => args.threads = Some(parse_num(&value("--threads")?, "--threads")?),
            "--seed" => args.seed = Some(parse_num(&value("--seed")?, "--seed")?),
            "--max-cycles" => {
                args.max_cycles = Some(parse_num(&value("--max-cycles")?, "--max-cycles")?);
            }
            "--seed-b" => args.seed_b = Some(parse_num(&value("--seed-b")?, "--seed-b")?),
            "--faults-a" => args.faults_a = Some(value("--faults-a")?),
            "--faults-b" => args.faults_b = Some(value("--faults-b")?),
            "--report" => args.report = Some(PathBuf::from(value("--report")?)),
            "--assert-fault-match" => args.assert_fault_match = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            s => return Err(format!("unexpected argument '{s}'")),
        }
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag}: invalid number '{text}'"))
}

fn parse_system(name: &str) -> Result<HtmSystem, String> {
    Ok(match name {
        "baseline" => HtmSystem::Baseline,
        "naive-rs" => HtmSystem::NaiveRs,
        "chats" => HtmSystem::Chats,
        "power" => HtmSystem::Power,
        "pchats" => HtmSystem::Pchats,
        "levc" => HtmSystem::LevcBeIdealized,
        other => return Err(format!("unknown system '{other}'")),
    })
}

/// Resolves a fault-plan spec: a shipped plan name first, else a path.
fn resolve_plan(spec: &str) -> Result<FaultPlan, String> {
    if let Some(plan) = FaultPlan::shipped().into_iter().find(|p| p.name == spec) {
        return Ok(plan);
    }
    FaultPlan::load(std::path::Path::new(spec))
}

fn build_request(args: &Args) -> Result<DissectRequest, String> {
    let workload = args
        .workload
        .clone()
        .ok_or("--workload is required".to_string())?;
    let policy = PolicyConfig::for_system(parse_system(&args.system)?);
    let mut base = if args.smoke {
        RunConfig::quick_test()
    } else {
        RunConfig::paper()
    };
    if let Some(t) = args.threads {
        base.threads = t;
    }
    if let Some(s) = args.seed {
        base.seed = s;
    }
    if let Some(c) = args.max_cycles {
        base.max_cycles = c;
    }
    let mut cfg_a = base.clone();
    if let Some(spec) = &args.faults_a {
        cfg_a.faults = Some(resolve_plan(spec)?);
    }
    let mut cfg_b = base;
    if let Some(s) = args.seed_b {
        cfg_b.seed = s;
    }
    if let Some(spec) = &args.faults_b {
        cfg_b.faults = Some(resolve_plan(spec)?);
    }
    Ok(DissectRequest {
        workload,
        policy,
        interval: args.interval,
        a: DissectSide {
            label: "a".to_string(),
            config: cfg_a,
        },
        b: DissectSide {
            label: "b".to_string(),
            config: cfg_b,
        },
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("chats-dissect: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let request = match build_request(&args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chats-dissect: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let report = match dissect(&request) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chats-dissect: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &args.report {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, report.to_json().to_pretty()) {
            eprintln!("chats-dissect: could not write report: {e}");
            return ExitCode::from(2);
        }
        if !args.quiet {
            println!("report: {}", path.display());
        }
    }
    match &report.outcome {
        DissectOutcome::Identical { epochs } => {
            if !args.quiet {
                println!(
                    "identical: {} epochs agree ({} vs {}, status a={} b={})",
                    epochs, report.epochs_a, report.epochs_b, report.status_a, report.status_b
                );
            }
            if args.assert_fault_match {
                eprintln!("chats-dissect: --assert-fault-match expected a divergence, got none");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        DissectOutcome::Diverged(d) => {
            if !args.quiet {
                println!(
                    "diverged: chains agree through {} epoch(s); first divergent epoch is \
                     cycles {}..{}",
                    d.agreeing_epochs, d.epoch_start, d.epoch_end
                );
                match &d.event {
                    Some(ev) => println!(
                        "first divergent event: {ev}\n({} events replayed to pin it)",
                        d.events_replayed
                    ),
                    None => println!(
                        "no single event pinned after {} replayed events (the sides \
                         differ only in run length)",
                        d.events_replayed
                    ),
                }
            }
            if args.assert_fault_match {
                let matched = d.event.as_ref().is_some_and(|ev| ev.fault_injected_here);
                if matched {
                    if !args.quiet {
                        println!("assert-fault-match: pinned event is the first fault injection");
                    }
                    return ExitCode::SUCCESS;
                }
                eprintln!(
                    "chats-dissect: --assert-fault-match: the pinned event is NOT the first \
                     fault injection"
                );
            }
            ExitCode::FAILURE
        }
    }
}
