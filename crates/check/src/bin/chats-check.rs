//! `chats-check`: the schedule-exploration command line.
//!
//! ```text
//! chats-check list   [--smoke]
//! chats-check explore [--smoke] [--walks N] [--flips N] [--no-attacks]
//!                     [--faults PLAN.json] [--filter S]
//!                     [--failures-dir D] [--out D] [--quiet]
//! chats-check replay FILE [--force]
//! ```
//!
//! `explore` sweeps adversarial schedules over the scenario suite and
//! writes a deterministic JSON manifest under `target/chats-check/`; it
//! exits nonzero iff a failure was found (each failure also leaves a
//! replayable reproducer under `target/chats-failures/`). `replay`
//! re-executes a saved reproducer and exits zero iff the recorded failure
//! reproduces.

use chats_check::{
    apply_fault_plan, default_failures_dir, explore, full_scenarios, smoke_scenarios,
    ExploreBudget, FaultPlan, Outcome, Reproducer, Scenario,
};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: chats-check <command> [args]

commands:
  list                      show the scenario suite
  explore                   sweep adversarial schedules over the suite
  replay FILE               re-execute a saved reproducer

options:
  --force                   replay even when the reproducer's spec or
                            build commitment no longer matches
  --smoke                   small suite and CI-sized budget (deterministic)
  --walks N                 random-walk schedules per scenario
  --flips N                 single-decision perturbations per scenario
  --no-attacks              skip the targeted attack schedules
  --faults PLAN.json        install the fault plan on every scenario (the
                            oracles must hold under faults too); PLAN may
                            also be a shipped plan name: lossy-noc,
                            abort-storm, validation-stress
  --filter S                keep scenarios whose name contains S
  --failures-dir D          reproducer directory (default target/chats-failures)
  --out D                   manifest directory (default target/chats-check)
  --quiet                   no per-scenario progress lines";

struct Args {
    command: String,
    file: Option<PathBuf>,
    smoke: bool,
    walks: Option<usize>,
    flips: Option<usize>,
    no_attacks: bool,
    faults: Option<String>,
    filter: Option<String>,
    failures_dir: Option<PathBuf>,
    out: Option<PathBuf>,
    force: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or("missing command")?;
    let mut args = Args {
        command,
        file: None,
        smoke: false,
        walks: None,
        flips: None,
        no_attacks: false,
        faults: None,
        filter: None,
        failures_dir: None,
        out: None,
        force: false,
        quiet: false,
    };
    while let Some(arg) = argv.next() {
        let mut value = |what: &str| argv.next().ok_or_else(|| format!("{what} needs a value"));
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--walks" => args.walks = Some(parse_num(&value("--walks")?, "--walks")?),
            "--flips" => args.flips = Some(parse_num(&value("--flips")?, "--flips")?),
            "--no-attacks" => args.no_attacks = true,
            "--faults" => args.faults = Some(value("--faults")?),
            "--filter" => args.filter = Some(value("--filter")?),
            "--failures-dir" => args.failures_dir = Some(PathBuf::from(value("--failures-dir")?)),
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--force" => args.force = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            s if s.starts_with('-') => return Err(format!("unknown option '{s}'")),
            s => {
                if args.file.is_some() {
                    return Err(format!("unexpected argument '{s}'"));
                }
                args.file = Some(PathBuf::from(s));
            }
        }
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag}: invalid number '{text}'"))
}

/// Resolves `--faults`: a shipped plan name first, else a JSON file path.
fn resolve_plan(spec: &str) -> Result<FaultPlan, String> {
    if let Some(plan) = FaultPlan::shipped().into_iter().find(|p| p.name == spec) {
        return Ok(plan);
    }
    FaultPlan::load(std::path::Path::new(spec))
}

/// Builds the scenario suite; returns it with the resolved fault plan,
/// if any, so callers can name outputs after the plan.
fn suite(args: &Args) -> Result<(Vec<Scenario>, Option<FaultPlan>), String> {
    let mut scenarios = if args.smoke {
        smoke_scenarios()
    } else {
        full_scenarios()
    };
    if let Some(needle) = &args.filter {
        scenarios.retain(|s| s.name.contains(needle.as_str()));
    }
    let plan = match &args.faults {
        Some(spec) => {
            let plan = resolve_plan(spec)?;
            apply_fault_plan(&mut scenarios, &plan);
            Some(plan)
        }
        None => None,
    };
    Ok((scenarios, plan))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("chats-check: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match args.command.as_str() {
        "list" => cmd_list(&args),
        "explore" => cmd_explore(&args),
        "replay" => cmd_replay(&args),
        other => {
            eprintln!("chats-check: unknown command '{other}'\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn cmd_list(args: &Args) -> ExitCode {
    let (scenarios, _) = match suite(args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("chats-check: {e}");
            return ExitCode::from(2);
        }
    };
    for s in &scenarios {
        println!(
            "{:<24} {:<10} threads={} seed={} {}",
            s.name,
            chats_check::scenario::system_key(s.system),
            s.threads,
            s.seed,
            s.program.to_json().to_compact()
        );
    }
    println!(
        "{} scenarios in the {} suite",
        scenarios.len(),
        if args.smoke { "smoke" } else { "full" }
    );
    ExitCode::SUCCESS
}

fn cmd_explore(args: &Args) -> ExitCode {
    let (scenarios, plan) = match suite(args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("chats-check: {e}");
            return ExitCode::from(2);
        }
    };
    if scenarios.is_empty() {
        eprintln!("chats-check: no scenarios match");
        return ExitCode::from(2);
    }
    let defaults = if args.smoke {
        ExploreBudget::smoke()
    } else {
        ExploreBudget::full()
    };
    let budget = ExploreBudget {
        walks: args.walks.unwrap_or(defaults.walks),
        flips: args.flips.unwrap_or(defaults.flips),
        attacks: !args.no_attacks && defaults.attacks,
    };
    let failures_dir = args
        .failures_dir
        .clone()
        .unwrap_or_else(default_failures_dir);
    let report = explore(&scenarios, &budget, Some(&failures_dir), args.quiet);

    let out_dir = args.out.clone().unwrap_or_else(default_out_dir);
    let mut manifest_name = if args.smoke {
        "explore-smoke".to_string()
    } else {
        "explore-full".to_string()
    };
    if let Some(p) = &plan {
        manifest_name.push_str(&format!("-{}", p.name));
    }
    manifest_name.push_str(".json");
    let manifest_path = out_dir.join(&manifest_name);
    let manifest = report.to_json(&budget).to_pretty();
    if let Err(e) =
        std::fs::create_dir_all(&out_dir).and_then(|()| std::fs::write(&manifest_path, &manifest))
    {
        eprintln!("chats-check: could not write manifest: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "{} scenarios, {} runs, {} failures",
        report.scenarios.len(),
        report.total_runs(),
        report.failures()
    );
    println!("manifest: {}", manifest_path.display());
    for s in &report.scenarios {
        if let Some(f) = &s.failure {
            match &f.repro_path {
                Some(p) => eprintln!("chats-check: {}: reproducer {}", s.name, p.display()),
                None => eprintln!("chats-check: {}: failure (no reproducer saved)", s.name),
            }
        }
    }
    if report.failures() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_replay(args: &Args) -> ExitCode {
    let Some(path) = &args.file else {
        eprintln!("chats-check: replay needs a reproducer file\n\n{USAGE}");
        return ExitCode::from(2);
    };
    let repro = match Reproducer::load(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chats-check: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = repro.verify_commitments() {
        if args.force {
            eprintln!("chats-check: warning: {e} (replaying anyway under --force)");
        } else {
            eprintln!("chats-check: refusing to replay: {e}");
            eprintln!("chats-check: pass --force to replay against the drifted build/spec anyway");
            return ExitCode::from(2);
        }
    }
    println!(
        "replaying {} ({} decisions, expecting {})",
        repro.scenario.name,
        repro.prefix.len(),
        repro.kind.as_str()
    );
    if !repro.note.is_empty() {
        println!("note: {}", repro.note);
    }
    let (result, reproduced) = repro.replay();
    match &result.outcome {
        Outcome::Pass => println!("outcome: pass"),
        Outcome::Fail(kind) => println!("outcome: {}", kind.as_str()),
        Outcome::Inconclusive(why) => println!("outcome: inconclusive ({why})"),
    }
    if !result.detail.is_empty() {
        println!("{}", result.detail);
    }
    if reproduced {
        println!("reproduced");
        ExitCode::SUCCESS
    } else {
        eprintln!("chats-check: failure did NOT reproduce");
        ExitCode::FAILURE
    }
}

fn default_out_dir() -> PathBuf {
    let target =
        std::env::var_os("CARGO_TARGET_DIR").map_or_else(|| PathBuf::from("target"), PathBuf::from);
    target.join("chats-check")
}
