//! Schedules: how the decision stream of a run is resolved.
//!
//! A [`Schedule`] is a replayed `prefix` of explicit choices followed by a
//! [`Tail`] policy for every decision past the prefix. The all-default
//! schedule (`prefix = []`, `Tail::Default`) reproduces the unhooked
//! simulator bit-exactly; a full decision log replayed as the prefix
//! reproduces *any* observed run bit-exactly (the machine is deterministic
//! given its choices).

use chats_machine::DecisionHook;
use chats_sim::{DecisionKind, DecisionRecord, SimRng};
use std::cell::RefCell;
use std::rc::Rc;

/// Shared recorder a schedule hook appends every resolved decision to.
///
/// Lives *outside* the machine so the trace survives a panicking run
/// (the machine, and its internal `decision_log`, are consumed by
/// `catch_unwind`).
pub type Recorder = Rc<RefCell<Vec<DecisionRecord>>>;

/// A targeted adversarial tail: one decision kind is forced to its most
/// hostile non-default choice, everything else stays default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attack {
    /// Starve validation: every `ValidationPacing` decision picks the 8×
    /// delay, so forwarded data is validated as late as possible.
    DelayValidation,
    /// Defer every commit-ready transaction (up to the machine's cap), so
    /// chain tails race their head's retirement.
    DeferCommits,
    /// NACK every conflicting request instead of forwarding, collapsing
    /// chains into retry storms.
    StarveForwards,
}

impl Attack {
    /// Every attack, in a stable order.
    pub const ALL: [Attack; 3] = [
        Attack::DelayValidation,
        Attack::DeferCommits,
        Attack::StarveForwards,
    ];

    /// Stable name (manifests and log lines).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Attack::DelayValidation => "delay-validation",
            Attack::DeferCommits => "defer-commits",
            Attack::StarveForwards => "starve-forwards",
        }
    }

    fn choice(self, kind: DecisionKind) -> u32 {
        match (self, kind) {
            (Attack::DelayValidation, DecisionKind::ValidationPacing)
            | (Attack::DeferCommits, DecisionKind::CommitRelease)
            | (Attack::StarveForwards, DecisionKind::ConflictAction) => 1,
            _ => 0,
        }
    }
}

/// Policy for decisions beyond the replayed prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tail {
    /// Choice 0 everywhere — the unhooked machine's behaviour.
    Default,
    /// Seeded random walk, biased 50% toward the default so runs stay
    /// productive instead of livelocking on pure hostility.
    Random {
        /// Walk seed (independent of the machine seed).
        seed: u64,
    },
    /// A targeted [`Attack`].
    Attacked(Attack),
}

/// A complete schedule: explicit prefix plus tail policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Choices for decisions `0..prefix.len()` (clamped to each decision's
    /// fan-out when applied).
    pub prefix: Vec<u32>,
    /// Everything after the prefix.
    pub tail: Tail,
}

impl Schedule {
    /// The baseline schedule: no perturbation anywhere.
    #[must_use]
    pub fn baseline() -> Schedule {
        Schedule {
            prefix: Vec::new(),
            tail: Tail::Default,
        }
    }

    /// Replays `prefix`, then defaults — the reproducer schedule.
    #[must_use]
    pub fn replay(prefix: Vec<u32>) -> Schedule {
        Schedule {
            prefix,
            tail: Tail::Default,
        }
    }

    /// A seeded random walk from decision 0.
    #[must_use]
    pub fn random(seed: u64) -> Schedule {
        Schedule {
            prefix: Vec::new(),
            tail: Tail::Random { seed },
        }
    }

    /// A targeted attack from decision 0.
    #[must_use]
    pub fn attack(a: Attack) -> Schedule {
        Schedule {
            prefix: Vec::new(),
            tail: Tail::Attacked(a),
        }
    }

    /// Short description for manifests and failure reports.
    #[must_use]
    pub fn describe(&self) -> String {
        let tail = match &self.tail {
            Tail::Default => "default".to_string(),
            Tail::Random { seed } => format!("random(seed={seed})"),
            Tail::Attacked(a) => format!("attack({})", a.label()),
        };
        if self.prefix.is_empty() {
            tail
        } else {
            format!("prefix[{}]+{tail}", self.prefix.len())
        }
    }

    /// Builds the machine hook implementing this schedule. Every resolved
    /// decision (prefix and tail alike) is appended to `recorder`, so the
    /// recorded trace replayed via [`Schedule::replay`] reproduces the run.
    #[must_use]
    pub fn hook(&self, recorder: Recorder) -> DecisionHook {
        let prefix = self.prefix.clone();
        let tail = self.tail.clone();
        let mut rng = match tail {
            Tail::Random { seed } => Some(SimRng::seed_from(seed)),
            _ => None,
        };
        Box::new(move |point, choices| {
            let idx = usize::try_from(point.index).expect("decision index fits usize");
            let raw = if idx < prefix.len() {
                prefix[idx]
            } else {
                match &tail {
                    Tail::Default => 0,
                    Tail::Random { .. } => {
                        let r = rng.as_mut().expect("rng armed for random tail");
                        if r.chance(1, 2) {
                            0
                        } else {
                            r.below(u64::from(choices)) as u32
                        }
                    }
                    Tail::Attacked(a) => a.choice(point.kind),
                }
            };
            let chosen = raw.min(choices.saturating_sub(1));
            recorder.borrow_mut().push(DecisionRecord {
                kind: point.kind,
                choices,
                chosen,
            });
            chosen
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chats_sim::DecisionPoint;

    fn point(index: u64, kind: DecisionKind) -> DecisionPoint {
        DecisionPoint {
            index,
            kind,
            core: None,
        }
    }

    #[test]
    fn prefix_wins_then_tail_takes_over() {
        let rec: Recorder = Recorder::default();
        let mut h = Schedule::replay(vec![2, 9]).hook(Rc::clone(&rec));
        assert_eq!(h(&point(0, DecisionKind::TieBreak), 4), 2);
        assert_eq!(h(&point(1, DecisionKind::TieBreak), 4), 3); // 9 clamps
        assert_eq!(h(&point(2, DecisionKind::TieBreak), 4), 0); // tail default
        let log = rec.borrow();
        assert_eq!(log.len(), 3);
        assert_eq!(log[1].chosen, 3);
        assert_eq!(log[1].choices, 4);
    }

    #[test]
    fn attacks_only_touch_their_kind() {
        for a in Attack::ALL {
            let rec: Recorder = Recorder::default();
            let mut h = Schedule::attack(a).hook(rec);
            let hit: Vec<DecisionKind> = DecisionKind::ALL
                .into_iter()
                .filter(|&k| h(&point(0, k), 3) != 0)
                .collect();
            assert_eq!(hit.len(), 1, "{a:?} must perturb exactly one kind");
        }
    }

    #[test]
    fn random_tail_is_reproducible_and_in_range() {
        let run = |seed| {
            let rec: Recorder = Recorder::default();
            let mut h = Schedule::random(seed).hook(Rc::clone(&rec));
            let picks: Vec<u32> = (0..64)
                .map(|i| h(&point(i, DecisionKind::TieBreak), 3))
                .collect();
            picks
        };
        let a = run(7);
        assert_eq!(a, run(7));
        assert_ne!(a, run(8), "different walk seeds should diverge");
        assert!(a.iter().all(|&c| c < 3));
        assert!(a.iter().any(|&c| c != 0), "walk never perturbs anything");
    }

    #[test]
    fn describe_is_compact() {
        assert_eq!(Schedule::baseline().describe(), "default");
        assert_eq!(Schedule::replay(vec![0, 1]).describe(), "prefix[2]+default");
        assert_eq!(
            Schedule::attack(Attack::DeferCommits).describe(),
            "attack(defer-commits)"
        );
    }
}
