//! Replayable failure reproducers.
//!
//! A reproducer is a self-contained JSON file — scenario, shrunk decision
//! prefix, expected failure kind — written to `target/chats-failures/`
//! when exploration finds a failure. `chats-check replay <file>` rebuilds
//! the machine and re-executes the schedule bit-exactly; the replay
//! *reproduces* iff it fails with the recorded kind.

use crate::run::{run_scenario, FailureKind, RunResult};
use crate::scenario::Scenario;
use crate::schedule::Schedule;
use chats_runner::hash::fnv1a_64;
use chats_runner::Json;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Format marker so future layout changes can be detected on load.
pub const REPRO_VERSION: u64 = 1;

/// Where reproducers go unless overridden (`target/chats-failures`,
/// honouring `CARGO_TARGET_DIR`).
#[must_use]
pub fn default_failures_dir() -> PathBuf {
    let target =
        std::env::var_os("CARGO_TARGET_DIR").map_or_else(|| PathBuf::from("target"), PathBuf::from);
    target.join("chats-failures")
}

/// A saved, replayable failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reproducer {
    /// The scenario the failure was found in.
    pub scenario: Scenario,
    /// Shrunk decision prefix (tail is all-default).
    pub prefix: Vec<u32>,
    /// The failure kind the schedule triggers.
    pub kind: FailureKind,
    /// Human-readable context: how the schedule was found, diagnostics.
    pub note: String,
    /// Hash of the scenario's canonical form at save time. A replay
    /// whose scenario canonicalizes differently (the generator changed
    /// underneath the file) is refused unless forced — it would rebuild
    /// a different machine and silently chase a different bug. `None`
    /// on reproducers from before commitments existed.
    pub spec_commitment: Option<u64>,
    /// [`chats_machine::build_fingerprint`] of the simulator build that
    /// found the failure: the final state commitment of a fixed probe
    /// workload, so any behavioural change to the machine moves it.
    /// `None` on reproducers from before commitments existed.
    pub build_commitment: Option<u64>,
}

impl Reproducer {
    /// A reproducer for `scenario`, stamped with the scenario's spec
    /// commitment and the current build's fingerprint.
    #[must_use]
    pub fn new(
        scenario: Scenario,
        prefix: Vec<u32>,
        kind: FailureKind,
        note: String,
    ) -> Reproducer {
        let spec_commitment = Some(fnv1a_64(scenario.canonical().as_bytes()));
        Reproducer {
            scenario,
            prefix,
            kind,
            note,
            spec_commitment,
            build_commitment: Some(chats_machine::build_fingerprint()),
        }
    }

    /// Checks the saved commitments against the current scenario
    /// encoding and simulator build. Unstamped fields (older files) pass.
    ///
    /// # Errors
    ///
    /// Names the stale commitment and both values; replaying anyway
    /// (`--force`) is the caller's decision.
    pub fn verify_commitments(&self) -> Result<(), String> {
        if let Some(saved) = self.spec_commitment {
            let now = fnv1a_64(self.scenario.canonical().as_bytes());
            if saved != now {
                return Err(format!(
                    "scenario spec commitment mismatch: saved {saved:016x}, \
                     current encoding yields {now:016x} — the scenario format \
                     changed since this reproducer was written"
                ));
            }
        }
        if let Some(saved) = self.build_commitment {
            let now = chats_machine::build_fingerprint();
            if saved != now {
                return Err(format!(
                    "build commitment mismatch: saved {saved:016x}, this \
                     simulator build fingerprints as {now:016x} — machine \
                     behaviour changed since the failure was recorded, so the \
                     schedule may no longer reproduce it"
                ));
            }
        }
        Ok(())
    }
    /// JSON document (the on-disk format).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert("version".to_string(), Json::U64(REPRO_VERSION));
        m.insert("scenario".to_string(), self.scenario.to_json());
        m.insert(
            "prefix".to_string(),
            Json::Arr(
                self.prefix
                    .iter()
                    .map(|&c| Json::U64(u64::from(c)))
                    .collect(),
            ),
        );
        m.insert(
            "failure".to_string(),
            Json::Str(self.kind.as_str().to_string()),
        );
        m.insert("note".to_string(), Json::Str(self.note.clone()));
        if let Some(c) = self.spec_commitment {
            m.insert(
                "spec_commitment".to_string(),
                Json::Str(format!("{c:016x}")),
            );
        }
        if let Some(c) = self.build_commitment {
            m.insert(
                "build_commitment".to_string(),
                Json::Str(format!("{c:016x}")),
            );
        }
        Json::Obj(m)
    }

    /// Inverse of [`Reproducer::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Json) -> Result<Reproducer, String> {
        let version = v
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("reproducer: missing 'version'")?;
        if version != REPRO_VERSION {
            return Err(format!("reproducer: unsupported version {version}"));
        }
        let scenario =
            Scenario::from_json(v.get("scenario").ok_or("reproducer: missing 'scenario'")?)?;
        let prefix = v
            .get("prefix")
            .and_then(Json::as_arr)
            .ok_or("reproducer: missing 'prefix'")?
            .iter()
            .map(|c| {
                c.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| "reproducer: non-u32 prefix entry".to_string())
            })
            .collect::<Result<Vec<u32>, String>>()?;
        let kind = v
            .get("failure")
            .and_then(Json::as_str)
            .and_then(FailureKind::parse)
            .ok_or("reproducer: missing or unknown 'failure'")?;
        let note = v
            .get("note")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let hex_field = |key: &str| -> Result<Option<u64>, String> {
            match v.get(key) {
                None => Ok(None),
                Some(j) => j
                    .as_str()
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .map(Some)
                    .ok_or_else(|| format!("reproducer: '{key}' is not a 16-hex-digit hash")),
            }
        };
        Ok(Reproducer {
            scenario,
            prefix,
            kind,
            note,
            spec_commitment: hex_field("spec_commitment")?,
            build_commitment: hex_field("build_commitment")?,
        })
    }

    /// Deterministic filename: scenario name plus a content hash of the
    /// scenario and prefix (so distinct failures never collide and
    /// identical ones overwrite instead of piling up).
    #[must_use]
    pub fn file_name(&self) -> String {
        let mut key = self.scenario.canonical();
        for c in &self.prefix {
            key.push_str(&format!(",{c}"));
        }
        format!(
            "{}-{:016x}.json",
            self.scenario.name,
            fnv1a_64(key.as_bytes())
        )
    }

    /// Writes the reproducer under `dir` (created if needed); returns the
    /// full path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json().to_pretty())?;
        Ok(path)
    }

    /// Loads a reproducer from disk.
    ///
    /// # Errors
    ///
    /// Returns a message for I/O, JSON or schema problems.
    pub fn load(path: &Path) -> Result<Reproducer, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Reproducer::from_json(&json)
    }

    /// Re-executes the recorded schedule. Returns the run and whether the
    /// recorded failure kind was reproduced.
    #[must_use]
    pub fn replay(&self) -> (RunResult, bool) {
        let result = run_scenario(&self.scenario, &Schedule::replay(self.prefix.clone()));
        let reproduced = result.failed_with(self.kind);
        (result, reproduced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::smoke_scenarios;

    fn sample() -> Reproducer {
        Reproducer::new(
            smoke_scenarios().remove(0),
            vec![0, 3, 0, 1],
            FailureKind::SumMismatch,
            "found by attack(defer-commits)".to_string(),
        )
    }

    #[test]
    fn json_round_trip() {
        let r = sample();
        let back = Reproducer::from_json(&Json::parse(&r.to_json().to_pretty()).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut j = sample().to_json();
        if let Json::Obj(m) = &mut j {
            m.insert("version".to_string(), Json::U64(999));
        }
        assert!(Reproducer::from_json(&j).unwrap_err().contains("version"));
    }

    #[test]
    fn file_name_tracks_content() {
        let a = sample();
        let mut b = sample();
        assert_eq!(a.file_name(), b.file_name());
        b.prefix.push(2);
        assert_ne!(a.file_name(), b.file_name());
        assert!(a.file_name().starts_with(&a.scenario.name));
    }

    #[test]
    fn fresh_commitments_verify_and_stale_ones_are_named() {
        let r = sample();
        assert!(r.spec_commitment.is_some() && r.build_commitment.is_some());
        r.verify_commitments().unwrap();

        let mut stale_spec = r.clone();
        stale_spec.scenario.seed ^= 1; // scenario drifted under the file
        let err = stale_spec.verify_commitments().unwrap_err();
        assert!(err.contains("spec commitment"), "{err}");

        let mut stale_build = r.clone();
        stale_build.build_commitment = Some(0xDEAD_BEEF);
        let err = stale_build.verify_commitments().unwrap_err();
        assert!(err.contains("build commitment"), "{err}");

        // Pre-commitment reproducers (both fields absent) still verify.
        let mut old = r;
        old.spec_commitment = None;
        old.build_commitment = None;
        old.verify_commitments().unwrap();
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("chats-repro-test-{}", std::process::id()));
        let r = sample();
        let path = r.save(&dir).unwrap();
        let back = Reproducer::load(&path).unwrap();
        assert_eq!(back, r);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
