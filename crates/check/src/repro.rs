//! Replayable failure reproducers.
//!
//! A reproducer is a self-contained JSON file — scenario, shrunk decision
//! prefix, expected failure kind — written to `target/chats-failures/`
//! when exploration finds a failure. `chats-check replay <file>` rebuilds
//! the machine and re-executes the schedule bit-exactly; the replay
//! *reproduces* iff it fails with the recorded kind.

use crate::run::{run_scenario, FailureKind, RunResult};
use crate::scenario::Scenario;
use crate::schedule::Schedule;
use chats_runner::hash::fnv1a_64;
use chats_runner::Json;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Format marker so future layout changes can be detected on load.
pub const REPRO_VERSION: u64 = 1;

/// Where reproducers go unless overridden (`target/chats-failures`,
/// honouring `CARGO_TARGET_DIR`).
#[must_use]
pub fn default_failures_dir() -> PathBuf {
    let target =
        std::env::var_os("CARGO_TARGET_DIR").map_or_else(|| PathBuf::from("target"), PathBuf::from);
    target.join("chats-failures")
}

/// A saved, replayable failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reproducer {
    /// The scenario the failure was found in.
    pub scenario: Scenario,
    /// Shrunk decision prefix (tail is all-default).
    pub prefix: Vec<u32>,
    /// The failure kind the schedule triggers.
    pub kind: FailureKind,
    /// Human-readable context: how the schedule was found, diagnostics.
    pub note: String,
}

impl Reproducer {
    /// JSON document (the on-disk format).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert("version".to_string(), Json::U64(REPRO_VERSION));
        m.insert("scenario".to_string(), self.scenario.to_json());
        m.insert(
            "prefix".to_string(),
            Json::Arr(
                self.prefix
                    .iter()
                    .map(|&c| Json::U64(u64::from(c)))
                    .collect(),
            ),
        );
        m.insert(
            "failure".to_string(),
            Json::Str(self.kind.as_str().to_string()),
        );
        m.insert("note".to_string(), Json::Str(self.note.clone()));
        Json::Obj(m)
    }

    /// Inverse of [`Reproducer::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Json) -> Result<Reproducer, String> {
        let version = v
            .get("version")
            .and_then(Json::as_u64)
            .ok_or("reproducer: missing 'version'")?;
        if version != REPRO_VERSION {
            return Err(format!("reproducer: unsupported version {version}"));
        }
        let scenario =
            Scenario::from_json(v.get("scenario").ok_or("reproducer: missing 'scenario'")?)?;
        let prefix = v
            .get("prefix")
            .and_then(Json::as_arr)
            .ok_or("reproducer: missing 'prefix'")?
            .iter()
            .map(|c| {
                c.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| "reproducer: non-u32 prefix entry".to_string())
            })
            .collect::<Result<Vec<u32>, String>>()?;
        let kind = v
            .get("failure")
            .and_then(Json::as_str)
            .and_then(FailureKind::parse)
            .ok_or("reproducer: missing or unknown 'failure'")?;
        let note = v
            .get("note")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        Ok(Reproducer {
            scenario,
            prefix,
            kind,
            note,
        })
    }

    /// Deterministic filename: scenario name plus a content hash of the
    /// scenario and prefix (so distinct failures never collide and
    /// identical ones overwrite instead of piling up).
    #[must_use]
    pub fn file_name(&self) -> String {
        let mut key = self.scenario.canonical();
        for c in &self.prefix {
            key.push_str(&format!(",{c}"));
        }
        format!(
            "{}-{:016x}.json",
            self.scenario.name,
            fnv1a_64(key.as_bytes())
        )
    }

    /// Writes the reproducer under `dir` (created if needed); returns the
    /// full path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json().to_pretty())?;
        Ok(path)
    }

    /// Loads a reproducer from disk.
    ///
    /// # Errors
    ///
    /// Returns a message for I/O, JSON or schema problems.
    pub fn load(path: &Path) -> Result<Reproducer, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let json = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Reproducer::from_json(&json)
    }

    /// Re-executes the recorded schedule. Returns the run and whether the
    /// recorded failure kind was reproduced.
    #[must_use]
    pub fn replay(&self) -> (RunResult, bool) {
        let result = run_scenario(&self.scenario, &Schedule::replay(self.prefix.clone()));
        let reproduced = result.failed_with(self.kind);
        (result, reproduced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::smoke_scenarios;

    fn sample() -> Reproducer {
        Reproducer {
            scenario: smoke_scenarios().remove(0),
            prefix: vec![0, 3, 0, 1],
            kind: FailureKind::SumMismatch,
            note: "found by attack(defer-commits)".to_string(),
        }
    }

    #[test]
    fn json_round_trip() {
        let r = sample();
        let back = Reproducer::from_json(&Json::parse(&r.to_json().to_pretty()).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut j = sample().to_json();
        if let Json::Obj(m) = &mut j {
            m.insert("version".to_string(), Json::U64(999));
        }
        assert!(Reproducer::from_json(&j).unwrap_err().contains("version"));
    }

    #[test]
    fn file_name_tracks_content() {
        let a = sample();
        let mut b = sample();
        assert_eq!(a.file_name(), b.file_name());
        b.prefix.push(2);
        assert_ne!(a.file_name(), b.file_name());
        assert!(a.file_name().starts_with(&a.scenario.name));
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("chats-repro-test-{}", std::process::id()));
        let r = sample();
        let path = r.save(&dir).unwrap();
        let back = Reproducer::load(&path).unwrap();
        assert_eq!(back, r);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
