//! Divergence dissection: bracket, then pin.
//!
//! Two runs of the same workload that should agree — same config on two
//! builds, clean vs fault-injected, before vs after a change — disagree
//! *somewhere*, and a full-trace diff over millions of events is the
//! wrong instrument for finding out where. Dissection uses the epoch
//! commitment chain (see `chats_machine::commit`) as a pre-computed
//! binary search: chains agree up to some boundary and differ at the
//! next, so the first divergent event lives inside exactly one epoch.
//! Both runs are then re-executed *to the last agreeing boundary only*
//! and single-stepped from there in lockstep, hashing architectural
//! state after every event, until the hashes split — pinning "event N at
//! cycle T on core C: expected X, got Y" with one epoch of re-execution
//! instead of a full trace.
//!
//! Comparisons use the **architectural** hash, which excludes
//! environment state (fault-injection bookkeeping, watchdog), so a clean
//! run and a faulted run of the same workload are comparable: the first
//! divergence is the first *effect* of a fault on the machine, not the
//! fault plan's mere presence.

use chats_core::PolicyConfig;
use chats_runner::Json;
use chats_workloads::{prepare_run, registry, RunConfig};
use std::collections::BTreeMap;

/// One side of an A/B dissection: a label plus the run configuration.
/// Sides share the workload and policy; they may differ in seed, fault
/// plan, or any other [`RunConfig`] knob.
#[derive(Debug, Clone)]
pub struct DissectSide {
    /// Report label (`"a"` / `"b"`, or something descriptive).
    pub label: String,
    /// The side's full run configuration.
    pub config: RunConfig,
}

/// What to dissect.
#[derive(Debug, Clone)]
pub struct DissectRequest {
    /// Registry name of the workload both sides run.
    pub workload: String,
    /// The HTM policy both sides run under.
    pub policy: PolicyConfig,
    /// Epoch-commitment interval in cycles (bracketing resolution).
    pub interval: u64,
    /// Side A ("expected").
    pub a: DissectSide,
    /// Side B ("got").
    pub b: DissectSide,
}

/// The exact first divergent event, pinned by lockstep replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergentEvent {
    /// Event ordinal within the replayed epoch (0 = first event after
    /// the last agreeing boundary).
    pub index: u64,
    /// The cycle the event dispatched at on side A.
    pub time: u64,
    /// The core the event addressed, when it names one.
    pub core: Option<usize>,
    /// Side A's rendering of the dispatched event.
    pub desc_a: String,
    /// Side B's rendering of the dispatched event.
    pub desc_b: String,
    /// Side A's architectural state hash after the event ("expected").
    pub hash_a: u64,
    /// Side B's architectural state hash after the event ("got").
    pub hash_b: u64,
    /// Side B's fault-injection counter crossed zero on exactly this
    /// step: the pinned event IS the first injected perturbation.
    pub fault_injected_here: bool,
}

impl std::fmt::Display for DivergentEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "event {} (cycle {})", self.index, self.time)?;
        if let Some(core) = self.core {
            write!(f, " on core {core}")?;
        }
        write!(
            f,
            ": expected {:016x}, got {:016x} [{}]",
            self.hash_a, self.hash_b, self.desc_a
        )?;
        if self.desc_b != self.desc_a {
            write!(f, " (b dispatched {})", self.desc_b)?;
        }
        Ok(())
    }
}

/// Where two runs first disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Last boundary at which both chains carry the same arch hash.
    pub epoch_start: u64,
    /// First boundary at which they differ (the divergent event is in
    /// `epoch_start..epoch_end`).
    pub epoch_end: u64,
    /// Chain entries that agreed before the split.
    pub agreeing_epochs: u64,
    /// The pinned event; `None` when lockstep replay could not pin one
    /// (the sides disagree only in how far they ran).
    pub event: Option<DivergentEvent>,
    /// Events single-stepped during pinning — the measure of how much
    /// re-execution bracketing saved over a full-trace diff.
    pub events_replayed: u64,
}

/// Outcome of a dissection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DissectOutcome {
    /// Every compared boundary carries the same architectural hash and
    /// both runs covered the same number of epochs.
    Identical {
        /// Boundaries compared.
        epochs: u64,
    },
    /// The runs disagree; here is where.
    Diverged(Divergence),
}

/// A finished dissection: the outcome plus per-side run summaries.
#[derive(Debug, Clone)]
pub struct DissectReport {
    /// The request this report answers.
    pub request: DissectRequest,
    /// How each side's full run ended (`"ok"` or the error message).
    pub status_a: String,
    /// Side B's run status.
    pub status_b: String,
    /// Chain length of side A.
    pub epochs_a: u64,
    /// Chain length of side B.
    pub epochs_b: u64,
    /// The verdict.
    pub outcome: DissectOutcome,
}

/// Runs both sides with the commitment interval armed, compares their
/// chains, and — on divergence — replays the divergent epoch in lockstep
/// to pin the first divergent event.
///
/// # Errors
///
/// Returns a message for an unknown workload or a zero interval. A
/// side's simulation *failing* (timeout, deadlock) is not an error: the
/// chain up to the failure still brackets, and the failure is recorded
/// in the side's status.
pub fn dissect(req: &DissectRequest) -> Result<DissectReport, String> {
    if req.interval == 0 {
        return Err("dissect: interval must be positive".to_string());
    }
    let workload = registry::by_name(&req.workload)
        .ok_or_else(|| format!("unknown workload '{}'", req.workload))?;

    // Phase 1: full runs, chains recorded.
    let chain_of = |cfg: &RunConfig| {
        let mut prep = prepare_run(workload.as_ref(), req.policy, cfg);
        prep.machine.set_commit_interval(req.interval);
        let status = match prep.machine.run(cfg.max_cycles) {
            Ok(_) => "ok".to_string(),
            Err(e) => e.to_string(),
        };
        (prep.machine.commitment_chain().to_vec(), status)
    };
    let (chain_a, status_a) = chain_of(&req.a.config);
    let (chain_b, status_b) = chain_of(&req.b.config);

    let compared = chain_a.len().min(chain_b.len()) as u64;
    let first_diff = chain_a
        .iter()
        .zip(&chain_b)
        .position(|(a, b)| a.arch != b.arch);
    let outcome = match first_diff {
        None if chain_a.len() == chain_b.len() => DissectOutcome::Identical { epochs: compared },
        // Chains agree as far as they overlap but one side ran further:
        // the shorter side halted (or failed) inside the next epoch.
        None => {
            let epoch_start = chain_a.get(compared as usize - 1).map_or(0, |e| e.boundary);
            let (event, replayed) = pin_event(req, workload.as_ref(), epoch_start)?;
            DissectOutcome::Diverged(Divergence {
                epoch_start,
                epoch_end: epoch_start + req.interval,
                agreeing_epochs: compared,
                event,
                events_replayed: replayed,
            })
        }
        Some(i) => {
            let epoch_start = if i == 0 { 0 } else { chain_a[i - 1].boundary };
            let (event, replayed) = pin_event(req, workload.as_ref(), epoch_start)?;
            DissectOutcome::Diverged(Divergence {
                epoch_start,
                epoch_end: chain_a[i].boundary,
                agreeing_epochs: i as u64,
                event,
                events_replayed: replayed,
            })
        }
    };
    Ok(DissectReport {
        request: req.clone(),
        status_a,
        status_b,
        epochs_a: chain_a.len() as u64,
        epochs_b: chain_b.len() as u64,
        outcome,
    })
}

/// Phase 2: re-runs both sides to `epoch_start` (the last agreeing
/// boundary), then single-steps them in lockstep, hashing architectural
/// state after every event, until the hashes split.
fn pin_event(
    req: &DissectRequest,
    workload: &dyn chats_workloads::Workload,
    epoch_start: u64,
) -> Result<(Option<DivergentEvent>, u64), String> {
    let rebuild = |cfg: &RunConfig| -> Result<chats_machine::Machine, String> {
        let mut prep = prepare_run(workload, req.policy, cfg);
        if epoch_start > 0 {
            match prep.machine.run_to(epoch_start, cfg.max_cycles) {
                Ok(chats_machine::RunProgress::Paused { .. }) => {}
                Ok(chats_machine::RunProgress::Done(_)) => {}
                Err(e) => return Err(format!("replay to boundary {epoch_start}: {e}")),
            }
        }
        Ok(prep.machine)
    };
    let mut ma = rebuild(&req.a.config)?;
    let mut mb = rebuild(&req.b.config)?;
    // Both sides are at the same agreed state; step until they split.
    // The divergent boundary guarantees a split within one epoch, but a
    // side may also simply run out of events (it halted mid-epoch) —
    // that too is a pinned divergence. The hard cap is a backstop
    // against a bracketing bug, not a path taken in normal operation.
    let cap = 100_000_000u64;
    for index in 0..cap {
        let injections_before = mb.fault_injections();
        let step_a = ma.step_one().map_err(|e| format!("side a stalled: {e}"))?;
        let step_b = mb.step_one().map_err(|e| format!("side b stalled: {e}"))?;
        let (ha, hb) = (ma.state_commitment().arch, mb.state_commitment().arch);
        match (step_a, step_b) {
            (None, None) => return Ok((None, index)),
            (a, b) => {
                let time = a.as_ref().or(b.as_ref()).map_or(0, |(t, _)| *t);
                let desc_a = a.map_or_else(|| "<run complete>".to_string(), |(_, d)| d);
                let desc_b = b.map_or_else(|| "<run complete>".to_string(), |(_, d)| d);
                if ha != hb || desc_a != desc_b {
                    return Ok((
                        Some(DivergentEvent {
                            index,
                            time,
                            core: parse_core(&desc_a).or_else(|| parse_core(&desc_b)),
                            desc_a,
                            desc_b,
                            hash_a: ha,
                            hash_b: hb,
                            fault_injected_here: injections_before == 0
                                && mb.fault_injections() > 0,
                        }),
                        index + 1,
                    ));
                }
            }
        }
    }
    Ok((None, cap))
}

/// Extracts `core: N` from an event's debug rendering, if present.
fn parse_core(desc: &str) -> Option<usize> {
    let rest = &desc[desc.find("core: ")? + "core: ".len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

impl DissectReport {
    /// The JSON report document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert(
            "workload".to_string(),
            Json::Str(self.request.workload.clone()),
        );
        m.insert(
            "system".to_string(),
            Json::Str(format!("{:?}", self.request.policy.system)),
        );
        m.insert("interval".to_string(), Json::U64(self.request.interval));
        for (key, side, status, epochs) in [
            ("a", &self.request.a, &self.status_a, self.epochs_a),
            ("b", &self.request.b, &self.status_b, self.epochs_b),
        ] {
            let mut s = BTreeMap::new();
            s.insert("label".to_string(), Json::Str(side.label.clone()));
            s.insert("seed".to_string(), Json::U64(side.config.seed));
            s.insert(
                "faults".to_string(),
                side.config
                    .faults
                    .as_ref()
                    .map_or(Json::Null, |p| Json::Str(p.name.clone())),
            );
            s.insert("status".to_string(), Json::Str(status.clone()));
            s.insert("epochs".to_string(), Json::U64(epochs));
            m.insert(key.to_string(), Json::Obj(s));
        }
        match &self.outcome {
            DissectOutcome::Identical { epochs } => {
                m.insert("verdict".to_string(), Json::Str("identical".to_string()));
                m.insert("epochs_compared".to_string(), Json::U64(*epochs));
            }
            DissectOutcome::Diverged(d) => {
                m.insert("verdict".to_string(), Json::Str("diverged".to_string()));
                m.insert("epoch_start".to_string(), Json::U64(d.epoch_start));
                m.insert("epoch_end".to_string(), Json::U64(d.epoch_end));
                m.insert("agreeing_epochs".to_string(), Json::U64(d.agreeing_epochs));
                m.insert("events_replayed".to_string(), Json::U64(d.events_replayed));
                if let Some(ev) = &d.event {
                    let mut e = BTreeMap::new();
                    e.insert("index".to_string(), Json::U64(ev.index));
                    e.insert("time".to_string(), Json::U64(ev.time));
                    if let Some(core) = ev.core {
                        e.insert("core".to_string(), Json::U64(core as u64));
                    }
                    e.insert("desc_a".to_string(), Json::Str(ev.desc_a.clone()));
                    e.insert("desc_b".to_string(), Json::Str(ev.desc_b.clone()));
                    e.insert(
                        "expected".to_string(),
                        Json::Str(format!("{:016x}", ev.hash_a)),
                    );
                    e.insert("got".to_string(), Json::Str(format!("{:016x}", ev.hash_b)));
                    e.insert(
                        "fault_injected_here".to_string(),
                        Json::Bool(ev.fault_injected_here),
                    );
                    m.insert("first_divergent_event".to_string(), Json::Obj(e));
                }
            }
        }
        Json::Obj(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chats_core::HtmSystem;
    use chats_machine::FaultPlan;

    fn request(seed_b: u64, faults_b: Option<FaultPlan>) -> DissectRequest {
        let base = RunConfig::quick_test();
        let mut cfg_b = base.clone();
        cfg_b.seed = seed_b;
        cfg_b.faults = faults_b;
        DissectRequest {
            workload: "cadd".to_string(),
            policy: PolicyConfig::for_system(HtmSystem::Chats),
            interval: 256,
            a: DissectSide {
                label: "clean".to_string(),
                config: base,
            },
            b: DissectSide {
                label: "perturbed".to_string(),
                config: cfg_b,
            },
        }
    }

    #[test]
    fn identical_sides_are_identical() {
        let seed = RunConfig::quick_test().seed;
        let report = dissect(&request(seed, None)).unwrap();
        assert!(
            matches!(report.outcome, DissectOutcome::Identical { epochs } if epochs > 1),
            "{:?}",
            report.outcome
        );
        assert_eq!(report.status_a, "ok");
        let json = report.to_json();
        assert_eq!(
            json.get("verdict").and_then(Json::as_str),
            Some("identical")
        );
    }

    #[test]
    fn fault_injection_is_pinned_to_the_injecting_event() {
        let seed = RunConfig::quick_test().seed;
        let report = dissect(&request(seed, Some(FaultPlan::lossy_noc()))).unwrap();
        let DissectOutcome::Diverged(d) = &report.outcome else {
            panic!("lossy-noc must diverge from the clean run: {report:?}")
        };
        let ev = d.event.as_ref().expect("event pinned");
        assert!(
            ev.fault_injected_here,
            "the first divergent event must be the first fault injection: {ev}"
        );
        assert!(ev.time >= d.epoch_start, "{ev}");
        assert!(
            d.events_replayed <= d.epoch_end.saturating_sub(d.epoch_start) * 64,
            "pinning must stay within the bracketed epoch's event count"
        );
        // The human rendering carries the expected/got pair.
        let line = ev.to_string();
        assert!(line.contains("expected"), "{line}");
        assert!(line.contains("got"), "{line}");
    }

    #[test]
    fn seed_divergence_brackets_at_the_initial_epoch() {
        let seed = RunConfig::quick_test().seed;
        let report = dissect(&request(seed ^ 1, None)).unwrap();
        let DissectOutcome::Diverged(d) = &report.outcome else {
            panic!("different seeds must diverge: {report:?}")
        };
        assert_eq!(d.epoch_start, 0, "initial states differ");
        assert!(d.event.is_some());
    }
}
