//! Shrinking a failing decision trace to a minimal divergent prefix.
//!
//! Given a full failing trace, the shrinker produces a short, mostly-zero
//! prefix that still triggers the *same* failure kind:
//!
//! 1. **Trim**: trailing default choices are dropped outright (a prefix is
//!    padded with defaults implicitly, so they carry no information).
//! 2. **Truncate**: binary search for the shortest failing prefix length.
//!    Failure is not guaranteed monotone in prefix length, so the
//!    candidate is re-verified and the search falls back to the last
//!    length that provably failed.
//! 3. **Sparsify**: each remaining non-default choice is set to 0 and kept
//!    there if the failure survives, bounded by a probe budget so
//!    pathological traces cannot stall the explorer.
//!
//! Every probe is one full deterministic simulation, so the result is
//! exact: the returned prefix *does* fail with the reported kind.

use crate::run::{run_scenario, FailureKind};
use crate::scenario::Scenario;
use crate::schedule::Schedule;

/// Upper bound on sparsification probes (step 3).
const SPARSIFY_BUDGET: usize = 200;

/// Statistics of one shrink, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Length of the input trace.
    pub original_len: usize,
    /// Length of the shrunk prefix.
    pub shrunk_len: usize,
    /// Non-default choices remaining in the shrunk prefix.
    pub non_default: usize,
    /// Simulations spent shrinking.
    pub probes: usize,
}

/// Shrinks `trace` against `scenario`, preserving failure `kind`.
///
/// Returns the shrunk prefix and statistics. If the trace does not
/// reproduce the failure when replayed (which would indicate
/// nondeterminism — a bug in itself), the input is returned unchanged
/// with `probes == 1` so the caller still gets a faithful reproducer.
#[must_use]
pub fn shrink(scenario: &Scenario, trace: &[u32], kind: FailureKind) -> (Vec<u32>, ShrinkStats) {
    let mut probes = 0usize;
    let mut fails = |prefix: &[u32]| {
        probes += 1;
        run_scenario(scenario, &Schedule::replay(prefix.to_vec())).failed_with(kind)
    };

    // Step 1: trim trailing defaults (free).
    let mut end = trace.len();
    while end > 0 && trace[end - 1] == 0 {
        end -= 1;
    }
    let mut prefix: Vec<u32> = trace[..end].to_vec();

    if !fails(&prefix) {
        let stats = ShrinkStats {
            original_len: trace.len(),
            shrunk_len: trace.len(),
            non_default: trace.iter().filter(|&&c| c != 0).count(),
            probes,
        };
        return (trace.to_vec(), stats);
    }

    // Step 2: binary search the shortest failing length, verified.
    let mut known_failing = prefix.len();
    let (mut lo, mut hi) = (0usize, prefix.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fails(&prefix[..mid]) {
            known_failing = mid;
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    prefix.truncate(known_failing);

    // Step 3: zero out non-default choices one at a time.
    let mut budget = SPARSIFY_BUDGET;
    for i in 0..prefix.len() {
        if prefix[i] == 0 || budget == 0 {
            continue;
        }
        budget -= 1;
        let saved = prefix[i];
        prefix[i] = 0;
        if !fails(&prefix) {
            prefix[i] = saved;
        }
    }
    // Zeroing may have freed a failing tail; trim again (still failing:
    // trailing defaults do not change the run).
    while prefix.last() == Some(&0) {
        prefix.pop();
    }

    let stats = ShrinkStats {
        original_len: trace.len(),
        shrunk_len: prefix.len(),
        non_default: prefix.iter().filter(|&&c| c != 0).count(),
        probes,
    };
    (prefix, stats)
}
